"""AS-level graph container.

Stores directed relationship annotations for every adjacent AS pair and
answers the queries the rest of the system needs: neighbor sets by class,
relationship lookup, and degree statistics.  This structure is used both for
the simulator's ground-truth graph and for bdrmap's *inferred* view — the
two must never be confused, so neither knows which role it is playing.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import TopologyError
from .relationships import Rel


class ASGraph:
    """A graph of ASes with per-edge business relationships."""

    def __init__(self) -> None:
        self._rel: Dict[int, Dict[int, Rel]] = {}

    # -- construction ------------------------------------------------------

    def add_as(self, asn: int) -> None:
        """Ensure ``asn`` exists in the graph (possibly with no edges)."""
        self._rel.setdefault(asn, {})

    def add_edge(self, a: int, b: int, rel_a_to_b: Rel) -> None:
        """Record that, from ``a``'s view, ``b`` is ``rel_a_to_b``.

        The inverse annotation for ``b`` is stored automatically.  Re-adding
        an existing edge with a conflicting relationship raises.
        """
        if a == b:
            raise TopologyError("self edge on AS%d" % a)
        existing = self._rel.get(a, {}).get(b)
        if existing is not None and existing is not rel_a_to_b:
            raise TopologyError(
                "conflicting relationship AS%d-AS%d: %s vs %s"
                % (a, b, existing.value, rel_a_to_b.value)
            )
        self._rel.setdefault(a, {})[b] = rel_a_to_b
        self._rel.setdefault(b, {})[a] = rel_a_to_b.invert()

    def remove_edge(self, a: int, b: int) -> Rel:
        """Drop the ``a``–``b`` adjacency (both directions); returns the
        relationship ``b`` had from ``a``'s view.  Raises if absent."""
        rel = self._rel.get(a, {}).pop(b, None)
        self._rel.get(b, {}).pop(a, None)
        if rel is None:
            raise TopologyError("no AS%d-AS%d edge to remove" % (a, b))
        return rel

    # -- queries -----------------------------------------------------------

    def __contains__(self, asn: int) -> bool:
        return asn in self._rel

    def __len__(self) -> int:
        return len(self._rel)

    def ases(self) -> Iterator[int]:
        return iter(self._rel)

    def relationship(self, a: int, b: int) -> Optional[Rel]:
        """Relationship of ``b`` from ``a``'s view, or None if not adjacent."""
        return self._rel.get(a, {}).get(b)

    def neighbors(self, asn: int) -> Iterator[int]:
        return iter(self._rel.get(asn, {}))

    def degree(self, asn: int) -> int:
        return len(self._rel.get(asn, {}))

    def neighbors_by_rel(self, asn: int, rel: Rel) -> List[int]:
        """Neighbors of ``asn`` that are ``rel`` from ``asn``'s view."""
        return sorted(
            neighbor
            for neighbor, r in self._rel.get(asn, {}).items()
            if r is rel
        )

    def customers(self, asn: int) -> List[int]:
        return self.neighbors_by_rel(asn, Rel.CUSTOMER)

    def providers(self, asn: int) -> List[int]:
        return self.neighbors_by_rel(asn, Rel.PROVIDER)

    def peers(self, asn: int) -> List[int]:
        return self.neighbors_by_rel(asn, Rel.PEER)

    def siblings(self, asn: int) -> List[int]:
        return self.neighbors_by_rel(asn, Rel.SIBLING)

    def sibling_set(self, asn: int) -> Set[int]:
        """The full sibling closure of ``asn`` (includes ``asn`` itself)."""
        seen = {asn}
        frontier = [asn]
        while frontier:
            current = frontier.pop()
            for neighbor in self.neighbors_by_rel(current, Rel.SIBLING):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    def edges(self) -> Iterator[Tuple[int, int, Rel]]:
        """Iterate each undirected edge once as (a, b, rel of b from a),
        with a < b."""
        for a, adjacent in self._rel.items():
            for b, rel in adjacent.items():
                if a < b:
                    yield a, b, rel

    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

    def copy(self) -> "ASGraph":
        clone = ASGraph()
        for asn, adjacent in self._rel.items():
            clone._rel[asn] = dict(adjacent)
        return clone

    def subgraph(self, ases: Iterable[int]) -> "ASGraph":
        """The induced subgraph on ``ases``."""
        keep = set(ases)
        clone = ASGraph()
        for asn in keep:
            clone.add_as(asn)
        for a, b, rel in self.edges():
            if a in keep and b in keep:
                clone.add_edge(a, b, rel)
        return clone
