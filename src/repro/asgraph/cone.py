"""Customer cone computation.

The customer cone of an AS is the set of ASes reachable by following only
provider→customer edges.  bdrmap's *nextas* reasoning and the "most frequent
provider" heuristics (§5.4.3) lean on provider/customer structure; cones are
also used by the analysis layer to characterize the networks being measured
(Table 1 splits neighbors into customer/peer/provider classes).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from .graph import ASGraph


def customer_cone(graph: ASGraph, asn: int) -> FrozenSet[int]:
    """The set of ASes in ``asn``'s customer cone, including ``asn``."""
    cone = {asn}
    frontier = [asn]
    while frontier:
        current = frontier.pop()
        for customer in graph.customers(current):
            if customer not in cone:
                cone.add(customer)
                frontier.append(customer)
    return frozenset(cone)


def customer_cones(graph: ASGraph) -> Dict[int, FrozenSet[int]]:
    """Customer cones for every AS, computed bottom-up.

    Processes ASes in reverse topological order of the provider→customer
    DAG when possible; falls back to per-AS traversal if the c2p graph has
    cycles (which sibling-mislabeled data can produce).
    """
    order = _topo_order(graph)
    if order is None:
        return {asn: customer_cone(graph, asn) for asn in graph.ases()}
    cones: Dict[int, FrozenSet[int]] = {}
    for asn in order:
        cone: Set[int] = {asn}
        for customer in graph.customers(asn):
            cone.update(cones.get(customer, frozenset((customer,))))
        cones[asn] = frozenset(cone)
    return cones


def _topo_order(graph: ASGraph):
    """ASes ordered so every customer precedes its providers, or None if the
    provider→customer graph is cyclic."""
    state: Dict[int, int] = {}  # 0 unvisited / 1 in-stack / 2 done
    order = []
    for start in graph.ases():
        if state.get(start, 0) == 2:
            continue
        stack = [(start, iter(graph.customers(start)))]
        state[start] = 1
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                mark = state.get(child, 0)
                if mark == 1:
                    return None  # cycle
                if mark == 0:
                    state[child] = 1
                    stack.append((child, iter(graph.customers(child))))
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                order.append(node)
                stack.pop()
    return order
