"""AS-level graph substrate: relationships, valley-free routing rules,
relationship inference from public BGP paths, and customer cones."""

from .relationships import Rel, valley_free_next
from .graph import ASGraph
from .inference import InferredRelationships, infer_relationships
from .cone import customer_cone, customer_cones

__all__ = [
    "Rel",
    "valley_free_next",
    "ASGraph",
    "InferredRelationships",
    "infer_relationships",
    "customer_cone",
    "customer_cones",
]
