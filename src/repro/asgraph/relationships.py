"""AS relationship types and valley-free (Gao-Rexford) export rules.

bdrmap consumes AS relationship *inferences* (§5.2, using the algorithm of
Luckie et al. 2013) to decide, e.g., whether an IP-AS mapping is plausibly a
third-party address (§5.4.5).  The simulator also needs ground-truth
relationships to compute realistic BGP paths.  Both sides share these types.
"""

from __future__ import annotations

import enum
from typing import Optional


class Rel(enum.Enum):
    """Business relationship of a directed AS pair (a, b), from a's view."""

    CUSTOMER = "customer"  # b is a's customer (a provides transit to b)
    PROVIDER = "provider"  # b is a's provider
    PEER = "peer"          # settlement-free peering
    SIBLING = "sibling"    # same organization

    def invert(self) -> "Rel":
        """The relationship as seen from the other side."""
        if self is Rel.CUSTOMER:
            return Rel.PROVIDER
        if self is Rel.PROVIDER:
            return Rel.CUSTOMER
        return self


def export_allowed(learned_from: Optional[Rel], send_to: Rel) -> bool:
    """Gao-Rexford export rule.

    ``learned_from`` is the relationship through which a route was learned
    (None means the AS originates the route itself); ``send_to`` is the
    relationship to the neighbor we are considering exporting to.

    Routes learned from customers (and self-originated routes) are exported
    to everyone.  Routes learned from peers or providers are exported only to
    customers.  Sibling links are treated as internal: everything crosses.
    """
    if send_to is Rel.SIBLING:
        return True
    if learned_from is None or learned_from is Rel.CUSTOMER:
        return True
    if learned_from is Rel.SIBLING:
        return True
    return send_to is Rel.CUSTOMER


def valley_free_next(previous: Optional[Rel], step: Rel) -> bool:
    """Whether a path may take ``step`` after having taken ``previous``.

    Expressed walking *forward* from the origin of traffic: steps are the
    relationship of the current AS to the next AS.  After traversing a
    peer link or going down to a customer, the only legal continuation is
    further downhill (customer or sibling steps).
    """
    if step is Rel.SIBLING:
        return True
    if previous is None or previous is Rel.PROVIDER or previous is Rel.SIBLING:
        return True
    # previous was CUSTOMER (downhill) or PEER: must keep going downhill.
    return step is Rel.CUSTOMER


LOCAL_PREF = {
    Rel.CUSTOMER: 3,  # prefer routes through customers (revenue)
    Rel.PEER: 2,      # then peers (free)
    Rel.SIBLING: 2,
    Rel.PROVIDER: 1,  # providers last (cost)
}
