"""AS relationship inference from public BGP paths.

bdrmap does not receive ground-truth relationships: it runs the inference of
Luckie et al. (IMC 2013) over Route Views / RIPE RIS paths (§5.2) and works
from the resulting c2p / p2p annotations.  We reproduce the spirit of that
algorithm — transit-degree ranking, a top clique of transit-free peers, and
a Gao-style uphill/downhill sweep over every observed path — over the paths
our simulated collectors export.

The output is deliberately imperfect in the same ways the real inferences
are: links never observed at a collector are missing, and lightly-observed
links can be misclassified.  The bdrmap heuristics must (and do) tolerate
that.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .graph import ASGraph
from .relationships import Rel


@dataclass
class InferredRelationships:
    """The relationship database bdrmap consumes.

    ``c2p`` maps (customer, provider) pairs; ``p2p`` holds unordered peer
    pairs.  ``siblings`` is filled in from the (separate) AS→org dataset,
    not from path inference.
    """

    c2p: Set[Tuple[int, int]] = field(default_factory=set)
    p2p: Set[FrozenSet[int]] = field(default_factory=set)
    siblings: Dict[int, FrozenSet[int]] = field(default_factory=dict)

    def relationship(self, a: int, b: int) -> Optional[Rel]:
        """Relationship of ``b`` from ``a``'s view, or None if unknown."""
        if (a, b) in self.c2p:
            return Rel.PROVIDER
        if (b, a) in self.c2p:
            return Rel.CUSTOMER
        if frozenset((a, b)) in self.p2p:
            return Rel.PEER
        sibs = self.siblings.get(a)
        if sibs is not None and b in sibs:
            return Rel.SIBLING
        return None

    def is_provider_of(self, provider: int, customer: int) -> bool:
        return (customer, provider) in self.c2p

    def is_peer(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self.p2p

    def is_sibling(self, a: int, b: int) -> bool:
        sibs = self.siblings.get(a)
        return sibs is not None and b in sibs

    def neighbors(self, asn: int) -> Set[int]:
        """Every AS with any inferred relationship to ``asn``."""
        found: Set[int] = set()
        for customer, provider in self.c2p:
            if customer == asn:
                found.add(provider)
            elif provider == asn:
                found.add(customer)
        for pair in self.p2p:
            if asn in pair:
                found.update(pair - {asn})
        sibs = self.siblings.get(asn)
        if sibs:
            found.update(sibs - {asn})
        return found

    def providers_of(self, asn: int) -> Set[int]:
        return {provider for customer, provider in self.c2p if customer == asn}

    def customers_of(self, asn: int) -> Set[int]:
        return {customer for customer, provider in self.c2p if provider == asn}

    def peers_of(self, asn: int) -> Set[int]:
        found: Set[int] = set()
        for pair in self.p2p:
            if asn in pair:
                found.update(pair - {asn})
        return found

    def known_pairs(self) -> int:
        return len(self.c2p) + len(self.p2p)

    def to_graph(self) -> ASGraph:
        """Materialize the inferences as an :class:`ASGraph`."""
        graph = ASGraph()
        for customer, provider in self.c2p:
            graph.add_edge(customer, provider, Rel.PROVIDER)
        for pair in self.p2p:
            a, b = sorted(pair)
            if graph.relationship(a, b) is None:
                graph.add_edge(a, b, Rel.PEER)
        for asn, sibs in self.siblings.items():
            for other in sibs:
                if other != asn and graph.relationship(asn, other) is None:
                    graph.add_edge(asn, other, Rel.SIBLING)
        return graph


def transit_degrees(paths: Iterable[Sequence[int]]) -> Dict[int, int]:
    """Transit degree: number of distinct neighbors an AS transits between.

    An AS observed in the middle of a path is providing transit; its transit
    degree is the number of unique ASes adjacent to it in such positions.
    """
    adjacent: Dict[int, Set[int]] = {}
    for path in paths:
        for index in range(1, len(path) - 1):
            asn = path[index]
            seen = adjacent.setdefault(asn, set())
            seen.add(path[index - 1])
            seen.add(path[index + 1])
    return {asn: len(seen) for asn, seen in adjacent.items()}


def downstream_reach(paths: Iterable[Sequence[int]]) -> Dict[int, int]:
    """A customer-cone proxy: how many distinct ASes appear *after* an AS
    when it transits a path.  Tier-1s reach nearly everything; regional
    transits only reach their own cones.  Used to rank clique candidates
    where raw transit degree is ambiguous."""
    reach: Dict[int, Set[int]] = {}
    for path in paths:
        for index in range(1, len(path) - 1):
            reach.setdefault(path[index], set()).update(path[index + 1:])
    return {asn: len(seen) for asn, seen in reach.items()}


def _clean_path(path: Sequence[int]) -> Optional[List[int]]:
    """Drop paths with loops; collapse prepending (consecutive repeats)."""
    cleaned: List[int] = []
    for asn in path:
        if cleaned and cleaned[-1] == asn:
            continue  # prepending
        cleaned.append(asn)
    if len(set(cleaned)) != len(cleaned):
        return None  # loop — poisoned path
    return cleaned if len(cleaned) >= 2 else None


def infer_clique(
    paths: Iterable[Sequence[int]],
    degrees: Dict[int, int],
    max_clique: int = 16,
    reach: Optional[Dict[int, int]] = None,
) -> Set[int]:
    """Infer the transit-free clique at the top of the hierarchy.

    Following Luckie et al.: rank candidates by downstream reach (a
    customer-cone proxy) and transit degree, then admit each in order if it
    is observed adjacent to every current clique member somewhere in the
    paths.
    """
    paths = list(paths)
    if reach is None:
        reach = downstream_reach(paths)
    adjacency: Dict[int, Set[int]] = {}
    for path in paths:
        for left, right in zip(path, path[1:]):
            adjacency.setdefault(left, set()).add(right)
            adjacency.setdefault(right, set()).add(left)
    # Clique candidates must be collector peers (observed as a path's
    # first AS).  Route collectors peer with every tier-1, and a network
    # that merely has a very large customer cone — a national access ISP —
    # can out-rank true tier-1s on any degree-like metric, so candidacy,
    # not rank, is what keeps it out.
    collector_peers = {path[0] for path in paths if path}
    ranked = sorted(
        (asn for asn in degrees if asn in collector_peers),
        key=lambda asn: (-reach.get(asn, 0), -degrees[asn], asn),
    )
    clique: Set[int] = set()
    for candidate in ranked:
        if len(clique) >= max_clique:
            break
        if all(candidate in adjacency.get(member, set()) for member in clique):
            clique.add(candidate)
    return clique


def infer_relationships(
    paths: Iterable[Sequence[int]],
    siblings: Optional[Dict[int, FrozenSet[int]]] = None,
    max_clique: int = 16,
) -> InferredRelationships:
    """Infer c2p / p2p relationships from a corpus of observed AS paths.

    The sweep: for each cleaned path, locate its *top* — the AS with the
    highest transit degree (clique members outrank everything).  Links on
    the way up are customer→provider, links after the top are
    provider→customer.  The link between two clique members at the top is a
    peer link.  Each directed vote is tallied; majority wins per link, and
    links whose votes conflict heavily (or that connect two clique members)
    become p2p.
    """
    cleaned_paths = []
    for path in paths:
        cleaned = _clean_path(path)
        if cleaned is not None:
            cleaned_paths.append(cleaned)

    degrees = transit_degrees(cleaned_paths)
    reach = downstream_reach(cleaned_paths)
    clique = infer_clique(cleaned_paths, degrees, max_clique=max_clique, reach=reach)
    clique = _refine_clique(cleaned_paths, clique)

    def rank(asn: int) -> Tuple[int, int, int]:
        return (
            1 if asn in clique else 0,
            reach.get(asn, 0),
            degrees.get(asn, 0),
        )

    # Pass 1 — certain descents.  In a valley-free path, once the path has
    # passed *through* a transit-free clique member, every subsequent link
    # must go downhill (a clique member's routes are learned from customers
    # or peers; either way only customer-class routes lie beyond, and those
    # can only have been exported up customer links).  The link leaving the
    # clique member itself is ambiguous: customer or peer.
    down_votes: Counter = Counter()       # (provider, customer) pairs
    clique_ambiguous: Set[Tuple[int, int]] = set()  # (clique member, next)
    for path in cleaned_paths:
        first_clique = next(
            (i for i, asn in enumerate(path) if asn in clique), None
        )
        if first_clique is None:
            continue
        if first_clique + 1 < len(path):
            nxt = path[first_clique + 1]
            if nxt not in clique:  # clique-clique links are p2p by definition
                clique_ambiguous.add((path[first_clique], nxt))
        for index in range(first_clique + 1, len(path) - 1):
            left, right = path[index], path[index + 1]
            if left in clique and right in clique:
                continue
            down_votes[(left, right)] += 1  # left provides transit to right

    # Transit evidence: who was observed routing *through* b to reach c?
    # Used to separate customers from peers among sweep votes below.
    transiters: Dict[Tuple[int, int], Set[int]] = {}
    for path in cleaned_paths:
        for j in range(1, len(path) - 1):
            transiters.setdefault(
                (path[j], path[j + 1]), set()
            ).add(path[j - 1])

    # Pass 2 — sweep for links never covered by pass 1 (paths that do not
    # touch the clique): classic Gao, split at the highest-ranked AS.
    sweep_votes: Counter = Counter()
    for path in cleaned_paths:
        if any(asn in clique for asn in path):
            continue
        top_index = max(range(len(path)), key=lambda i: (rank(path[i]), -i))
        for index in range(len(path) - 1):
            left, right = path[index], path[index + 1]
            if index < top_index:
                sweep_votes[(left, right)] += 1   # climbing: right provides
            else:
                sweep_votes[(right, left)] += 1   # descending: left provides

    inferred = InferredRelationships(siblings=dict(siblings or {}))
    decided: Set[FrozenSet[int]] = set()

    # Clique-internal links are peering by definition.
    ordered_clique = sorted(clique)
    adjacency: Set[FrozenSet[int]] = set()
    for path in cleaned_paths:
        for left, right in zip(path, path[1:]):
            adjacency.add(frozenset((left, right)))
    for i, a in enumerate(ordered_clique):
        for b in ordered_clique[i + 1:]:
            pair = frozenset((a, b))
            if pair in adjacency:
                inferred.p2p.add(pair)
                decided.add(pair)

    # Descent evidence wins: majority direction becomes c2p.
    for (provider, customer), votes in sorted(down_votes.items()):
        pair = frozenset((provider, customer))
        if pair in decided:
            continue
        opposite = down_votes.get((customer, provider), 0)
        if votes > opposite or (votes == opposite and provider < customer):
            decided.add(pair)
            inferred.c2p.add((customer, provider))

    # Clique-adjacent links with no descent evidence anywhere: had the
    # neighbor been a customer, its routes would be visible *through* the
    # clique member from elsewhere.  They never are → peering.
    for member, neighbor in sorted(clique_ambiguous):
        pair = frozenset((member, neighbor))
        if pair in decided:
            continue
        decided.add(pair)
        inferred.p2p.add(pair)

    # Remaining links: sweep votes, validated by transit evidence.  A true
    # customer link (c, p) is eventually crossed by someone other than p's
    # own customers (p exports c's routes upward); a peer link is only ever
    # crossed on the way *down* to p's customers.  Validation depends on
    # which witnesses are themselves customers, so iterate to a fixpoint
    # (flips are monotone c2p → p2p; this terminates).
    tentative: List[Tuple[int, int]] = []
    for (customer, provider), votes in sorted(sweep_votes.items()):
        pair = frozenset((customer, provider))
        if pair in decided:
            continue
        opposite = sweep_votes.get((provider, customer), 0)
        if votes < opposite:
            continue
        decided.add(pair)
        if opposite > 0 and _similar_degree(degrees, customer, provider):
            inferred.p2p.add(pair)
            continue
        tentative.append((customer, provider))
        inferred.c2p.add((customer, provider))

    changed = True
    while changed and tentative:
        changed = False
        keep: List[Tuple[int, int]] = []
        for customer, provider in tentative:
            witnesses = transiters.get((provider, customer), set())
            if witnesses:
                valid = any(
                    witness in clique
                    or (witness, provider) not in inferred.c2p
                    for witness in witnesses
                    if witness != customer
                )
                if not valid:
                    # Only p's own customers ever crossed this link: that
                    # is what peering looks like.
                    inferred.c2p.discard((customer, provider))
                    inferred.p2p.add(frozenset((customer, provider)))
                    changed = True
                    continue
            keep.append((customer, provider))
        tentative = keep

    # Totality: every adjacency observed in the paths gets an annotation
    # (like the published inferences bdrmap consumes).  Leftovers default
    # to c2p with the higher-ranked side as provider.
    for pair in sorted(adjacency, key=sorted):
        if pair in decided or len(pair) != 2:
            continue
        a, b = sorted(pair)
        if inferred.relationship(a, b) is not None:
            continue
        customer, provider = sorted((a, b), key=rank)
        inferred.c2p.add((customer, provider))
    return inferred


def _refine_clique(
    paths: List[List[int]], clique: Set[int]
) -> Set[int]:
    """Demote false clique members.

    A network with a big customer cone (e.g. a large access ISP) can rank
    like a tier-1, but a true transit-free AS is never observed *below* a
    descent: once a path has passed through a clique member, every later
    hop is a customer of its predecessor.  Any provisional member that
    appears there has a provider and is demoted; repeat to fixpoint.
    """
    clique = set(clique)
    while clique:
        demoted: Set[int] = set()
        for path in paths:
            first = next((i for i, asn in enumerate(path) if asn in clique), None)
            if first is None:
                continue
            for index in range(first + 1, len(path) - 1):
                right = path[index + 1]
                # True clique members are never observed below a descent:
                # even another clique member cannot appear here (peers do
                # not re-export peer-learned routes).
                if right in clique:
                    demoted.add(right)
        if not demoted:
            break
        clique -= demoted
    return clique


def _similar_degree(degrees: Dict[int, int], a: int, b: int) -> bool:
    da, db = degrees.get(a, 0), degrees.get(b, 0)
    if da == 0 or db == 0:
        return False
    low, high = sorted((da, db))
    return high <= 2 * low
