"""JSON serialization for traces and bdrmap results.

Addresses are serialized dotted-quad for human-readable archives; all
structures round-trip losslessly (``result_from_dict(result_to_dict(r))``
reproduces every router, link, and trace path).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, IO, Optional, Union

from ..addr import aton, ntoa
from ..core.report import BdrmapResult, InferredLink
from ..core.routergraph import InferredRouter, RouterGraph, TracePath
from ..errors import DataError
from ..net import ResponseKind
from ..obs.provenance import ProvenanceRecord
from ..probing.traceroute import TraceHop, TraceResult

_FORMAT = "bdrmap-repro/1"


def atomic_write_text(target: str, payload: str) -> None:
    """Write ``payload`` to ``target`` atomically.

    The bytes land in a same-directory temp file which is fsynced and
    then :func:`os.replace`-d over the target, so a crash at any point
    leaves either the old artifact or the new one — never a truncated
    hybrid.  Same-directory matters: ``os.replace`` is only atomic
    within one filesystem.
    """
    directory = os.path.dirname(os.path.abspath(target))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _write_payload(payload: str, target: Union[str, IO[str]]) -> None:
    """Deliver serialized text to an open file object (caller owns
    durability) or atomically to a path."""
    if hasattr(target, "write"):
        target.write(payload)
        return
    atomic_write_text(target, payload)


def _addr(value: Optional[int]) -> Optional[str]:
    return ntoa(value) if value is not None else None


def _unaddr(value: Optional[str]) -> Optional[int]:
    return aton(value) if value else None


# -- traces ---------------------------------------------------------------------


def trace_to_dict(trace: TraceResult) -> Dict[str, Any]:
    data = {
        "vp": ntoa(trace.vp_addr),
        "dst": ntoa(trace.dst),
        "stop_reason": trace.stop_reason,
        "probes": trace.probes_used,
        "hops": [
            {
                "ttl": hop.ttl,
                "addr": _addr(hop.addr),
                "kind": hop.kind.value if hop.kind else None,
                "rtt": round(hop.rtt, 3),
                "ipid": hop.ipid,
            }
            for hop in trace.hops
        ],
    }
    # Retry accounting appears only when retries ran, so archives from
    # retry-free runs keep their historical byte layout.
    if trace.retries_used:
        data["retries"] = trace.retries_used
    if trace.recovered_hops:
        data["recovered"] = trace.recovered_hops
    if trace.silent_hops:
        data["silent"] = trace.silent_hops
    return data


def trace_from_dict(data: Dict[str, Any]) -> TraceResult:
    try:
        hops = [
            TraceHop(
                ttl=hop["ttl"],
                addr=_unaddr(hop["addr"]),
                kind=ResponseKind(hop["kind"]) if hop["kind"] else None,
                rtt=hop["rtt"],
                ipid=hop["ipid"],
            )
            for hop in data["hops"]
        ]
        return TraceResult(
            vp_addr=aton(data["vp"]),
            dst=aton(data["dst"]),
            hops=hops,
            stop_reason=data["stop_reason"],
            probes_used=data.get("probes", 0),
            retries_used=data.get("retries", 0),
            recovered_hops=data.get("recovered", 0),
            silent_hops=data.get("silent", 0),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError("malformed trace record: %s" % exc) from exc


# -- collections (trace archives) -------------------------------------------------


def evidence_to_list(store) -> list:
    """Encode an alias evidence store as JSON-able rows of
    ``[addr_a, addr_b, for_methods, against_methods]``.  Shared by trace
    archives and the parallel engine's cross-process evidence merge."""
    entries = []
    for a, b in store.positive_pairs():
        record = store.get(a, b)
        entries.append([ntoa(a), ntoa(b), sorted(record.for_methods), []])
    for a, b in store.negative_pairs():
        record = store.get(a, b)
        entries.append(
            [
                ntoa(a),
                ntoa(b),
                sorted(record.for_methods),
                sorted(record.against_methods),
            ]
        )
    return entries


def evidence_into_store(entries, store) -> None:
    """Replay :func:`evidence_to_list` rows into an evidence store.
    Replays merge: rows from several VPs accumulate methods per pair."""
    for a_text, b_text, for_methods, against_methods in entries:
        a, b = aton(a_text), aton(b_text)
        for method in for_methods:
            store.record_for(a, b, method)
        for method in against_methods:
            store.record_against(a, b, method)


def collection_to_dict(collection) -> Dict[str, Any]:
    """Archive a collection: traces, target keys, prefixscan outcomes, and
    alias evidence — everything inference needs, nothing that probes.

    This is the workflow the real system uses at scale: probing happens on
    VPs, archives land centrally, and inference (re)runs offline.
    """
    evidence = []
    if collection.resolver is not None:
        evidence = evidence_to_list(collection.resolver.evidence)
    return {
        "format": "bdrmap-repro-traces/1",
        "traces": [trace_to_dict(trace) for trace in collection.traces],
        "keys": [list(key) for key in collection.trace_keys],
        "prefixscans": [
            {
                "prev": ntoa(prev),
                "addr": ntoa(nxt),
                "plen": result.subnet_plen,
                "mate": _addr(result.mate),
            }
            for (prev, nxt), result in sorted(collection.prefixscans.items())
        ],
        "evidence": evidence,
        "probes_used": collection.probes_used,
    }


def collection_from_dict(data: Dict[str, Any]):
    """Rebuild a collection from an archive (resolver holds the evidence
    but cannot probe — exactly an offline re-analysis)."""
    from ..alias import AliasResolver
    from ..core.collection import Collection
    from ..probing.prefixscan import PrefixscanResult

    if data.get("format") != "bdrmap-repro-traces/1":
        raise DataError("unknown trace archive format %r" % data.get("format"))
    try:
        collection = Collection()
        collection.resolver = AliasResolver(network=None, vp_addr=0)
        for trace_data, key in zip(data["traces"], data["keys"]):
            trace = trace_from_dict(trace_data)
            collection.traces.append(trace)
            collection.trace_keys.append(tuple(key))
            collection.per_target.setdefault(tuple(key), []).append(trace)
        for entry in data["prefixscans"]:
            prev, nxt = aton(entry["prev"]), aton(entry["addr"])
            collection.prefixscans[(prev, nxt)] = PrefixscanResult(
                prev=prev,
                addr=nxt,
                subnet_plen=entry["plen"],
                mate=_unaddr(entry["mate"]),
            )
        evidence_into_store(data["evidence"], collection.resolver.evidence)
        collection.traces_run = len(collection.traces)
        collection.probes_used = data.get("probes_used", 0)
        return collection
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError("malformed trace archive: %s" % exc) from exc


# -- results --------------------------------------------------------------------


def result_to_dict(result: BdrmapResult) -> Dict[str, Any]:
    graph = result.graph
    payload = {
        "format": _FORMAT,
        "vp_name": result.vp_name,
        "vp_addr": ntoa(result.vp_addr),
        "focal_asn": result.focal_asn,
        "vp_ases": sorted(result.vp_ases),
        "probes_used": result.probes_used,
        "traces_run": result.traces_run,
        "runtime_virtual_seconds": result.runtime_virtual_seconds,
        "routers": [
            {
                "rid": router.rid,
                "addrs": [ntoa(a) for a in sorted(router.addrs)],
                "extra_addrs": [ntoa(a) for a in sorted(router.extra_addrs)],
                "min_dist": router.min_dist,
                "dsts": sorted(router.dsts),
                "last_hop_for": sorted(router.last_hop_for),
                "owner": router.owner,
                "reason": router.reason,
                "merged_from": list(router.merged_from),
            }
            for rid, router in sorted(graph.routers.items())
        ],
        "edges": [
            [rid, sorted(successors)]
            for rid, successors in sorted(graph.succ.items())
            if successors
        ],
        "paths": [
            {
                "key": list(path.key),
                "dst": ntoa(path.dst),
                "routers": list(path.routers),
                "gaps": list(path.had_gap_before),
                "final_kind": path.final_kind.value if path.final_kind else None,
                "final_src": _addr(path.final_src),
                "reached": path.reached,
            }
            for path in graph.paths
        ],
        "links": [
            {
                "near": link.near_rid,
                "far": link.far_rid,
                "neighbor_as": link.neighbor_as,
                "reason": link.reason,
                "via_ixp": link.via_ixp,
            }
            for link in result.links
        ],
    }
    # Decision provenance is optional so archives written before it
    # existed (and results run without tracing) stay byte-identical.
    if result.provenance:
        payload["provenance"] = [
            record.as_dict() for record in result.provenance
        ]
    return payload


def result_from_dict(data: Dict[str, Any]) -> BdrmapResult:
    if data.get("format") != _FORMAT:
        raise DataError("unknown result format %r" % data.get("format"))
    try:
        graph = RouterGraph()
        for entry in data["routers"]:
            router = InferredRouter(
                rid=entry["rid"],
                addrs={aton(a) for a in entry["addrs"]},
                extra_addrs={aton(a) for a in entry["extra_addrs"]},
                min_dist=entry["min_dist"],
                dsts=set(entry["dsts"]),
                last_hop_for=set(entry["last_hop_for"]),
                owner=entry["owner"],
                reason=entry["reason"],
                merged_from=list(entry["merged_from"]),
            )
            graph.routers[router.rid] = router
            for addr in router.all_addrs():
                graph.by_addr[addr] = router.rid
            graph._next_rid = max(graph._next_rid, router.rid + 1)
        for rid, successors in data["edges"]:
            for successor in successors:
                graph.add_edge(rid, successor)
        for entry in data["paths"]:
            graph.paths.append(
                TracePath(
                    key=tuple(entry["key"]),
                    dst=aton(entry["dst"]),
                    routers=list(entry["routers"]),
                    had_gap_before=list(entry["gaps"]),
                    final_kind=(
                        ResponseKind(entry["final_kind"])
                        if entry["final_kind"]
                        else None
                    ),
                    final_src=_unaddr(entry["final_src"]),
                    reached=entry["reached"],
                )
            )
        links = [
            InferredLink(
                near_rid=entry["near"],
                far_rid=entry["far"],
                neighbor_as=entry["neighbor_as"],
                reason=entry["reason"],
                via_ixp=entry["via_ixp"],
            )
            for entry in data["links"]
        ]
        return BdrmapResult(
            vp_name=data["vp_name"],
            vp_addr=aton(data["vp_addr"]),
            focal_asn=data["focal_asn"],
            vp_ases=set(data["vp_ases"]),
            graph=graph,
            links=links,
            probes_used=data["probes_used"],
            traces_run=data["traces_run"],
            runtime_virtual_seconds=data["runtime_virtual_seconds"],
            provenance=[
                ProvenanceRecord.from_dict(entry)
                for entry in data.get("provenance", [])
            ],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError("malformed result record: %s" % exc) from exc


# -- run reports ------------------------------------------------------------------


def _timing_to_dict(t) -> Dict[str, Any]:
    return {
        "name": t.name,
        "virtual_seconds": round(t.virtual_seconds, 6),
        "probes": t.probes,
    }


def _timing_from_dict(entry):
    from ..core.pipeline import StageTiming

    return StageTiming(
        name=entry["name"],
        virtual_seconds=entry["virtual_seconds"],
        probes=entry["probes"],
    )


def _vp_report_to_dict(vp) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "vp_name": vp.vp_name,
        "vp_addr": ntoa(vp.vp_addr),
        "traces_run": vp.traces_run,
        "probes_used": vp.probes_used,
        "links": vp.links,
        "neighbor_ases": vp.neighbor_ases,
        "stage_timings": [_timing_to_dict(t) for t in vp.stage_timings],
        "pass_counts": dict(sorted(vp.pass_counts.items())),
        "reason_counts": dict(sorted(vp.reason_counts.items())),
    }
    # Resilience fields appear only when set, so archives of clean runs
    # stay byte-identical to pre-fault-subsystem ones.
    if vp.retries:
        entry["retries"] = vp.retries
    if vp.degradation_counts:
        entry["degradations"] = dict(sorted(vp.degradation_counts.items()))
    if vp.failed:
        entry["failed"] = True
        entry["error"] = vp.error
    return entry


def _vp_report_from_dict(entry):
    from ..core.orchestrator import VPReport

    return VPReport(
        vp_name=entry["vp_name"],
        vp_addr=aton(entry["vp_addr"]),
        traces_run=entry["traces_run"],
        probes_used=entry["probes_used"],
        links=entry["links"],
        neighbor_ases=entry["neighbor_ases"],
        stage_timings=[_timing_from_dict(t) for t in entry["stage_timings"]],
        pass_counts=dict(entry["pass_counts"]),
        reason_counts=dict(entry["reason_counts"]),
        retries=entry.get("retries", 0),
        degradation_counts=dict(entry.get("degradations", {})),
        failed=entry.get("failed", False),
        error=entry.get("error"),
    )


def report_to_dict(report) -> Dict[str, Any]:
    """Serialize a :class:`~repro.core.orchestrator.RunReport` — the
    counters and timings only, not the per-VP results (archive those
    separately with :func:`result_to_dict`)."""
    from ..core.orchestrator import REPORT_FORMAT

    data = {
        "format": REPORT_FORMAT,
        "focal_asn": report.focal_asn,
        "vp_ases": sorted(report.vp_ases),
        "interleaved": report.interleaved,
        "shared_aliases": report.shared_aliases,
        "global_timings": [
            _timing_to_dict(t) for t in report.global_timings
        ],
        "vps": [_vp_report_to_dict(vp) for vp in report.vp_reports],
    }
    if report.fault_counts:
        data["fault_counts"] = dict(sorted(report.fault_counts.items()))
    if report.task_failures:
        data["task_failures"] = report.task_failures
    return data


def report_from_dict(data: Dict[str, Any]):
    from ..core.orchestrator import REPORT_FORMAT, RunReport

    if data.get("format") != REPORT_FORMAT:
        raise DataError("unknown report format %r" % data.get("format"))

    try:
        return RunReport(
            focal_asn=data["focal_asn"],
            vp_ases=set(data["vp_ases"]),
            interleaved=data["interleaved"],
            shared_aliases=data["shared_aliases"],
            global_timings=[
                _timing_from_dict(t) for t in data["global_timings"]
            ],
            vp_reports=[
                _vp_report_from_dict(entry) for entry in data["vps"]
            ],
            fault_counts=dict(data.get("fault_counts", {})),
            task_failures=data.get("task_failures", 0),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError("malformed report record: %s" % exc) from exc


# -- checkpoints ------------------------------------------------------------------

CHECKPOINT_FORMAT = "bdrmap-repro-checkpoint/1"


def checkpoint_to_dict(results, vp_reports, metrics=None) -> Dict[str, Any]:
    """Snapshot completed per-VP work mid-run: aligned lists of results
    and their VP reports.  The orchestrator writes one after each VP so an
    interrupted multi-VP run resumes instead of restarting.

    ``metrics`` optionally maps vp_name to that VP's metrics delta (the
    :meth:`~repro.obs.metrics.MetricsRegistry.delta_since` dict).  Stored
    per entry so a resumed run can replay the skipped VPs' counters into
    its fresh registry instead of losing (or re-earning) them.  The key is
    omitted for VPs without one, keeping old checkpoints readable and
    metric-free checkpoints byte-identical to the historical layout.
    """
    if len(results) != len(vp_reports):
        raise DataError(
            "checkpoint wants aligned results/reports, got %d vs %d"
            % (len(results), len(vp_reports))
        )
    entries = []
    for result, vp in zip(results, vp_reports):
        entry: Dict[str, Any] = {
            "report": _vp_report_to_dict(vp),
            "result": result_to_dict(result),
        }
        if metrics and vp.vp_name in metrics:
            entry["metrics"] = metrics[vp.vp_name]
        entries.append(entry)
    return {
        "format": CHECKPOINT_FORMAT,
        "vps": entries,
    }


def checkpoint_from_dict(data: Dict[str, Any]):
    """Rebuild ``(results, vp_reports)`` from a checkpoint dict."""
    if data.get("format") != CHECKPOINT_FORMAT:
        raise DataError(
            "unknown checkpoint format %r" % data.get("format")
        )
    try:
        results = [
            result_from_dict(entry["result"]) for entry in data["vps"]
        ]
        vp_reports = [
            _vp_report_from_dict(entry["report"]) for entry in data["vps"]
        ]
        return results, vp_reports
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError("malformed checkpoint record: %s" % exc) from exc


def checkpoint_metrics_from_dict(data: Dict[str, Any]) -> Dict[str, Any]:
    """The per-VP metrics deltas stored in a checkpoint dict, keyed by
    vp_name.  VPs checkpointed without metrics are simply absent."""
    if data.get("format") != CHECKPOINT_FORMAT:
        raise DataError(
            "unknown checkpoint format %r" % data.get("format")
        )
    deltas: Dict[str, Any] = {}
    for entry in data.get("vps", []):
        if "metrics" in entry:
            deltas[entry["report"]["vp_name"]] = entry["metrics"]
    return deltas


def merge_checkpoint_dicts(parts, vp_order=None) -> Dict[str, Any]:
    """Merge partial checkpoint dicts (e.g. one per worker process of a
    parallel run) into a single checkpoint.

    Entries are concatenated; with ``vp_order`` (a list of vp_names) they
    are re-sorted into that order, so a merge of stride-sharded worker
    checkpoints reproduces the sequential checkpoint byte-for-byte.
    Duplicate vp_names keep the *last* occurrence — a re-run VP
    supersedes its stale entry.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for part in parts:
        if part.get("format") != CHECKPOINT_FORMAT:
            raise DataError(
                "unknown checkpoint format %r" % part.get("format")
            )
        for entry in part.get("vps", []):
            merged[entry["report"]["vp_name"]] = entry
    names = list(merged)
    if vp_order is not None:
        position = {name: i for i, name in enumerate(vp_order)}
        names.sort(key=lambda name: position.get(name, len(position)))
    return {
        "format": CHECKPOINT_FORMAT,
        "vps": [merged[name] for name in names],
    }


def save_checkpoint(results, vp_reports,
                    target: Union[str, IO[str]], metrics=None) -> None:
    """Write a mid-run checkpoint to a path or open file object."""
    payload = json.dumps(
        checkpoint_to_dict(results, vp_reports, metrics=metrics), indent=1
    )
    _write_payload(payload, target)


def load_checkpoint(source: Union[str, IO[str]]):
    """Read a mid-run checkpoint from a path or open file object."""
    if hasattr(source, "read"):
        return checkpoint_from_dict(json.load(source))
    with open(source) as handle:
        return checkpoint_from_dict(json.load(handle))


def save_report(report, target: Union[str, IO[str]]) -> None:
    """Write a run report to a path or open file object."""
    payload = json.dumps(report_to_dict(report), indent=1)
    _write_payload(payload, target)


def load_report(source: Union[str, IO[str]]):
    """Read a run report from a path or open file object."""
    if hasattr(source, "read"):
        return report_from_dict(json.load(source))
    with open(source) as handle:
        return report_from_dict(json.load(handle))


RUN_FORMAT = "bdrmap-repro-run/1"


def orchestrated_run_to_dict(run) -> Dict[str, Any]:
    """The canonical serialized form of an
    :class:`~repro.core.orchestrator.OrchestratedRun`: the run report
    plus every per-VP result.

    This is the byte-identity yardstick for the parallel engine — a
    parallel run and its sequential twin must produce equal dicts (and
    therefore equal ``json.dumps`` bytes) for the same seed.
    """
    return {
        "format": RUN_FORMAT,
        "report": report_to_dict(run.report),
        "results": [result_to_dict(result) for result in run.results],
    }


# -- border maps ------------------------------------------------------------------


def bordermap_to_dict(bmap) -> Dict[str, Any]:
    """Serialize a :class:`~repro.serving.bordermap.BorderMap`.

    ASes are interned: the ``ases`` table lists every AS once, and
    routers, links, and prefixes reference it by index.  Only the tables
    are stored; the derived indexes (interface map, LPM trie, adjacency)
    are rebuilt on load, so the round trip is lossless by construction.
    """
    from ..serving.bordermap import BORDERMAP_FORMAT

    ases = list(bmap.as_table)
    index = {asn: i for i, asn in enumerate(ases)}
    return {
        "format": BORDERMAP_FORMAT,
        "epoch": bmap.epoch,
        "source": bmap.source,
        "focal_asn": bmap.focal_asn,
        "vp_ases": sorted(bmap.vp_ases),
        "ases": ases,
        "routers": [
            {
                "vp": router.vp_name,
                "rid": router.rid,
                "addrs": [ntoa(a) for a in router.addrs],
                "owner": (
                    index[router.owner] if router.owner is not None else None
                ),
                "reason": router.reason,
                "dsts": [index[asn] for asn in router.dsts],
            }
            for router in bmap.routers
        ],
        "links": [
            {
                "vp": link.vp_name,
                "near": link.near_router,
                "far": link.far_router,
                "neighbor": index[link.neighbor_as],
                "rel": link.relationship,
                "reason": link.reason,
                "via_ixp": link.via_ixp,
            }
            for link in bmap.links
        ],
        "prefixes": [
            [str(prefix), index[origin]] for prefix, origin in bmap.prefixes
        ],
    }


def bordermap_from_dict(data: Dict[str, Any]):
    """Rebuild a BorderMap from its artifact dict.

    Tolerates unknown fields (forward compatibility: a newer writer may
    annotate records) but rejects unknown *format* versions outright.
    """
    from ..addr import Prefix
    from ..serving.bordermap import (
        BORDERMAP_FORMAT,
        BorderLink,
        BorderMap,
        CompiledRouter,
    )

    if data.get("format") != BORDERMAP_FORMAT:
        raise DataError(
            "unknown border map format %r" % data.get("format")
        )
    try:
        ases = list(data["ases"])
        routers = [
            CompiledRouter(
                index=position,
                vp_name=entry["vp"],
                rid=entry["rid"],
                addrs=tuple(aton(a) for a in entry["addrs"]),
                owner=(
                    ases[entry["owner"]]
                    if entry["owner"] is not None
                    else None
                ),
                reason=entry["reason"],
                dsts=tuple(ases[i] for i in entry["dsts"]),
            )
            for position, entry in enumerate(data["routers"])
        ]
        links = [
            BorderLink(
                index=position,
                vp_name=entry["vp"],
                near_router=entry["near"],
                far_router=entry["far"],
                neighbor_as=ases[entry["neighbor"]],
                relationship=entry["rel"],
                reason=entry["reason"],
                via_ixp=entry["via_ixp"],
            )
            for position, entry in enumerate(data["links"])
        ]
        prefixes = [
            (Prefix.parse(text), ases[origin])
            for text, origin in data["prefixes"]
        ]
        return BorderMap(
            focal_asn=data["focal_asn"],
            vp_ases=set(data["vp_ases"]),
            routers=routers,
            links=links,
            prefixes=prefixes,
            epoch=data.get("epoch", 0),
            source=data.get("source", ""),
        )
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise DataError("malformed border map record: %s" % exc) from exc


def save_border_map(bmap, target: Union[str, IO[str]],
                    format: str = "json") -> None:
    """Write a border map artifact to a path or open file object.

    ``format="json"`` writes the human-readable dict artifact;
    ``format="binary"`` writes the mmap-able flat artifact
    (:mod:`repro.io.binfmt` container, loaded zero-copy by
    :func:`repro.serving.compiled.load_compiled_map` or — by magic
    sniffing — :func:`load_border_map`).
    """
    if format == "binary":
        from ..serving.compiled import save_compiled_map

        save_compiled_map(bmap, target)
        return
    if format != "json":
        raise DataError(
            "unknown border map format %r (want 'json' or 'binary')"
            % format
        )
    payload = json.dumps(bordermap_to_dict(bmap), indent=1)
    _write_payload(payload, target)


def load_border_map(source: Union[str, IO[str]]):
    """Read a border map artifact from a path or open file object.

    Paths are sniffed: a binary container (magic ``BDRM``) loads as a
    zero-copy :class:`~repro.serving.compiled.CompiledBorderMap`,
    anything else parses as the JSON dict artifact.  Both satisfy the
    :class:`~repro.serving.backend.BorderMapBackend` protocol, so
    callers serve either without caring which landed on disk.
    """
    if hasattr(source, "read"):
        return bordermap_from_dict(json.load(source))
    from .binfmt import sniff

    if sniff(source):
        from ..serving.compiled import load_compiled_map

        return load_compiled_map(source)
    with open(source) as handle:
        return bordermap_from_dict(json.load(handle))


def save_result(result: BdrmapResult, target: Union[str, IO[str]]) -> None:
    """Write a result to a path or open file object."""
    payload = json.dumps(result_to_dict(result), indent=1)
    _write_payload(payload, target)


def load_result(source: Union[str, IO[str]]) -> BdrmapResult:
    """Read a result from a path or open file object."""
    if hasattr(source, "read"):
        return result_from_dict(json.load(source))
    with open(source) as handle:
        return result_from_dict(json.load(handle))
