"""The mmap-able binary container behind compiled border maps.

JSON artifacts deserialize: every load re-parses text, re-interns every
AS, and rebuilds every derived index.  The binary container exists so a
compiled artifact can be *mapped*, not parsed — the kernel lends the
process pages of the file, several worker processes share those pages
copy-free, and "loading" is reading a fixed-size header plus a section
table.

Layout (all integers little-endian, independent of host byte order)::

    offset 0   magic      4 bytes   b"BDRM"
           4   version    u16       container layout version (1)
           6   nsections  u16       entries in the section table
           8   flags      u32       reserved, must be 0
          12   table...   nsections * 40-byte entries:
                 name     16 bytes  ASCII, NUL padded
                 offset   u64       from file start, 8-byte aligned
                 length   u64       payload bytes (before padding)
                 crc32    u32       zlib.crc32 of the payload
                 reserved u32       must be 0
         ...   payloads, each padded to 8-byte alignment

What a section *means* is the writer's business (`repro.serving.compiled`
defines the border-map section set and its own format version inside the
``meta`` section); this module only guarantees the container: named,
checksummed, aligned byte ranges that read back as zero-copy
``memoryview``\\ s over one ``mmap``.

Corruption is never silent: a bad magic/version, a section table that
points past the end of the file (truncation), or a checksum mismatch all
raise :class:`~repro.errors.DataError` naming the offending section.
"""

from __future__ import annotations

import io
import mmap
import os
import struct
import tempfile
import zlib
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..errors import DataError

MAGIC = b"BDRM"
CONTAINER_VERSION = 1

_HEADER = struct.Struct("<4sHHI")          # magic, version, nsections, flags
_ENTRY = struct.Struct("<16sQQII")         # name, offset, length, crc32, rsvd
_ALIGN = 8

#: Longest section name the 16-byte fixed field can hold.
MAX_NAME = 16


def _pad(length: int) -> int:
    return (-length) % _ALIGN


def _encode_name(name: str) -> bytes:
    raw = name.encode("ascii")
    if not raw or len(raw) > MAX_NAME:
        raise DataError(
            "bad section name %r (want 1..%d ASCII bytes)" % (name, MAX_NAME)
        )
    if b"\x00" in raw:
        raise DataError("section name %r contains NUL" % name)
    return raw.ljust(MAX_NAME, b"\x00")


def write_container(
    target: Union[str, "os.PathLike[str]", io.BufferedIOBase],
    sections: Mapping[str, Union[bytes, bytearray, memoryview]],
) -> int:
    """Write ``sections`` (an ordered name→bytes mapping) as one
    container file; returns the total bytes written.

    Section payloads land in mapping order, each 8-byte aligned, each
    checksummed individually so a reader can point at exactly which
    section rotted.
    """
    entries: List[Tuple[bytes, int, int, int]] = []
    offset = _HEADER.size + _ENTRY.size * len(sections)
    offset += _pad(offset)
    blobs: List[bytes] = []
    for name, payload in sections.items():
        blob = bytes(payload)
        entries.append((_encode_name(name), offset, len(blob),
                        zlib.crc32(blob)))
        blobs.append(blob)
        offset += len(blob) + _pad(len(blob))

    out = bytearray()
    out += _HEADER.pack(MAGIC, CONTAINER_VERSION, len(sections), 0)
    for name, start, length, crc in entries:
        out += _ENTRY.pack(name, start, length, crc, 0)
    out += b"\x00" * _pad(len(out))
    for blob in blobs:
        out += blob
        out += b"\x00" * _pad(len(blob))

    if hasattr(target, "write"):
        target.write(bytes(out))
        return len(out)
    # Atomic publish: a crash mid-save (or a concurrent reader mmap-ing
    # the path) must see the old container or the new one, never a
    # truncated file whose checksums cannot even be read.
    target = os.fspath(target)
    directory = os.path.dirname(os.path.abspath(target))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(bytes(out))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return len(out)


def sniff(path: Union[str, "os.PathLike[str]"]) -> bool:
    """True when ``path`` starts with the container magic — how the CLI
    tells a binary artifact from a JSON one without an extension rule."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


class BinaryContainer:
    """A mapped container: named sections as zero-copy memoryviews.

    The file's pages are borrowed via ``mmap`` (sharable read-only
    across processes); ``section(name)`` hands out a ``memoryview`` over
    the mapping, so no payload byte is copied into the Python heap until
    a consumer asks for one.

    Checksums are verified per section — eagerly for every section when
    ``verify=True`` (the default: no silent partial loads), or lazily on
    first access otherwise (pure O(header) open for latency-critical
    paths that trust local storage).
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        verify: bool = True,
    ) -> None:
        self.path = os.fspath(path)
        self._file = open(self.path, "rb")
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size < _HEADER.size:
                raise DataError(
                    "not a border map container: %s (file too short)"
                    % self.path
                )
            self._mmap: Optional[mmap.mmap] = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except DataError:
            self._file.close()
            raise
        except (OSError, ValueError) as exc:
            self._file.close()
            raise DataError("cannot map %s: %s" % (self.path, exc)) from exc
        try:
            self._entries = self._read_table(size)
        except DataError:
            self.close()
            raise
        self._checked: Dict[str, bool] = {}
        if verify:
            for name in self._entries:
                self._verify(name)

    # -- table ---------------------------------------------------------------

    def _read_table(self, size: int) -> "Dict[str, Tuple[int, int, int]]":
        magic, version, nsections, flags = _HEADER.unpack_from(self._mmap, 0)
        if magic != MAGIC:
            raise DataError(
                "not a border map container: %s (bad magic %r)"
                % (self.path, magic)
            )
        if version != CONTAINER_VERSION:
            raise DataError(
                "unsupported container version %d in %s (this reader "
                "understands version %d)"
                % (version, self.path, CONTAINER_VERSION)
            )
        if flags != 0:
            raise DataError(
                "unknown container flags 0x%x in %s" % (flags, self.path)
            )
        table_end = _HEADER.size + _ENTRY.size * nsections
        if table_end > size:
            raise DataError(
                "truncated container %s: section table needs %d bytes, "
                "file has %d" % (self.path, table_end, size)
            )
        entries: Dict[str, Tuple[int, int, int]] = {}
        for position in range(nsections):
            raw_name, offset, length, crc, reserved = _ENTRY.unpack_from(
                self._mmap, _HEADER.size + _ENTRY.size * position
            )
            name = raw_name.rstrip(b"\x00").decode("ascii", "replace")
            if reserved != 0:
                raise DataError(
                    "corrupt section table entry %r in %s" % (name, self.path)
                )
            if name in entries:
                raise DataError(
                    "duplicate section %r in %s" % (name, self.path)
                )
            if offset + length > size:
                raise DataError(
                    "truncated section %r in %s: wants bytes [%d, %d) of a "
                    "%d-byte file" % (name, self.path, offset,
                                      offset + length, size)
                )
            entries[name] = (offset, length, crc)
        return entries

    def _verify(self, name: str) -> None:
        if self._checked.get(name):
            return
        offset, length, crc = self._entries[name]
        actual = zlib.crc32(memoryview(self._mmap)[offset:offset + length])
        if actual != crc:
            raise DataError(
                "corrupt section %r in %s: crc32 %08x != stored %08x"
                % (name, self.path, actual, crc)
            )
        self._checked[name] = True

    # -- access --------------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def section(self, name: str) -> memoryview:
        """The named section as a read-only zero-copy memoryview."""
        if self._mmap is None:
            raise DataError("container %s is closed" % self.path)
        try:
            offset, length, _ = self._entries[name]
        except KeyError:
            raise DataError(
                "missing section %r in %s (has: %s)"
                % (name, self.path, ", ".join(self._entries) or "none")
            ) from None
        self._verify(name)
        return memoryview(self._mmap)[offset:offset + length]

    def section_bytes(self, name: str) -> bytes:
        """The named section copied out as ``bytes`` (for tiny sections
        like JSON metadata, where a copy is cheaper than care)."""
        return bytes(self.section(name))

    def close(self) -> None:
        """Release the mapping.  Any memoryview handed out earlier keeps
        the pages alive until it is itself released."""
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:
                # Exported memoryviews still alive; the mapping dies with
                # them.  Dropping our reference is the best we can do.
                pass
            self._mmap = None
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "BinaryContainer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_container(
    path: Union[str, "os.PathLike[str]"], verify: bool = True
) -> BinaryContainer:
    """Map ``path`` and return its :class:`BinaryContainer`."""
    return BinaryContainer(path, verify=verify)
