"""Human-readable text renderings (sc_bdrmap / traceroute style).

``format_trace`` renders a TraceResult the way traceroute prints paths;
``format_result`` renders a BdrmapResult the way the released sc_bdrmap
dump reads: one block per neighbor AS, listing the border routers and the
heuristic that owned them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional

from ..addr import ntoa
from ..core.report import BdrmapResult
from ..net import ResponseKind
from ..probing.traceroute import TraceResult

_KIND_NOTES = {
    ResponseKind.ECHO_REPLY: "",
    ResponseKind.TTL_EXPIRED: "",
    ResponseKind.DEST_UNREACH_PORT: " !P",
    ResponseKind.DEST_UNREACH_ADMIN: " !X",
    ResponseKind.DEST_UNREACH_NET: " !N",
    ResponseKind.TCP_RST: " !R",
}


def format_trace(
    trace: TraceResult,
    name_of: Optional[Callable[[int], Optional[str]]] = None,
) -> str:
    """Render one traceroute in the classic text format.

    ``name_of`` optionally supplies hostnames (e.g. a
    :class:`repro.datasets.dns.ReverseDNS` ``lookup``).
    """
    lines = [
        "traceroute to %s, %d hops, stop: %s"
        % (ntoa(trace.dst), len(trace.hops), trace.stop_reason)
    ]
    for hop in trace.hops:
        if hop.addr is None:
            lines.append("%2d  *" % hop.ttl)
            continue
        shown = ntoa(hop.addr)
        if name_of is not None:
            name = name_of(hop.addr)
            if name:
                shown = "%s (%s)" % (name, ntoa(hop.addr))
        note = _KIND_NOTES.get(hop.kind, "")
        lines.append("%2d  %s  %.3f ms%s" % (hop.ttl, shown, hop.rtt, note))
    return "\n".join(lines)


def format_result(result: BdrmapResult, max_addrs: int = 4) -> str:
    """Render a bdrmap result as an sc_bdrmap-style neighbor dump."""
    lines = [
        "# bdrmap %s: AS%d, %d traces, %d probes"
        % (result.vp_name, result.focal_asn, result.traces_run,
           result.probes_used),
        "# %d interdomain links to %d neighbors"
        % (len(result.links), len(result.neighbor_ases())),
    ]
    by_neighbor: Dict[int, List] = defaultdict(list)
    for link in result.links:
        by_neighbor[link.neighbor_as].append(link)
    for neighbor_as in sorted(by_neighbor):
        links = by_neighbor[neighbor_as]
        lines.append("")
        lines.append("AS%d: %d link%s" % (
            neighbor_as, len(links), "s" if len(links) != 1 else ""))
        for link in sorted(links, key=lambda l: l.near_rid):
            near = result.graph.routers.get(link.near_rid)
            near_text = (
                " ".join(ntoa(a) for a in sorted(near.addrs)[:max_addrs])
                if near is not None and near.addrs
                else "?"
            )
            if link.far_rid is not None:
                far = result.graph.routers.get(link.far_rid)
                far_text = (
                    " ".join(ntoa(a) for a in sorted(far.addrs)[:max_addrs])
                    if far is not None and far.addrs
                    else "?"
                )
            else:
                far_text = "(silent)"
            lines.append(
                "  near[%s] -- far[%s]  %s%s"
                % (near_text, far_text, link.reason,
                   "  (ixp)" if link.via_ixp else "")
            )
    return "\n".join(lines)
