"""Persistence: JSON serialization of traces and bdrmap results.

The real bdrmap stores scamper ``warts`` and emits text reports; offline we
serialize to JSON so runs can be archived, diffed, and re-analyzed without
re-probing (``repro.analysis`` functions accept loaded results wherever
they accept fresh ones)."""

from .serialize import (
    checkpoint_from_dict,
    checkpoint_metrics_from_dict,
    checkpoint_to_dict,
    load_checkpoint,
    load_report,
    load_result,
    merge_checkpoint_dicts,
    orchestrated_run_to_dict,
    report_from_dict,
    report_to_dict,
    result_from_dict,
    result_to_dict,
    save_checkpoint,
    save_report,
    save_result,
    trace_from_dict,
    trace_to_dict,
)
from .binfmt import BinaryContainer, open_container, sniff, write_container
from .text import format_result, format_trace
from .bundle import load_bundle, save_bundle
from .serialize import collection_from_dict, collection_to_dict
from .serialize import (
    bordermap_from_dict,
    bordermap_to_dict,
    load_border_map,
    save_border_map,
)

__all__ = [
    "BinaryContainer",
    "open_container",
    "sniff",
    "write_container",
    "bordermap_to_dict",
    "bordermap_from_dict",
    "save_border_map",
    "load_border_map",
    "format_trace",
    "format_result",
    "save_bundle",
    "load_bundle",
    "collection_to_dict",
    "collection_from_dict",
    "trace_to_dict",
    "trace_from_dict",
    "result_to_dict",
    "result_from_dict",
    "report_to_dict",
    "report_from_dict",
    "save_report",
    "load_report",
    "save_result",
    "load_result",
    "checkpoint_to_dict",
    "checkpoint_from_dict",
    "checkpoint_metrics_from_dict",
    "merge_checkpoint_dicts",
    "orchestrated_run_to_dict",
    "save_checkpoint",
    "load_checkpoint",
]
