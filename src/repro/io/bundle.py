"""On-disk measurement bundles: the §5.2 inputs plus trace archives.

A bundle directory is what a real deployment would ship from its central
system to an analyst:

    bundle/
      rib.txt          TABLE_DUMP2 RIB snapshot (Route Views / RIS style)
      delegations.txt  RIR extended delegation file
      peeringdb.txt    IXP prefixes (PeeringDB style)
      pch.txt          IXP membership (PCH style)
      as2org.txt       AS→organization mapping
      meta.json        focal ASN + curated VP sibling list
      traces.json      the trace archive (optional)

Relationship inferences are *not* stored: they are re-derived from the RIB
and sibling data on load, exactly as §5.2 prescribes — so re-analyses pick
up inference-algorithm improvements.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Tuple

from ..asgraph import infer_relationships
from ..bgp import dump_rib, parse_rib
from ..core.bdrmap import DataBundle
from ..core.collection import Collection
from ..datasets import (
    generate_as2org,
    generate_ixp_data,
    generate_rir_files,
    parse_as2org,
    parse_ixp_files,
    parse_rir_file,
)
from ..errors import DataError
from .serialize import collection_from_dict, collection_to_dict

_FILES = ("rib.txt", "delegations.txt", "peeringdb.txt", "pch.txt",
          "as2org.txt", "meta.json")


def save_bundle(
    directory: str,
    scenario,
    data: DataBundle,
    collection: Optional[Collection] = None,
) -> None:
    """Write a bundle directory for ``scenario``'s measurement inputs."""
    os.makedirs(directory, exist_ok=True)
    internet = scenario.internet
    pdb_text, pch_text = generate_ixp_data(internet)
    files = {
        "rib.txt": dump_rib(data.view),
        "delegations.txt": generate_rir_files(internet),
        "peeringdb.txt": pdb_text,
        "pch.txt": pch_text,
        "as2org.txt": generate_as2org(internet),
        "meta.json": json.dumps(
            {
                "focal_asn": data.focal_asn,
                "vp_ases": sorted(data.vp_ases),
            },
            indent=1,
        ),
    }
    for name, text in files.items():
        with open(os.path.join(directory, name), "w") as handle:
            handle.write(text)
    if collection is not None:
        with open(os.path.join(directory, "traces.json"), "w") as handle:
            json.dump(collection_to_dict(collection), handle)


def load_bundle(directory: str) -> Tuple[DataBundle, Optional[Collection]]:
    """Load a bundle; re-derives relationship inferences from the RIB."""
    for name in _FILES:
        if not os.path.exists(os.path.join(directory, name)):
            raise DataError("bundle missing %s" % name)

    def read(name: str) -> str:
        with open(os.path.join(directory, name)) as handle:
            return handle.read()

    meta = json.loads(read("meta.json"))
    view = parse_rib(read("rib.txt"))
    sibling_map = parse_as2org(read("as2org.txt"))
    rels = infer_relationships(view.paths(), siblings=sibling_map.as_dict())
    rir = parse_rir_file(read("delegations.txt"))
    ixp = parse_ixp_files(read("peeringdb.txt"), read("pch.txt"))
    data = DataBundle(
        view=view,
        rels=rels,
        rir=rir,
        ixp=ixp,
        vp_ases=set(meta["vp_ases"]),
        focal_asn=meta["focal_asn"],
    )
    collection = None
    traces_path = os.path.join(directory, "traces.json")
    if os.path.exists(traces_path):
        with open(traces_path) as handle:
            collection = collection_from_dict(json.load(handle))
    return data, collection
