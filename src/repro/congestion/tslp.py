"""Time-series latency probing (TSLP) of inferred border links.

For each interdomain link bdrmap identified, probe the near (VP-network)
side and the far (neighbor) side on a fixed cadence across virtual days.
Congestion on the link itself delays only the far-side samples; the
near-side series is the control that cancels intra-network queueing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.report import BdrmapResult
from ..net import Network, ProbeKind
from ..probing.ping import ping


@dataclass(frozen=True)
class ProbeTarget:
    """One monitorable border link: its two interface addresses."""

    near_addr: int
    far_addr: int
    neighbor_as: int
    near_rid: int
    far_rid: int


def probe_targets_from_result(result: BdrmapResult) -> List[ProbeTarget]:
    """Derive the near/far probing pairs from a bdrmap result.

    Links whose far side never revealed an address (§5.4.8 silent
    neighbors) cannot be monitored — exactly the real system's limitation.
    """
    targets: List[ProbeTarget] = []
    for link in result.links:
        if link.far_rid is None:
            continue
        near = result.graph.routers.get(link.near_rid)
        far = result.graph.routers.get(link.far_rid)
        if near is None or far is None or not near.addrs or not far.addrs:
            continue
        targets.append(
            ProbeTarget(
                near_addr=min(near.addrs),
                far_addr=min(far.addrs),
                neighbor_as=link.neighbor_as,
                near_rid=link.near_rid,
                far_rid=link.far_rid,
            )
        )
    return targets


@dataclass
class LinkSeries:
    """RTT time series for one border link."""

    target: ProbeTarget
    # (virtual time, near rtt or None, far rtt or None)
    samples: List[Tuple[float, Optional[float], Optional[float]]] = field(
        default_factory=list
    )

    def diff_series(self) -> List[Tuple[float, float]]:
        """(time, far - near) for rounds where both sides answered."""
        return [
            (t, far - near)
            for t, near, far in self.samples
            if near is not None and far is not None
        ]


@dataclass
class TSLPReport:
    series: Dict[Tuple[int, int], LinkSeries] = field(default_factory=dict)
    rounds: int = 0
    probes_sent: int = 0

    def for_link(self, near_rid: int, far_rid: int) -> Optional[LinkSeries]:
        return self.series.get((near_rid, far_rid))


class TSLPMonitor:
    """Drives the periodic probing over virtual time."""

    def __init__(
        self,
        network: Network,
        vp_addr: int,
        targets: List[ProbeTarget],
        interval: float = 900.0,
    ) -> None:
        self.network = network
        self.vp_addr = vp_addr
        self.targets = targets
        self.interval = interval

    def run(self, duration: float) -> TSLPReport:
        """Probe every target each interval for ``duration`` virtual
        seconds."""
        report = TSLPReport()
        for target in self.targets:
            report.series[(target.near_rid, target.far_rid)] = LinkSeries(target)
        elapsed = 0.0
        before = self.network.probes_sent
        while elapsed < duration:
            now = self.network.now
            for target in self.targets:
                near = ping(self.network, self.vp_addr, target.near_addr,
                            kind=ProbeKind.ICMP_ECHO)
                far = ping(self.network, self.vp_addr, target.far_addr,
                           kind=ProbeKind.ICMP_ECHO)
                report.series[(target.near_rid, target.far_rid)].samples.append(
                    (
                        now,
                        near.rtt if near is not None else None,
                        far.rtt if far is not None else None,
                    )
                )
            report.rounds += 1
            self.network.advance(self.interval)
            elapsed += self.interval
        report.probes_sent = self.network.probes_sent - before
        return report
