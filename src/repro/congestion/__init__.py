"""Interdomain congestion monitoring — the application bdrmap exists for.

§2 of the paper: "our method forms the cornerstone of the system we are
building to map interdomain performance".  That system (the CAIDA/MIT
congestion project, Luckie et al. IMC 2014) sends time-series latency
probes (TSLP) to the *near* and *far* side of every border link bdrmap
identified; a recurring diurnal elevation of the far side's RTT relative
to the near side indicates a congested interdomain link.

This package implements that monitor on top of bdrmap results and the
simulator's link-congestion model.
"""

from .tslp import TSLPMonitor, LinkSeries, TSLPReport, probe_targets_from_result
from .detect import CongestionVerdict, detect_congestion

__all__ = [
    "TSLPMonitor",
    "LinkSeries",
    "TSLPReport",
    "probe_targets_from_result",
    "CongestionVerdict",
    "detect_congestion",
]
