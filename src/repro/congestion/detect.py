"""Congestion detection from TSLP series.

The IMC 2014 approach: a congested link shows a *recurring diurnal
pattern* — the far-minus-near RTT difference is elevated during the busy
window and returns to baseline off-peak.  We estimate the baseline as a
low quantile of the difference series and flag links whose busy-period
level exceeds it by a threshold for a sustained fraction of the window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from .tslp import LinkSeries


class CongestionVerdict(enum.Enum):
    CONGESTED = "congested"
    CLEAN = "clean"
    INSUFFICIENT = "insufficient"  # too few two-sided samples


@dataclass(frozen=True)
class LinkAssessment:
    verdict: CongestionVerdict
    baseline_ms: float = 0.0
    peak_elevation_ms: float = 0.0
    elevated_fraction: float = 0.0


def _quantile(values: List[float], q: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def detect_congestion(
    series: LinkSeries,
    min_samples: int = 24,
    elevation_threshold_ms: float = 5.0,
    sustained_fraction: float = 0.15,
) -> LinkAssessment:
    """Assess one link's series.

    ``elevation_threshold_ms``: how far above baseline the far-minus-near
    difference must rise to count as queueing (well above jitter).
    ``sustained_fraction``: the fraction of samples that must be elevated —
    a diurnal busy period, not a blip.
    """
    diffs = series.diff_series()
    if len(diffs) < min_samples:
        return LinkAssessment(CongestionVerdict.INSUFFICIENT)
    values = [d for _, d in diffs]
    baseline = _quantile(values, 0.10)
    elevated = [v for v in values if v - baseline > elevation_threshold_ms]
    fraction = len(elevated) / len(values)
    peak = max(values) - baseline
    if fraction >= sustained_fraction:
        return LinkAssessment(
            CongestionVerdict.CONGESTED,
            baseline_ms=baseline,
            peak_elevation_ms=peak,
            elevated_fraction=fraction,
        )
    return LinkAssessment(
        CongestionVerdict.CLEAN,
        baseline_ms=baseline,
        peak_elevation_ms=peak,
        elevated_fraction=fraction,
    )
