"""Per-probe retry budgets with exponential backoff (§5.3 hardening).

scamper retries an unanswered probe after a wait; under injected loss the
same discipline recovers most hops.  A :class:`RetryPolicy` describes the
budget; :func:`send_with_retry` executes it and classifies the outcome:

* answered on the first attempt — the normal case;
* answered after k lost attempts — evidence of *loss* (the hop exists and
  responds; the network ate packets);
* never answered — *silence*: indistinguishable, from one vantage point,
  between a silent router and persistent loss.  Callers treat it exactly
  as they treated an unresponsive hop before retries existed.

Backoff advances the network's virtual clock, so retries are not free:
they cost run time, and a rate-limited router sees the slower probe train
a real scamper would send.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..net import Network, Probe, Response
from ..obs.metrics import MetricsRegistry

__all__ = ["RetryPolicy", "RetryStats", "send_with_retry"]

LOSS = "loss"          # recovered after at least one lost attempt
SILENCE = "silence"    # no attempt was answered
CLEAN = "clean"        # first attempt answered


@dataclass(frozen=True)
class RetryPolicy:
    """An exponential-backoff retry budget for one logical probe.

    ``attempts`` counts the total tries (first attempt included).  The
    wait before retry k (1-based) is ``backoff_s * multiplier**(k-1)``,
    capped at ``max_backoff_s`` — scamper's defaults are two attempts
    spaced by a fixed wait; the exponential schedule generalises that for
    chaos-level loss rates.
    """

    attempts: int = 3
    backoff_s: float = 1.0
    multiplier: float = 2.0
    max_backoff_s: float = 8.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")

    def delay_before(self, attempt: int) -> float:
        """Virtual seconds to wait before (1-based) retry ``attempt``."""
        if attempt < 1:
            return 0.0
        return min(
            self.backoff_s * self.multiplier ** (attempt - 1),
            self.max_backoff_s,
        )


_RETRY_COUNTERS = ("retries", "recovered", "exhausted", "budget")


class RetryStats:
    """Aggregate retry accounting, shared by a tool or a whole run.

    Counts live in a :class:`~repro.obs.metrics.MetricsRegistry` —
    private by default, the run's shared one after :meth:`bind` — so
    retry totals appear once under ``<prefix>retries`` etc. instead of
    being duplicated into hand-rolled report counters.  The original
    field API is preserved: ``stats.retries += 1`` still works.
    """

    def __init__(self) -> None:
        self._registry = MetricsRegistry()
        self._prefix = "retry."

    def bind(self, registry: MetricsRegistry,
             prefix: str = "retry.") -> None:
        """Repoint at a shared registry under ``prefix`` (per-VP
        prefixes keep concurrent collections' counts apart)."""
        if not registry.enabled or (
            registry is self._registry and prefix == self._prefix
        ):
            return
        for name in _RETRY_COUNTERS:
            count = self._registry.counter(self._prefix + name)
            if count:
                registry.inc(prefix + name, count)
        self._registry = registry
        self._prefix = prefix

    @property
    def retries(self) -> int:
        """Extra attempts beyond the first."""
        return self._registry.counter(self._prefix + "retries")

    @retries.setter
    def retries(self, value: int) -> None:
        self._registry.set_counter(self._prefix + "retries", value)

    @property
    def recovered(self) -> int:
        """Probes answered only after a retry."""
        return self._registry.counter(self._prefix + "recovered")

    @recovered.setter
    def recovered(self, value: int) -> None:
        self._registry.set_counter(self._prefix + "recovered", value)

    @property
    def exhausted(self) -> int:
        """Probes that stayed silent after the budget."""
        return self._registry.counter(self._prefix + "exhausted")

    @exhausted.setter
    def exhausted(self, value: int) -> None:
        self._registry.set_counter(self._prefix + "exhausted", value)

    @property
    def budget(self) -> int:
        """Configured retry allowance (extra attempts the policy permits).

        Recorded by whoever owns the policy — e.g. a
        :class:`~repro.remote.protocol.Channel` publishes its
        ``max_retries`` here — so reports can show spent/allowed rather
        than a bare spend count."""
        return self._registry.counter(self._prefix + "budget")

    @budget.setter
    def budget(self, value: int) -> None:
        self._registry.set_counter(self._prefix + "budget", value)

    def merge(self, other: "RetryStats") -> None:
        self.retries += other.retries
        self.recovered += other.recovered
        self.exhausted += other.exhausted
        self.budget += other.budget

    def as_dict(self) -> dict:
        return {
            "retries": self.retries,
            "recovered": self.recovered,
            "exhausted": self.exhausted,
            "budget": self.budget,
        }


def send_with_retry(
    network: Network,
    make_probe: Callable[[], Probe],
    policy: Optional[RetryPolicy],
    stats: Optional[RetryStats] = None,
) -> Tuple[Optional[Response], str, int]:
    """Send a probe under ``policy``; returns (response, classification,
    attempts_used).

    With ``policy=None`` this is a single plain ``network.send`` — the
    legacy behaviour, byte-identical to pre-retry code.
    """
    if policy is None:
        response = network.send(make_probe())
        return response, (CLEAN if response is not None else SILENCE), 1

    response: Optional[Response] = None
    used = 0
    for attempt in range(policy.attempts):
        if attempt:
            network.advance(policy.delay_before(attempt))
            if stats is not None:
                stats.retries += 1
        used += 1
        response = network.send(make_probe())
        if response is not None:
            break
    if response is None:
        if stats is not None:
            stats.exhausted += 1
        return None, SILENCE, used
    if used > 1:
        if stats is not None:
            stats.recovered += 1
        return response, LOSS, used
    return response, CLEAN, used
