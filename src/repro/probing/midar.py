"""MIDAR-style monotonic IPID analysis [21].

The monotonic bounds test: if two addresses share one central IP-ID
counter, the merged sequence of their samples, ordered by time, must be
strictly increasing (allowing 16-bit wrap).  bdrmap uses this stricter test
instead of Ally's proximity fudge factor (§5.3, "Limit false aliases").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..net import Network, ProbeKind
from .ping import ping

__all__ = [
    "Sample",
    "monotonic_shared_counter",
    "midar_test",
    "estimate_velocity",
    "velocities_compatible",
]

# A sample: (virtual time, tag identifying which address, ipid)
Sample = Tuple[float, int, int]

_WRAP = 1 << 16


def _unwrap(ids: Sequence[int]) -> List[int]:
    """Lift a wrapped 16-bit sequence to a monotone-comparable one."""
    lifted: List[int] = []
    offset = 0
    previous: Optional[int] = None
    for value in ids:
        if previous is not None and value < previous:
            offset += _WRAP
        lifted.append(value + offset)
        previous = value
    return lifted


def monotonic_shared_counter(
    samples: Sequence[Sample],
    max_velocity: float = 3000.0,
) -> Optional[bool]:
    """Do interleaved samples look like one shared counter?

    Returns True (consistent), False (inconsistent), or None (not enough
    information: too few samples, samples from only one address, or a
    constant/zero counter).

    The test requires samples, ordered by time, to strictly increase
    (mod 2^16) and the implied counter velocity to stay plausible —
    monotonicity alone, per MIDAR.
    """
    ordered = sorted(samples)
    tags = {tag for _, tag, _ in ordered}
    if len(ordered) < 4 or len(tags) < 2:
        return None
    ids = [ipid for _, _, ipid in ordered]
    if len(set(ids)) == 1:
        return None  # constant counter (e.g. always zero) — unusable
    lifted = _unwrap(ids)
    times = [t for t, _, _ in ordered]
    for i in range(1, len(lifted)):
        gap = lifted[i] - lifted[i - 1]
        if gap <= 0:
            return False  # not strictly increasing → different counters
        dt = max(times[i] - times[i - 1], 1e-3)
        if gap / dt > max_velocity:
            return False  # implausible velocity → random IDs / different base
    return True


def midar_test(
    network: Network,
    vp_addr: int,
    addr_a: int,
    addr_b: int,
    probes_per_addr: int = 5,
    kind: ProbeKind = ProbeKind.ICMP_ECHO,
) -> Optional[bool]:
    """Collect interleaved samples from two addresses and run the test."""
    samples: List[Sample] = []
    for _ in range(probes_per_addr):
        for tag, addr in ((0, addr_a), (1, addr_b)):
            response = ping(network, vp_addr, addr, kind=kind)
            if response is not None:
                samples.append((network.now, tag, response.ipid))
    return monotonic_shared_counter(samples)


def estimate_velocity(samples: Sequence[Tuple[float, int]]) -> Optional[float]:
    """Estimate an address's IP-ID counter velocity in IDs/second.

    MIDAR's scaling trick [21]: before running pairwise tests over millions
    of addresses, estimate each counter's velocity from a few spaced
    samples; only addresses with *compatible* velocities can share a
    counter, so the O(n²) test space collapses to same-velocity buckets.

    Returns None for unusable counters (constant, or too few samples), and
    a value for monotone counters — implausibly huge ones (random IDs)
    included, so callers can reject on magnitude.
    """
    if len(samples) < 3:
        return None
    ordered = sorted(samples)
    ids = [ipid for _, ipid in ordered]
    if len(set(ids)) == 1:
        return None
    lifted = _unwrap(ids)
    dt = ordered[-1][0] - ordered[0][0]
    if dt <= 0:
        return None
    return (lifted[-1] - lifted[0]) / dt


def velocities_compatible(
    velocity_a: Optional[float],
    velocity_b: Optional[float],
    ratio: float = 2.0,
    slack: float = 20.0,
) -> bool:
    """Could two counters with these velocities be the same counter?

    Unknown velocities are always "compatible" (no evidence either way).
    Known velocities must agree within a multiplicative ``ratio`` after an
    additive ``slack`` absorbing sampling noise at low rates.
    """
    if velocity_a is None or velocity_b is None:
        return True
    low, high = sorted((abs(velocity_a) + slack, abs(velocity_b) + slack))
    return high <= low * ratio
