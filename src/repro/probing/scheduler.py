"""Probing scheduler (§5.3).

bdrmap probes one address block per target AS at a time (politeness) but
multiple target ASes in parallel (run time).  Tasks are generators that
yield after each unit of probing; the scheduler interleaves up to
``parallelism`` of them round-robin, starting queued tasks as slots free
up — a single-threaded rendition of scamper's probing loop.

A task that raises no longer kills the whole run: the failure is recorded,
the remaining tasks complete, and the first exception is re-raised at the
end (or merely reported, with ``reraise=False`` — what a resilient
orchestrator wants: one target AS's crash should not strand the others).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterator, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry, NULL_REGISTRY


class RoundRobinScheduler:
    """Interleave generator-based probing tasks.

    ``metrics``/``label`` name the phase (``scheduler.<label>.*``
    counters), so a run's trace shows how many tasks each probing
    phase completed, failed, and stepped through.
    """

    def __init__(self, parallelism: int = 8,
                 metrics: Optional[MetricsRegistry] = None,
                 label: str = "probing") -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.label = label
        self._pending: Deque[Iterator[None]] = deque()
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.failures: List[Tuple[Iterator[None], BaseException]] = []

    def add(self, task: Iterator[None]) -> None:
        self._pending.append(task)

    def add_all(self, tasks) -> None:
        for task in tasks:
            self.add(task)

    def run(self, on_progress: Optional[Callable[[int], None]] = None,
            reraise: bool = True) -> int:
        """Run all tasks to completion; returns number of scheduler steps.

        Exceptions from individual tasks are caught and collected in
        ``self.failures`` so the remaining active and pending tasks still
        run; ``tasks_completed``/``tasks_failed`` stay consistent either
        way.  With ``reraise=True`` (the default) the first failure is
        re-raised once everything else has finished.
        """
        active: List[Iterator[None]] = []
        steps = 0
        completed_before = self.tasks_completed
        failed_before = self.tasks_failed
        # ``failures`` accumulates across run() calls (callers inspect it
        # after several phases); re-raising must still be scoped to *this*
        # run, or a second run would re-raise a stale, already-reported
        # failure from the first.
        failures_before = len(self.failures)
        while self._pending or active:
            while self._pending and len(active) < self.parallelism:
                active.append(self._pending.popleft())
            finished: List[int] = []
            for index, task in enumerate(active):
                try:
                    next(task)
                except StopIteration:
                    finished.append(index)
                    self.tasks_completed += 1
                except Exception as exc:  # noqa: BLE001 - isolate the task
                    finished.append(index)
                    self.tasks_failed += 1
                    self.failures.append((task, exc))
                steps += 1
            for index in reversed(finished):
                active.pop(index)
            if on_progress is not None:
                on_progress(steps)
        metrics = self.metrics
        if metrics.enabled:
            prefix = "scheduler.%s." % self.label
            metrics.inc(
                prefix + "tasks_completed",
                self.tasks_completed - completed_before,
            )
            metrics.inc(
                prefix + "tasks_failed", self.tasks_failed - failed_before
            )
            metrics.inc(prefix + "steps", steps)
        if reraise and len(self.failures) > failures_before:
            raise self.failures[failures_before][1]
        return steps
