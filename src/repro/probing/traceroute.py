"""Paris traceroute (§5.3).

ICMP-echo probes with a constant flow identifier per trace (the Paris
discipline [2]), per-hop retries, a gap limit, and doubletree-style early
stopping against a caller-supplied stop set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..net import Network, Probe, ProbeKind, ResponseKind
from .retry import RetryPolicy, RetryStats, send_with_retry


@dataclass(frozen=True)
class TraceHop:
    """One TTL's worth of traceroute output (addr None = no response)."""

    ttl: int
    addr: Optional[int]
    kind: Optional[ResponseKind]
    rtt: float
    ipid: int

    @property
    def responded(self) -> bool:
        return self.addr is not None

    @property
    def is_ttl_expired(self) -> bool:
        return self.kind is ResponseKind.TTL_EXPIRED


@dataclass
class TraceResult:
    """A completed traceroute."""

    vp_addr: int
    dst: int
    hops: List[TraceHop] = field(default_factory=list)
    stop_reason: str = "incomplete"
    probes_used: int = 0
    # Resilience accounting (all zero when no RetryPolicy is in force).
    retries_used: int = 0     # extra attempts beyond each hop's first
    recovered_hops: int = 0   # hops answered only after a retry (loss)
    silent_hops: int = 0      # hops that exhausted the retry budget

    def responsive_hops(self) -> List[TraceHop]:
        return [hop for hop in self.hops if hop.responded]

    def addresses(self) -> List[int]:
        return [hop.addr for hop in self.hops if hop.addr is not None]

    def reached_dst(self) -> bool:
        return self.stop_reason == "completed"

    def last_responsive(self) -> Optional[TraceHop]:
        for hop in reversed(self.hops):
            if hop.responded:
                return hop
        return None


def paris_traceroute(
    network: Network,
    vp_addr: int,
    dst: int,
    max_ttl: int = 32,
    attempts: int = 2,
    gap_limit: int = 5,
    stop_set: Optional[Set[int]] = None,
    kind: ProbeKind = ProbeKind.ICMP_ECHO,
    retry: Optional[RetryPolicy] = None,
    retry_stats: Optional[RetryStats] = None,
) -> TraceResult:
    """Trace the forward path from the VP at ``vp_addr`` toward ``dst``.

    ``kind`` selects the probe method: ICMP-echo Paris is what bdrmap uses
    (§5.3); UDP Paris is the classic traceroute, completing on a port
    unreachable from the destination instead of an echo reply.

    ``retry`` replaces the flat ``attempts`` budget with an exponential
    backoff schedule (see :mod:`repro.probing.retry`) and classifies each
    unanswered hop as recovered loss or persistent silence; without it the
    legacy fixed-attempts loop runs unchanged.

    Stops on: destination response (echo reply / unreachable), ``gap_limit``
    consecutive unresponsive hops, an address present in ``stop_set``
    (doubletree), or ``max_ttl``.
    """
    result = TraceResult(vp_addr=vp_addr, dst=dst)
    flow_id = dst & 0xFFFF
    completion_kinds = {ResponseKind.ECHO_REPLY, ResponseKind.TCP_RST}
    if kind is ProbeKind.UDP:
        completion_kinds = {ResponseKind.DEST_UNREACH_PORT}
    gap = 0
    for ttl in range(1, max_ttl + 1):
        def probe() -> Probe:
            return Probe(src=vp_addr, dst=dst, ttl=ttl, kind=kind,
                         flow_id=flow_id)

        if retry is not None:
            response, verdict, used = send_with_retry(
                network, probe, retry, retry_stats
            )
            result.probes_used += used
            result.retries_used += used - 1
            if verdict == "loss":
                result.recovered_hops += 1
            elif verdict == "silence":
                result.silent_hops += 1
        else:
            response = None
            for _ in range(attempts):
                result.probes_used += 1
                response = network.send(probe())
                if response is not None:
                    break
        if response is None:
            result.hops.append(TraceHop(ttl, None, None, 0.0, 0))
            gap += 1
            if gap >= gap_limit:
                result.stop_reason = "gaplimit"
                return result
            continue
        gap = 0
        hop = TraceHop(ttl, response.src, response.kind, response.rtt, response.ipid)
        result.hops.append(hop)
        if response.kind is not ResponseKind.TTL_EXPIRED:
            result.stop_reason = (
                "completed" if response.kind in completion_kinds else "unreach"
            )
            return result
        if stop_set is not None and response.src in stop_set:
            result.stop_reason = "stopset"
            return result
    result.stop_reason = "maxttl"
    return result
