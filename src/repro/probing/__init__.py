"""Measurement tools (the scamper equivalents of §5.3): Paris traceroute,
ping, doubletree stop sets, and the alias-resolution probers Ally,
Mercator, prefixscan, and the MIDAR-style monotonic IPID test."""

from .traceroute import TraceHop, TraceResult, paris_traceroute
from .ping import ping
from .stopset import StopSet
from .ally import AliasVerdict, AllyResult, ally_test, ally_repeated
from .mercator import mercator_probe
from .midar import monotonic_shared_counter, midar_test
from .prefixscan import prefixscan
from .scheduler import RoundRobinScheduler
from .ttl_limited import TTLLimitedProber

__all__ = [
    "TraceHop",
    "TraceResult",
    "paris_traceroute",
    "ping",
    "StopSet",
    "AliasVerdict",
    "AllyResult",
    "ally_test",
    "ally_repeated",
    "mercator_probe",
    "monotonic_shared_counter",
    "midar_test",
    "prefixscan",
    "RoundRobinScheduler",
    "TTLLimitedProber",
]
