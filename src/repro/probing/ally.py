"""Ally alias test [40] with bdrmap's hardening (§5.3).

Ally infers two addresses are aliases when interleaved probes yield IP-ID
values drawn from one central counter.  bdrmap (a) tries UDP, TCP, and
ICMP-echo probes so unresponsiveness to one protocol does not end the test,
(b) repeats the measurement five times at five-minute intervals and keeps
the alias only if no repetition rejects the shared-counter hypothesis, and
(c) applies MIDAR's strict monotonicity requirement instead of a fudge
factor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..net import Network, ProbeKind
from .midar import Sample, monotonic_shared_counter
from .ping import ping
from .retry import RetryPolicy, RetryStats


class AliasVerdict(enum.Enum):
    ALIAS = "alias"
    NOT_ALIAS = "not-alias"
    UNKNOWN = "unknown"


@dataclass
class AllyResult:
    verdict: AliasVerdict
    kind_used: Optional[ProbeKind] = None
    samples: List[Sample] = field(default_factory=list)
    rounds: int = 1


_KINDS = (ProbeKind.UDP, ProbeKind.ICMP_ECHO, ProbeKind.TCP_ACK)


def ally_test(
    network: Network,
    vp_addr: int,
    addr_a: int,
    addr_b: int,
    probes_per_addr: int = 4,
    ttl_prober=None,
    retry: Optional[RetryPolicy] = None,
    retry_stats: Optional[RetryStats] = None,
) -> AllyResult:
    """One Ally round: try each probe method until one yields a verdict.

    ``ttl_prober`` (a :class:`repro.probing.ttl_limited.TTLLimitedProber`)
    adds the fourth method: TTL-limited probes for routers that answer
    nothing sent directly to them (§5.3).  ``retry`` hardens the
    individual pings against packet loss (lost samples otherwise shrink
    the IPID series and weaken the verdict).
    """
    for kind in _KINDS:
        samples: List[Sample] = []
        misses = 0
        for _ in range(probes_per_addr):
            for tag, addr in ((0, addr_a), (1, addr_b)):
                response = ping(network, vp_addr, addr, kind=kind,
                                retry=retry, retry_stats=retry_stats)
                if response is None:
                    misses += 1
                    if misses > probes_per_addr:
                        break
                    continue
                samples.append((network.now, tag, response.ipid))
            else:
                continue
            break
        verdict = monotonic_shared_counter(samples)
        if verdict is True:
            return AllyResult(AliasVerdict.ALIAS, kind, samples)
        if verdict is False:
            return AllyResult(AliasVerdict.NOT_ALIAS, kind, samples)
    if ttl_prober is not None:
        samples = ttl_prober.interleaved_samples(
            addr_a, addr_b, rounds=probes_per_addr
        )
        verdict = monotonic_shared_counter(samples)
        if verdict is True:
            return AllyResult(AliasVerdict.ALIAS, None, samples)
        if verdict is False:
            return AllyResult(AliasVerdict.NOT_ALIAS, None, samples)
    return AllyResult(AliasVerdict.UNKNOWN)


def ally_repeated(
    network: Network,
    vp_addr: int,
    addr_a: int,
    addr_b: int,
    rounds: int = 5,
    interval: float = 300.0,
    probes_per_addr: int = 4,
    ttl_prober=None,
    retry: Optional[RetryPolicy] = None,
    retry_stats: Optional[RetryStats] = None,
) -> AllyResult:
    """The false-alias guard: repeat Ally; a single rejection kills the
    alias (two independent counters can transiently overlap, but rarely
    five times in a row)."""
    first: Optional[AllyResult] = None
    for round_index in range(rounds):
        if round_index:
            network.advance(interval)
        result = ally_test(network, vp_addr, addr_a, addr_b, probes_per_addr,
                           ttl_prober=ttl_prober, retry=retry,
                           retry_stats=retry_stats)
        if first is None:
            first = result
        if result.verdict is AliasVerdict.NOT_ALIAS:
            result.rounds = round_index + 1
            return result
        if result.verdict is AliasVerdict.UNKNOWN:
            # No point re-probing silent addresses four more times.
            result.rounds = round_index + 1
            return result
    assert first is not None
    first.rounds = rounds
    return first
