"""Mercator-style alias resolution [15].

Probe an address with UDP to an unused high port; many routers answer with
an ICMP port-unreachable sourced from the interface that transmits the
reply.  If probing address A yields a response sourced from S ≠ A, then A
and S are interfaces of the same router; if probing A and B yields the same
source, A and B are aliases.
"""

from __future__ import annotations

from typing import Optional

from ..net import Network, ProbeKind, ResponseKind
from .ping import ping
from .retry import RetryPolicy, RetryStats


def mercator_probe(
    network: Network, vp_addr: int, addr: int, attempts: int = 2,
    retry: Optional[RetryPolicy] = None,
    retry_stats: Optional[RetryStats] = None,
) -> Optional[int]:
    """The source address of ``addr``'s port-unreachable response, or None
    if it does not answer UDP probes."""
    response = ping(
        network, vp_addr, addr, kind=ProbeKind.UDP, attempts=attempts,
        retry=retry, retry_stats=retry_stats,
    )
    if response is None or response.kind is not ResponseKind.DEST_UNREACH_PORT:
        return None
    return response.src
