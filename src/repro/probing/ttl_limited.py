"""TTL-limited alias probing (§5.3).

Some routers ignore packets addressed *to* them (no echo reply, no port
unreachable) yet still generate ICMP time-exceeded for packets expiring
*at* them.  Ally can still sample their IP-ID counter by re-sending probes
toward a destination whose path is known (from earlier traceroutes) to
cross the router at a given TTL — the fourth probe method the paper lists.

A sample is only trusted when the time-exceeded source equals the target
address (otherwise we cannot be sure whose counter we are reading: load
balancing or rerouting may have moved the path).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..net import Network, Probe, ProbeKind, ResponseKind
from .midar import Sample


class TTLLimitedProber:
    """Samples router IP-ID counters via in-transit TTL expiry.

    Aims — (destination, ttl) pairs at which a probe expires at the target
    address — are learned from traceroute output via :meth:`learn`.
    """

    def __init__(self, network: Network, vp_addr: int) -> None:
        self.network = network
        self.vp_addr = vp_addr
        self._aims: Dict[int, Tuple[int, int]] = {}  # addr -> (dst, ttl)

    def learn(self, addr: int, dst: int, ttl: int) -> None:
        """Record that a trace toward ``dst`` saw ``addr`` at ``ttl``."""
        if addr not in self._aims:
            self._aims[addr] = (dst, ttl)

    def learn_from_trace(self, trace) -> None:
        """Harvest aims from a :class:`TraceResult`."""
        for hop in trace.hops:
            if (
                hop.addr is not None
                and hop.is_ttl_expired
                and hop.addr != trace.dst
            ):
                self.learn(hop.addr, trace.dst, hop.ttl)

    def can_probe(self, addr: int) -> bool:
        return addr in self._aims

    def aim(self, addr: int) -> Optional[Tuple[int, int]]:
        """The learned (destination, ttl) aim for ``addr``, if any."""
        return self._aims.get(addr)

    def _sample_once(self, addr: int, tag: int) -> Optional[Sample]:
        aim = self._aims.get(addr)
        if aim is None:
            return None
        dst, ttl = aim
        response = self.network.send(
            Probe(src=self.vp_addr, dst=dst, ttl=ttl,
                  kind=ProbeKind.ICMP_ECHO, flow_id=dst & 0xFFFF)
        )
        if (
            response is not None
            and response.kind is ResponseKind.TTL_EXPIRED
            and response.src == addr
        ):
            return (self.network.now, tag, response.ipid)
        return None

    def samples(self, addr: int, tag: int, count: int = 4) -> List[Sample]:
        """IP-ID samples of ``addr``'s router via TTL-limited probes."""
        collected: List[Sample] = []
        for _ in range(count):
            sample = self._sample_once(addr, tag)
            if sample is not None:
                collected.append(sample)
        return collected

    def interleaved_samples(
        self, addr_a: int, addr_b: int, rounds: int = 4
    ) -> List[Sample]:
        """Alternating samples from two addresses for the monotonic test."""
        if not (self.can_probe(addr_a) and self.can_probe(addr_b)):
            return []
        collected: List[Sample] = []
        for _ in range(rounds):
            for tag, addr in ((0, addr_a), (1, addr_b)):
                sample = self._sample_once(addr, tag)
                if sample is not None:
                    collected.append(sample)
        return collected
