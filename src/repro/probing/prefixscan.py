"""Prefixscan (§5.3, [26]).

Interdomain point-to-point links usually carry a /30 or /31 subnet.  Given
a traceroute segment ``prev → addr``, prefixscan asks whether ``addr`` is
the *inbound* interface of a router (rather than a third-party address) by
testing whether ``addr``'s subnet mate is an alias of ``prev``: if it is,
the p2p link prev—addr exists and prev and addr really are adjacent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net import Network
from ..topology.addressing import p2p_mate
from .ally import AliasVerdict, ally_test
from .mercator import mercator_probe


@dataclass(frozen=True)
class PrefixscanResult:
    """Outcome of a prefixscan for one (prev, addr) hop pair."""

    prev: int
    addr: int
    subnet_plen: Optional[int]   # 30 or 31 when confirmed, else None
    mate: Optional[int]          # the confirmed subnet mate

    @property
    def confirmed(self) -> bool:
        return self.subnet_plen is not None


def prefixscan(
    network: Network, vp_addr: int, prev: int, addr: int
) -> PrefixscanResult:
    """Try /31 then /30 subnets for ``addr`` and test mate-of-addr ≡ prev."""
    for plen in (31, 30):
        mate = p2p_mate(addr, plen)
        if mate is None or mate == addr:
            continue
        if mate == prev:
            # prev is itself the mate: the p2p subnet is directly observed.
            return PrefixscanResult(prev, addr, plen, mate)
        # Mercator first (cheap), then Ally.
        source = mercator_probe(network, vp_addr, mate)
        if source is not None and source == prev:
            return PrefixscanResult(prev, addr, plen, mate)
        result = ally_test(network, vp_addr, mate, prev)
        if result.verdict is AliasVerdict.ALIAS:
            return PrefixscanResult(prev, addr, plen, mate)
    return PrefixscanResult(prev, addr, None, None)
