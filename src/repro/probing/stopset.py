"""Doubletree-style stop sets (§5.3, [10]).

bdrmap records the first external address seen in each trace toward a
target AS, and stops later traces toward the same AS when they hit an
address already in that AS's stop set — so each border is crossed once,
not once per destination block.

``StopSet(shared=True)`` additionally maintains one cross-target set:
an address learned while probing *any* target AS then stops traces
toward every target.  That is the global-stop-set half of doubletree —
a VP's forward paths toward different target ASes share their first
hops, so the border routers of the VP network itself are re-crossed
once per *VP* instead of once per target AS.  It trades fidelity to the
paper's per-target discipline (§6's per-AS egress analyses want each
target to record its own egress) for probe volume, so it is opt-in via
:class:`~repro.core.collection.CollectionConfig.share_stop_sets`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Set, Tuple

TargetKey = Tuple[int, ...]  # the origin-AS tuple of the target block


class TargetStopView:
    """One target's view of a shared :class:`StopSet`.

    Quacks like the plain ``Set[int]`` that ``paris_traceroute`` and the
    collector expect (``in``, ``add``, iteration, ``len``) but consults
    the cross-target set on membership and publishes additions to it.
    """

    __slots__ = ("_stop", "_key")

    def __init__(self, stop: "StopSet", key: TargetKey) -> None:
        self._stop = stop
        self._key = key

    def __contains__(self, addr: int) -> bool:
        if addr in self._stop.global_set:
            return True
        return addr in self._stop._sets.get(self._key, ())

    def add(self, addr: int) -> None:
        self._stop._sets.setdefault(self._key, set()).add(addr)
        self._stop.global_set.add(addr)

    def update(self, addrs: Iterable[int]) -> None:
        for addr in addrs:
            self.add(addr)

    def __iter__(self) -> Iterator[int]:
        return iter(self._stop._sets.get(self._key, ()))

    def __len__(self) -> int:
        return len(self._stop._sets.get(self._key, ()))


class StopSet:
    """Per-target-AS sets of already-seen first-external addresses."""

    def __init__(self, shared: bool = False) -> None:
        self._sets: Dict[TargetKey, Set[int]] = {}
        self.shared = shared
        # Union of every target's entries; consulted by every target's
        # view when ``shared`` is on (and merely maintained when off —
        # it is cheap and keeps ``shared`` togglable between phases).
        self.global_set: Set[int] = set()

    def for_target(self, key: TargetKey):
        """The stop set a trace toward ``key`` should consult."""
        if self.shared:
            return TargetStopView(self, tuple(key))
        return self._sets.setdefault(tuple(key), set())

    def add(self, key: TargetKey, addr: int) -> None:
        self._sets.setdefault(tuple(key), set()).add(addr)
        self.global_set.add(addr)

    def add_many(self, key: TargetKey, addrs: Iterable[int]) -> None:
        for addr in addrs:
            self.add(key, addr)

    def __contains__(self, item: Tuple[TargetKey, int]) -> bool:
        key, addr = item
        return addr in self._sets.get(tuple(key), ())

    def total_entries(self) -> int:
        return sum(len(s) for s in self._sets.values())
