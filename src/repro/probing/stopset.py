"""Doubletree-style stop sets (§5.3, [10]).

bdrmap records the first external address seen in each trace toward a
target AS, and stops later traces toward the same AS when they hit an
address already in that AS's stop set — so each border is crossed once,
not once per destination block.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

TargetKey = Tuple[int, ...]  # the origin-AS tuple of the target block


class StopSet:
    """Per-target-AS sets of already-seen first-external addresses."""

    def __init__(self) -> None:
        self._sets: Dict[TargetKey, Set[int]] = {}

    def for_target(self, key: TargetKey) -> Set[int]:
        return self._sets.setdefault(tuple(key), set())

    def add(self, key: TargetKey, addr: int) -> None:
        self.for_target(key).add(addr)

    def add_many(self, key: TargetKey, addrs: Iterable[int]) -> None:
        self.for_target(key).update(addrs)

    def __contains__(self, item: Tuple[TargetKey, int]) -> bool:
        key, addr = item
        return addr in self._sets.get(tuple(key), ())

    def total_entries(self) -> int:
        return sum(len(s) for s in self._sets.values())
