"""Direct probing of single addresses (ICMP echo / UDP / TCP)."""

from __future__ import annotations

from typing import Optional

from ..net import Network, Probe, ProbeKind, Response
from .retry import RetryPolicy, RetryStats, send_with_retry


def ping(
    network: Network,
    vp_addr: int,
    dst: int,
    kind: ProbeKind = ProbeKind.ICMP_ECHO,
    attempts: int = 1,
    ttl: int = 64,
    retry: Optional[RetryPolicy] = None,
    retry_stats: Optional[RetryStats] = None,
) -> Optional[Response]:
    """Probe ``dst`` directly; return the first response, if any.

    ``retry`` upgrades the flat ``attempts`` loop to an exponential
    backoff budget (loss-tolerant); without it behaviour is unchanged.
    """
    def probe() -> Probe:
        return Probe(src=vp_addr, dst=dst, ttl=ttl, kind=kind,
                     flow_id=dst & 0xFFFF)

    if retry is not None:
        response, _, _ = send_with_retry(network, probe, retry, retry_stats)
        return response
    response = None
    for _ in range(attempts):
        response = network.send(probe())
        if response is not None:
            return response
    return response
