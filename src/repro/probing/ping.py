"""Direct probing of single addresses (ICMP echo / UDP / TCP)."""

from __future__ import annotations

from typing import Optional

from ..net import Network, Probe, ProbeKind, Response


def ping(
    network: Network,
    vp_addr: int,
    dst: int,
    kind: ProbeKind = ProbeKind.ICMP_ECHO,
    attempts: int = 1,
    ttl: int = 64,
) -> Optional[Response]:
    """Probe ``dst`` directly; return the first response, if any."""
    response = None
    for _ in range(attempts):
        response = network.send(
            Probe(src=vp_addr, dst=dst, ttl=ttl, kind=kind, flow_id=dst & 0xFFFF)
        )
        if response is not None:
            return response
    return response
