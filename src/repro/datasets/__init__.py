"""Input datasets of §5.2: RIR delegation files, IXP prefix lists
(PeeringDB/PCH-like), and the AS→organization (sibling) mapping — each with
a synthesizer (from ground truth, with realistic imperfections) and a
parser (the format a real deployment would ingest)."""

from .rir import DelegationRecord, RIRDelegations, generate_rir_files, parse_rir_file
from .ixp import IXPDataset, generate_ixp_data, parse_ixp_files
from .siblings import SiblingMap, generate_as2org, parse_as2org
from .dns import DNSConfig, ReverseDNS, generate_reverse_dns

__all__ = [
    "DNSConfig",
    "ReverseDNS",
    "generate_reverse_dns",
    "DelegationRecord",
    "RIRDelegations",
    "generate_rir_files",
    "parse_rir_file",
    "IXPDataset",
    "generate_ixp_data",
    "parse_ixp_files",
    "SiblingMap",
    "generate_as2org",
    "parse_as2org",
]
