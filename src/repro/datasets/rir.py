"""RIR delegation files (§5.2).

The five RIRs publish "extended delegation" files listing address ranges
delegated to organizations, with an opaque per-organization ID.  bdrmap uses
them in §5.4.1 to attribute address space the VP network holds but does not
announce in BGP.  We emit the standard pipe-separated format::

    registry|cc|ipv4|1.2.0.0|65536|20160101|allocated|opaque-id

and parse it back into a longest-prefix-matchable index.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..addr import Prefix, aton, ntoa
from ..errors import DataError
from ..topology.model import Internet
from ..trie import PrefixTrie

_REGISTRIES = ["arin", "ripencc", "apnic", "lacnic", "afrinic"]


@dataclass(frozen=True)
class DelegationRecord:
    registry: str
    prefix: Prefix
    opaque_id: str


class RIRDelegations:
    """Parsed delegation records with longest-prefix-match lookup."""

    def __init__(self, records: Iterable[DelegationRecord]) -> None:
        self.records: List[DelegationRecord] = list(records)
        self._trie: PrefixTrie = PrefixTrie()
        for record in self.records:
            self._trie.insert(record.prefix, record.opaque_id)

    def opaque_id_of(self, addr: int) -> Optional[str]:
        """Opaque org ID of the most specific delegation covering addr."""
        return self._trie.lookup_value(addr)

    def prefixes_of(self, opaque_id: str) -> List[Prefix]:
        return sorted(
            record.prefix
            for record in self.records
            if record.opaque_id == opaque_id
        )

    def same_org(self, addr_a: int, addr_b: int) -> bool:
        id_a = self.opaque_id_of(addr_a)
        return id_a is not None and id_a == self.opaque_id_of(addr_b)

    def __len__(self) -> int:
        return len(self.records)


def _opaque(org_id: str) -> str:
    """A stable opaque ID, the way RIRs hash organization handles."""
    return hashlib.sha1(org_id.encode("utf-8")).hexdigest()[:12]


def generate_rir_files(internet: Internet) -> str:
    """Serialize the generator's delegation ledger as RIR file text."""
    lines = ["2|combined|%d" % len(internet.rir_delegations)]
    for index, (org_id, prefix) in enumerate(sorted(
        internet.rir_delegations, key=lambda item: item[1]
    )):
        registry = _REGISTRIES[index % len(_REGISTRIES)]
        lines.append(
            "%s|ZZ|ipv4|%s|%d|20160101|allocated|%s"
            % (registry, ntoa(prefix.addr), prefix.size, _opaque(org_id))
        )
    return "\n".join(lines) + "\n"


def parse_rir_file(text: str) -> RIRDelegations:
    """Parse delegation file text into an :class:`RIRDelegations` index."""
    records: List[DelegationRecord] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) < 3 or fields[2] != "ipv4":
            continue  # header / summary / non-IPv4 rows
        if len(fields) < 8:
            raise DataError("short delegation record at line %d" % line_no)
        registry, _cc, _family, start_text, count_text = fields[:5]
        opaque_id = fields[7]
        if not count_text.isdigit():
            raise DataError("bad count at line %d" % line_no)
        start = aton(start_text)
        count = int(count_text)
        if count <= 0 or count & (count - 1):
            raise DataError("delegation size not a power of two at line %d" % line_no)
        plen = 32 - (count.bit_length() - 1)
        records.append(DelegationRecord(registry, Prefix(start, plen), opaque_id))
    return RIRDelegations(records)


def opaque_id_for_org(org_id: str) -> str:
    """Expose the opaque-ID derivation (analysis layers need it to find the
    VP organization's delegations)."""
    return _opaque(org_id)
