"""Reverse DNS for router interfaces.

The paper used DNS hostnames two ways: during development, as a sanity
check on ownership inferences (§5.1 — noting that names are sometimes
wrong, and carry organization names rather than AS numbers, so they could
not be used for automated validation); and in §6, to geolocate the VP-side
interfaces of border routers from the airport codes operators embed in
hostnames (Figure 16).

We synthesize a PTR table with the same character: per-operator naming
conventions (``xe-1-0-3.cr2.sea.as2001.example.net``), a large fraction of
interfaces with no name at all, a fraction of *stale* names left from
previous assignments (wrong router, wrong city), and names that identify
the organization rather than the AS.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..rng import make_rng
from ..topology.geography import CITY_BY_IATA, City
from ..topology.model import Internet

_IFACE_NAMES = ["xe-%d-0-%d", "ge-%d-1-%d", "et-%d-0-%d", "hu-%d-0-%d"]
_ROLE_NAMES = {True: ("bdr", "br", "pe"), False: ("cr", "core", "agg")}


@dataclass
class ReverseDNS:
    """A PTR table with hostname-parsing helpers."""

    names: Dict[int, str] = field(default_factory=dict)

    def lookup(self, addr: int) -> Optional[str]:
        return self.names.get(addr)

    def city_hint(self, addr: int) -> Optional[City]:
        """The city embedded in the hostname, if recognizable."""
        name = self.names.get(addr)
        if name is None:
            return None
        for label in name.split("."):
            city = CITY_BY_IATA.get(label)
            if city is not None:
                return city
        return None

    def asn_hint(self, addr: int) -> Optional[int]:
        """The AS number embedded in the hostname, if any.

        Many operators use organization names instead (§5.1), in which
        case this returns None even though a human could tell the owner.
        """
        name = self.names.get(addr)
        if name is None:
            return None
        match = re.search(r"\bas(\d+)\b", name)
        return int(match.group(1)) if match else None

    def org_hint(self, addr: int) -> Optional[str]:
        """The organization-ish label of the hostname's domain."""
        name = self.names.get(addr)
        if name is None:
            return None
        labels = name.split(".")
        if len(labels) >= 3:
            return labels[-3]
        return None

    def __len__(self) -> int:
        return len(self.names)


@dataclass
class DNSConfig:
    coverage: float = 0.6        # fraction of interfaces with PTR records
    stale_rate: float = 0.04     # names left over from renumbering (§5.1)
    org_name_rate: float = 0.35  # domains use org names, not AS numbers
    as_without_dns_rate: float = 0.25  # operators publishing nothing


def generate_reverse_dns(
    internet: Internet,
    config: Optional[DNSConfig] = None,
    always_named: Optional[Iterable[int]] = None,
) -> ReverseDNS:
    """Synthesize the PTR table for every addressed interface.

    ``always_named`` lists ASes guaranteed to publish hostnames (the §6
    analysis requires the access network itself to — it did).
    """
    if config is None:
        config = DNSConfig()
    rng = make_rng(internet.seed, "dns")
    table = ReverseDNS()
    named = set(always_named or ())

    pop_city: Dict[int, City] = {}
    for node in internet.ases.values():
        for pop in node.pops:
            pop_city[pop.pop_id] = pop.city

    no_dns_ases = {
        node.asn
        for node in internet.ases.values()
        if rng.random() < config.as_without_dns_rate and node.asn not in named
    }
    org_name_ases = {
        node.asn
        for node in internet.ases.values()
        if rng.random() < config.org_name_rate
    }

    def domain_of(asn: int) -> str:
        node = internet.ases[asn]
        if asn in org_name_ases:
            org = internet.orgs.get(node.org_id)
            label = (org.name if org else node.org_id).lower()
            label = re.sub(r"[^a-z0-9]+", "", label) or "net%d" % asn
            return "%s.example.net" % label
        return "as%d.example.net" % asn

    all_cities = list(CITY_BY_IATA.values())
    for router_id in sorted(internet.routers):
        router = internet.routers[router_id]
        if router.asn in no_dns_ases:
            continue
        city = pop_city.get(router.pop_id)
        role = rng.choice(_ROLE_NAMES[router.is_border])
        router_label = "%s%d" % (role, router_id % 10 + 1)
        coverage = 0.95 if router.asn in named else config.coverage
        for iface in router.interfaces:
            if iface.addr is None or rng.random() > coverage:
                continue
            iface_label = rng.choice(_IFACE_NAMES) % (
                rng.randint(0, 3), rng.randint(0, 9)
            )
            named_city = city
            if rng.random() < config.stale_rate:
                # Stale PTR: points at a previous assignment elsewhere.
                named_city = rng.choice(all_cities)
            parts = [iface_label, router_label]
            if named_city is not None:
                parts.append(named_city.iata)
            parts.append(domain_of(router.asn))
            table.names[iface.addr] = ".".join(parts)
    return table
