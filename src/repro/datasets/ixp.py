"""IXP prefix lists (§5.2).

PeeringDB records IXP peering-LAN prefixes (entered by IXP operators, so
sometimes missing or stale); PCH records (address, ASN) pairs seen at its
route collectors.  The paper combines both because neither is complete.  We
synthesize both files from ground truth *with injected imperfections* and
parse/combine them the way bdrmap does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..addr import Prefix, aton, ntoa
from ..errors import DataError
from ..rng import make_rng
from ..topology.model import Internet
from ..trie import PrefixTrie


@dataclass
class IXPDataset:
    """Combined IXP knowledge: peering-LAN prefixes and per-address ASNs."""

    prefixes: List[Prefix] = field(default_factory=list)
    addr_to_asn: Dict[int, int] = field(default_factory=dict)
    _trie: Optional[PrefixTrie] = None

    def is_ixp_addr(self, addr: int) -> bool:
        if self._trie is None:
            trie: PrefixTrie = PrefixTrie()
            for prefix in self.prefixes:
                trie.insert(prefix, True)
            self._trie = trie
        return self._trie.lookup_value(addr) is not None

    def member_asn(self, addr: int) -> Optional[int]:
        """The AS an operator recorded for this fabric address, if any."""
        return self.addr_to_asn.get(addr)


def generate_ixp_data(internet: Internet, complete: bool = False) -> Tuple[str, str]:
    """Synthesize (peeringdb_text, pch_text).

    Unless ``complete``, one IXP is missing from PeeringDB and a fraction of
    member address records are withheld, mirroring real-world staleness.
    """
    rng = make_rng(internet.seed, "ixp-dataset")
    ixps = [internet.ixps[i] for i in sorted(internet.ixps)]
    missing_from_pdb: Set[int] = set()
    if not complete and len(ixps) > 1:
        missing_from_pdb.add(ixps[rng.randrange(len(ixps))].ixp_id)

    pdb_lines = ["# peeringdb ixpfx dump", "# ixp|prefix"]
    pch_lines = ["# pch ixp directory", "# ixp|prefix|addr|asn"]
    for ixp in ixps:
        if ixp.ixp_id not in missing_from_pdb:
            pdb_lines.append("%s|%s" % (ixp.name, ixp.fabric))
        pch_lines.append("%s|%s||" % (ixp.name, ixp.fabric))
        for asn in sorted(ixp.members):
            if not complete and rng.random() < 0.25:
                continue  # member never recorded their assignment
            addr = ixp.members[asn]
            pch_lines.append("%s|%s|%s|%d" % (ixp.name, ixp.fabric, ntoa(addr), asn))
    return "\n".join(pdb_lines) + "\n", "\n".join(pch_lines) + "\n"


def parse_ixp_files(peeringdb_text: str, pch_text: str) -> IXPDataset:
    """Combine PeeringDB and PCH data into one dataset (the paper's union)."""
    prefixes: Set[Prefix] = set()
    addr_to_asn: Dict[int, int] = {}
    for line in peeringdb_text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) < 2:
            raise DataError("bad peeringdb row: %r" % line)
        prefixes.add(Prefix.parse(fields[1]))
    for line in pch_text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) < 4:
            raise DataError("bad pch row: %r" % line)
        prefixes.add(Prefix.parse(fields[1]))
        if fields[2] and fields[3]:
            addr_to_asn[aton(fields[2])] = int(fields[3])
    return IXPDataset(prefixes=sorted(prefixes), addr_to_asn=addr_to_asn)
