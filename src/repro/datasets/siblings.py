"""AS→organization (sibling) mapping (§5.2, §4 challenge 5).

CAIDA's as2org dataset groups ASes under organizations using WHOIS; it is
derived quarterly and has known false/missing entries.  We synthesize it
from ground truth with injected staleness and parse it into a
:class:`SiblingMap`.  Note §5.2: the *VP network's* sibling list is the one
input bdrmap curates manually — scenarios supply that list from ground
truth, while this dataset (used for everything else) stays imperfect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

from ..errors import DataError
from ..rng import make_rng
from ..topology.model import Internet


@dataclass
class SiblingMap:
    """Organization membership for ASes."""

    org_of: Dict[int, str] = field(default_factory=dict)
    members: Dict[str, FrozenSet[int]] = field(default_factory=dict)

    def siblings_of(self, asn: int) -> FrozenSet[int]:
        """All ASes in ``asn``'s organization (including itself)."""
        org = self.org_of.get(asn)
        if org is None:
            return frozenset((asn,))
        return self.members.get(org, frozenset((asn,)))

    def are_siblings(self, a: int, b: int) -> bool:
        org_a = self.org_of.get(a)
        return org_a is not None and org_a == self.org_of.get(b)

    def as_dict(self) -> Dict[int, FrozenSet[int]]:
        return {asn: self.siblings_of(asn) for asn in self.org_of}


def generate_as2org(internet: Internet, complete: bool = False) -> str:
    """Emit an as2org-style file; unless ``complete``, ~10% of sibling
    groupings are broken apart (stale WHOIS)."""
    rng = make_rng(internet.seed, "as2org")
    lines = ["# format: asn|org_id|org_name"]
    for org_id in sorted(internet.orgs):
        org = internet.orgs[org_id]
        for asn in sorted(org.asns):
            emitted_org = org_id
            if not complete and len(org.asns) > 1 and rng.random() < 0.10:
                emitted_org = "%s-stale-%d" % (org_id, asn)
            lines.append("%d|%s|%s" % (asn, emitted_org, org.name))
    return "\n".join(lines) + "\n"


def parse_as2org(text: str) -> SiblingMap:
    org_of: Dict[int, str] = {}
    groups: Dict[str, Set[int]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) < 2 or not fields[0].isdigit():
            raise DataError("bad as2org row: %r" % line)
        asn = int(fields[0])
        org = fields[1]
        org_of[asn] = org
        groups.setdefault(org, set()).add(asn)
    return SiblingMap(
        org_of=org_of,
        members={org: frozenset(asns) for org, asns in groups.items()},
    )
