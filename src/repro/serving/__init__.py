"""Border-map serving: compiled query artifact, engine, and service.

The write path (``repro.core``) produces per-VP results; this package is
the read path: :func:`compile_border_map` freezes results into an
immutable :class:`BorderMap`, :class:`QueryEngine` serves cached lookups
over it, and :class:`BorderMapService` adds request batching and
zero-downtime swaps of a recompiled map.
"""

from .bordermap import (
    BORDERMAP_FORMAT,
    BorderLink,
    BorderMap,
    CompiledRouter,
    NeighborInfo,
    Ownership,
    compile_border_map,
)
from .bench import ServingBenchSummary, make_workload, run_serving_benchmark
from .engine import EngineStats, LRUCache, OpStats, QueryEngine
from .naive import naive_border_for, naive_owner_of
from .service import Answer, BorderMapService

__all__ = [
    "BORDERMAP_FORMAT",
    "BorderLink",
    "BorderMap",
    "CompiledRouter",
    "NeighborInfo",
    "Ownership",
    "compile_border_map",
    "ServingBenchSummary",
    "make_workload",
    "run_serving_benchmark",
    "EngineStats",
    "LRUCache",
    "OpStats",
    "QueryEngine",
    "naive_border_for",
    "naive_owner_of",
    "Answer",
    "BorderMapService",
]
