"""Border-map serving: compiled query artifact, engine, and service.

The write path (``repro.core``) produces per-VP results; this package is
the read path: :func:`compile_border_map` freezes results into an
immutable :class:`BorderMap`, :class:`CompiledBorderMap` lowers that
into flat mmap-able arrays, :class:`QueryEngine` serves cached lookups
over either backend (one :class:`BorderMapBackend` protocol), and
:class:`BorderMapService` adds request batching and zero-downtime swaps
of a recompiled map.
"""

from .backend import BorderMapBackend, close_backend
from .bordermap import (
    BORDERMAP_FORMAT,
    BorderLink,
    BorderMap,
    CompiledRouter,
    NeighborInfo,
    Ownership,
    best_relationship,
    compile_border_map,
    next_generation,
)
from .bench import (
    AsyncBenchSummary,
    CompiledBenchSummary,
    ServiceBenchSummary,
    ServingBenchSummary,
    make_duplicate_workload,
    make_workload,
    run_async_benchmark,
    run_compiled_benchmark,
    run_service_benchmark,
    run_serving_benchmark,
)
from .compiled import (
    BIN_FORMAT,
    CompiledBorderMap,
    compile_map,
    load_compiled_map,
    save_compiled_map,
)
from .engine import EngineStats, LRUCache, OpStats, QueryEngine
from .frontend import AsyncBorderFrontEnd, make_async_frontend
from .naive import naive_border_for, naive_owner_of
from .server import (
    ShardedBorderServer,
    VirtualClock,
    is_shed,
    make_local_server,
    make_process_server,
    mark_stale,
    shard_index,
)
from .service import Answer, BorderMapService
from .shard import (
    AsyncShardTransport,
    InProcessTransport,
    ShardChannel,
    ShardWorker,
    SpawnProcessTransport,
)
from .supervisor import (
    CircuitBreaker,
    RestartPolicy,
    ShardSupervisor,
)

__all__ = [
    "BIN_FORMAT",
    "BORDERMAP_FORMAT",
    "BorderLink",
    "BorderMap",
    "BorderMapBackend",
    "CompiledBorderMap",
    "CompiledRouter",
    "NeighborInfo",
    "Ownership",
    "best_relationship",
    "compile_border_map",
    "compile_map",
    "load_compiled_map",
    "save_compiled_map",
    "CompiledBenchSummary",
    "ServingBenchSummary",
    "make_workload",
    "run_compiled_benchmark",
    "run_serving_benchmark",
    "EngineStats",
    "LRUCache",
    "OpStats",
    "QueryEngine",
    "naive_border_for",
    "naive_owner_of",
    "Answer",
    "BorderMapService",
    "ServiceBenchSummary",
    "run_service_benchmark",
    "close_backend",
    "next_generation",
    "ShardedBorderServer",
    "VirtualClock",
    "is_shed",
    "make_local_server",
    "make_process_server",
    "mark_stale",
    "shard_index",
    "AsyncBorderFrontEnd",
    "make_async_frontend",
    "AsyncShardTransport",
    "AsyncBenchSummary",
    "make_duplicate_workload",
    "run_async_benchmark",
    "InProcessTransport",
    "ShardChannel",
    "ShardWorker",
    "SpawnProcessTransport",
    "CircuitBreaker",
    "RestartPolicy",
    "ShardSupervisor",
]
