"""Shard workers: one engine replica behind a framed message channel.

The sharded serving tier (``repro.serving.server``) fans queries out to
N replicas, each wrapping a full :class:`~repro.serving.backend.\
BorderMapBackend` in its own :class:`~repro.serving.service.\
BorderMapService`.  This module is the *replica* side plus the channel
the front end talks through:

* :class:`ShardWorker` — the request loop's brain: decodes one framed
  :class:`~repro.remote.protocol.Command`, executes it against the
  shard's service, and returns a framed
  :class:`~repro.remote.protocol.Reply`.  It also holds the staged map
  of an in-progress two-phase epoch swap.
* :class:`InProcessTransport` / :class:`SpawnProcessTransport` — the
  two ways a worker runs: in the caller's process (deterministic; what
  chaos tests and the load benchmark use) or as a spawn-context child
  process holding the map in its own address space (the production
  shape — one crash never takes the map down).
* :class:`ShardChannel` — the client half: frames requests with
  :func:`~repro.remote.protocol.pack_frame`, applies an optional
  :class:`~repro.net.faults.ChannelFaultPolicy` (the same drop / garble
  / sever / delay faults the remote-control channel suffers), enforces
  a per-request deadline, and surfaces transport failures as the usual
  error taxonomy (:class:`~repro.errors.MeasurementTimeout`,
  :class:`~repro.errors.DataError`, :class:`~repro.errors.ChannelError`).

Every message crosses the wire as a length-framed JSON blob even
in-process, so the serialization path the production transport depends
on is exercised by every test.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ChannelError, DataError, MeasurementTimeout
from ..net.faults import ChannelFaultPolicy
from ..obs.metrics import LATENCY_BUCKETS_MS, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer, perf_clock
from ..remote.protocol import (
    Command,
    Reply,
    decode,
    encode,
    pack_frame,
    unpack_frame,
)
from .backend import close_backend
from .bordermap import BorderLink, NeighborInfo, Ownership
from .service import Answer, BorderMapService

#: Shard-protocol operations.  ``query``, ``ping``, and ``harvest`` are
#: idempotent and safe to re-issue; the swap ops carry a token that
#: makes replays harmless (prepare/commit/abort for an already-settled
#: token is a no-op acknowledged with the current state).
SHARD_OPS = (
    "ping", "query", "prepare", "commit", "abort", "harvest", "stats",
    "shutdown",
)


# -- answers over the wire ---------------------------------------------------
#
# Answers carry frozen-dataclass object graphs (Ownership, BorderLink,
# NeighborInfo).  Dataclass equality is the oracle check the chaos tests
# rely on, so the wire codec must reconstruct *equal* objects, not
# look-alike dicts.

def _link_to_wire(link: BorderLink) -> Dict[str, Any]:
    return {
        "index": link.index,
        "vp_name": link.vp_name,
        "near_router": link.near_router,
        "far_router": link.far_router,
        "neighbor_as": link.neighbor_as,
        "relationship": link.relationship,
        "reason": link.reason,
        "via_ixp": link.via_ixp,
    }


def _link_from_wire(entry: Dict[str, Any]) -> BorderLink:
    return BorderLink(
        index=entry["index"],
        vp_name=entry["vp_name"],
        near_router=entry["near_router"],
        far_router=entry["far_router"],
        neighbor_as=entry["neighbor_as"],
        relationship=entry["relationship"],
        reason=entry["reason"],
        via_ixp=entry["via_ixp"],
    )


def _value_to_wire(op: str, value: Any) -> Any:
    if value is None:
        return None
    if op == "owner":
        return {
            "asn": value.asn, "source": value.source, "router": value.router,
        }
    if op == "border":
        return [_link_to_wire(link) for link in value]
    if op == "neighbors":
        return {
            "asn": value.asn,
            "relationship": value.relationship,
            "links": [_link_to_wire(link) for link in value.links],
            "best_confidence": value.best_confidence,
        }
    raise DataError("cannot encode value for op %r" % op)


def _value_from_wire(op: str, value: Any) -> Any:
    if value is None:
        return None
    try:
        if op == "owner":
            return Ownership(
                asn=value["asn"], source=value["source"],
                router=value["router"],
            )
        if op == "border":
            return tuple(_link_from_wire(entry) for entry in value)
        if op == "neighbors":
            return NeighborInfo(
                asn=value["asn"],
                relationship=value["relationship"],
                links=tuple(
                    _link_from_wire(entry) for entry in value["links"]
                ),
                best_confidence=value["best_confidence"],
            )
    except (KeyError, TypeError) as exc:
        raise DataError("malformed %r answer value: %s" % (op, exc)) from exc
    raise DataError("cannot decode value for op %r" % op)


def answer_to_wire(answer: Answer) -> Dict[str, Any]:
    return {
        "op": answer.op,
        "key": answer.key,
        "value": _value_to_wire(answer.op, answer.value),
        "epoch": answer.epoch,
        "degraded": answer.degraded,
        "note": answer.note,
    }


def answer_from_wire(entry: Dict[str, Any]) -> Answer:
    try:
        return Answer(
            op=entry["op"],
            key=entry["key"],
            value=_value_from_wire(entry["op"], entry["value"]),
            epoch=entry["epoch"],
            degraded=entry.get("degraded", False),
            note=entry.get("note", ""),
        )
    except (KeyError, TypeError) as exc:
        raise DataError("malformed answer: %s" % exc) from exc


def span_to_wire(span) -> List[Any]:
    """A finished span as the compact harvest-wire array
    ``[id, parent, name, t0, t1, attrs]``.

    Harvest payloads are mostly spans; the array form sheds the six
    repeated dict keys so the frame's JSON encode/decode (paid twice
    per hop) stays cheap on the supervision cadence.
    """
    return [span.sid, span.parent, span.name, span.t0, span.t1,
            span.attrs]


def span_from_wire(entry: Sequence[Any]) -> Dict[str, Any]:
    """Rebuild the standard span dict from :func:`span_to_wire` form."""
    try:
        sid, parent, name, t0, t1, attrs = entry
    except (TypeError, ValueError) as exc:
        raise DataError("malformed wire span: %r" % (entry,)) from exc
    return {
        "id": sid, "parent": parent, "name": name,
        "t0": t0, "t1": t1, "attrs": attrs,
    }


# -- the worker --------------------------------------------------------------


class ShardWorker:
    """One engine replica: a :class:`BorderMapService` plus the staged
    state of an in-progress two-phase swap.

    ``loader`` maps an artifact path to a backend (the default is
    :func:`repro.io.load_border_map`, magic-sniffed JSON or binary).
    The worker itself is transport-agnostic: :meth:`handle_frame` takes
    one framed request and returns one framed reply, and both
    transports just move those bytes.
    """

    def __init__(
        self,
        artifact_path: str,
        shard_id: int = 0,
        cache_size: int = 4096,
        loader: Optional[Callable[[str], Any]] = None,
        token: int = 0,
    ) -> None:
        if loader is None:
            from ..io import load_border_map as loader  # noqa: F811
        self._loader = loader
        self.shard_id = shard_id
        self.cache_size = cache_size
        self.artifact_path = artifact_path
        self.service = BorderMapService(
            loader(artifact_path), cache_size=cache_size
        )
        # Two-phase swap staging: (token, path, backend) or None.
        self._staged: Optional[Tuple[int, str, Any]] = None
        # The swap token of the epoch currently being served; 0 until
        # the first committed swap.  The front end compares this against
        # the committed token to spot a replica serving a stale epoch.
        # A *restarted* replica is handed the committed token it just
        # loaded (it starts converged, not stale).
        self.token = token
        self.queries = 0
        self.swaps = 0
        # Always-on worker telemetry: a real registry (dict bumps are
        # cheap enough to leave on) harvested as deltas by the front
        # end, and a tracer that stays null until the first command
        # carrying a trace context seeds it deterministically.
        self.metrics = MetricsRegistry()
        self._harvest_mark = self.metrics.snapshot()
        self.tracer: Tracer = NULL_TRACER
        self._frame_bytes = 0
        self._batches = 0

    # -- framed entry point -------------------------------------------------

    def handle_frame(self, data: bytes) -> bytes:
        """Decode one framed Command, execute it, return a framed Reply.

        Malformed frames still produce a framed error reply (seq 0) so
        the channel's decode layer — not the worker — decides how to
        classify the failure.
        """
        self._frame_bytes = len(data)
        try:
            command = decode(unpack_frame(data))
            if not isinstance(command, Command):
                raise DataError("expected a command, got %r" % (command,))
        except DataError as exc:
            self.metrics.inc("worker.bad_frames")
            reply = Reply(seq=0, payload={}, error="bad frame: %s" % exc)
            return pack_frame(encode(reply))
        try:
            payload = self.handle(command.op, command.args, command.trace)
            reply = Reply(seq=command.seq, payload=payload)
        except Exception as exc:  # noqa: BLE001 - becomes a wire error
            self.metrics.inc("worker.errors")
            reply = Reply(
                seq=command.seq, payload={},
                error="%s: %s" % (type(exc).__name__, exc),
            )
        return pack_frame(encode(reply))

    # -- dispatch -----------------------------------------------------------

    def handle(self, op: str, args: Dict[str, Any],
               ctx: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        if op == "ping":
            self.metrics.inc("worker.pings")
            return {
                "ok": True,
                "shard": self.shard_id,
                "epoch": self.service.epoch,
                "token": self.token,
            }
        if op == "query":
            return self._handle_query(args, ctx)
        if op == "prepare":
            return self._handle_prepare(args, ctx)
        if op == "commit":
            return self._handle_commit(args, ctx)
        if op == "abort":
            return self._handle_abort(args, ctx)
        if op == "harvest":
            return self._handle_harvest()
        if op == "stats":
            return {
                "shard": self.shard_id,
                "queries": self.queries,
                "swaps": self.swaps,
                "epoch": self.service.epoch,
                "token": self.token,
                "staged": self._staged is not None,
            }
        if op == "shutdown":
            return {"ok": True}
        raise DataError(
            "unknown shard op %r (want one of %s)" % (op, "/".join(SHARD_OPS))
        )

    def _ensure_tracer(self, ctx: Optional[Dict[str, Any]]) -> Tracer:
        """The worker's tracer, seeded on the first trace context seen.

        The seed mixes the front-end tracer's seed with the shard id, so
        every replica of a run gets a distinct-but-deterministic id
        stream — identical whether the worker lives in-process or in a
        spawned child, which is what makes merged traces byte-identical
        across transports.
        """
        if ctx is None:
            return NULL_TRACER
        if not self.tracer.enabled:
            seed = (int(ctx.get("seed", 0)) * 1000003
                    + self.shard_id + 1) & 0xFFFFFFFFFFFFFFFF
            self.tracer = Tracer(seed=seed)
        return self.tracer

    #: Every query batch gets a ``shard.query`` span; the decode/lookup
    #: detail sub-spans are recorded on every Nth batch only (a
    #: deterministic worker-local counter, so sampling is identical
    #: across transports and runs).  Timing detail at full rate costs
    #: more in span shipping than the lookups themselves; the sampled
    #: batches keep the breakdown visible in every merged trace.
    DETAIL_EVERY = 8

    def _handle_query(self, args: Dict[str, Any],
                      ctx: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        requests = [
            (str(op), int(key)) for op, key in args.get("requests", ())
        ]
        self.queries += len(requests)
        self._batches += 1
        self.metrics.inc("worker.queries", len(requests))
        self.metrics.inc("worker.batches")
        self.metrics.observe("worker.batch.size", len(requests))
        tracer = self._ensure_tracer(ctx)
        detail = (self._batches - 1) % self.DETAIL_EVERY == 0
        started = perf_clock()
        with tracer.span("shard.query",
                         remote_parent=ctx.get("id") if ctx else None,
                         shard=self.shard_id, size=len(requests)):
            if detail:
                with tracer.span("shard.decode", bytes=self._frame_bytes):
                    pass
                with tracer.span("shard.lookup"):
                    answers = self.service.batch(requests)
            else:
                answers = self.service.batch(requests)
        elapsed = perf_clock() - started
        self.metrics.time("worker.query.seconds", elapsed)
        self.metrics.observe("worker.query.ms", 1e3 * elapsed,
                             bounds=LATENCY_BUCKETS_MS)
        return {
            "answers": [answer_to_wire(answer) for answer in answers],
            "epoch": self.service.epoch,
            "token": self.token,
        }

    def _handle_harvest(self) -> Dict[str, Any]:
        """Delta-since-last-harvest of the worker registry plus every
        span finished since the previous harvest.  Harvesting twice with
        nothing in between returns an empty delta and no spans.

        Spans cross the wire in compact array form (see
        :func:`span_to_wire`) — they dominate the harvest payload, and
        dropping the six dict keys roughly halves the JSON cost on both
        sides of the frame.
        """
        self.metrics.inc("worker.harvests")
        self.metrics.set_gauge("worker.epoch", float(self.service.epoch))
        self.metrics.set_gauge("worker.token", float(self.token))
        delta = self.metrics.delta_since(self._harvest_mark)
        self._harvest_mark = self.metrics.snapshot()
        spans = (
            [span_to_wire(span) for span in self.tracer.drain()]
            if self.tracer.enabled else []
        )
        return {
            "shard": self.shard_id,
            "epoch": self.service.epoch,
            "token": self.token,
            "metrics": delta,
            "spans": spans,
        }

    # -- two-phase swap -----------------------------------------------------

    def _handle_prepare(self, args: Dict[str, Any],
                        ctx: Optional[Dict[str, Any]] = None
                        ) -> Dict[str, Any]:
        token = int(args["token"])
        path = str(args["path"])
        if self._staged is not None and self._staged[0] == token:
            return {"ok": True, "token": token}  # idempotent replay
        if self._staged is not None:
            close_backend(self._staged[2])
        tracer = self._ensure_tracer(ctx)
        with tracer.span("shard.prepare",
                         remote_parent=ctx.get("id") if ctx else None,
                         shard=self.shard_id, token=token):
            # Loading is the expensive, fallible half; it happens here,
            # while the old map keeps serving, so commit is a pure
            # pointer swap.
            started = perf_clock()
            self._staged = (token, path, self._loader(path))
            self.metrics.time("worker.prepare.seconds",
                              perf_clock() - started)
        self.metrics.inc("worker.prepares")
        return {"ok": True, "token": token}

    def _handle_commit(self, args: Dict[str, Any],
                       ctx: Optional[Dict[str, Any]] = None
                       ) -> Dict[str, Any]:
        token = int(args["token"])
        if self._staged is None or self._staged[0] != token:
            if self.token == token:
                return {"ok": True, "epoch": self.service.epoch,
                        "token": self.token}  # idempotent replay
            raise DataError(
                "commit for unprepared token %d (staged: %s)"
                % (token, self._staged[0] if self._staged else None)
            )
        tracer = self._ensure_tracer(ctx)
        with tracer.span("shard.commit",
                         remote_parent=ctx.get("id") if ctx else None,
                         shard=self.shard_id, token=token):
            _, path, backend = self._staged
            self._staged = None
            retired = self.service.map
            self.service.swap(backend)
            close_backend(retired)
        self.artifact_path = path
        self.token = token
        self.swaps += 1
        self.metrics.inc("worker.swaps")
        return {"ok": True, "epoch": self.service.epoch, "token": self.token}

    def _handle_abort(self, args: Dict[str, Any],
                      ctx: Optional[Dict[str, Any]] = None
                      ) -> Dict[str, Any]:
        token = int(args["token"])
        if self._staged is not None and self._staged[0] == token:
            tracer = self._ensure_tracer(ctx)
            with tracer.span("shard.abort",
                             remote_parent=ctx.get("id") if ctx else None,
                             shard=self.shard_id, token=token):
                close_backend(self._staged[2])
                self._staged = None
            self.metrics.inc("worker.aborts")
        return {"ok": True, "token": token}

    def close(self) -> None:
        if self._staged is not None:
            close_backend(self._staged[2])
            self._staged = None
        close_backend(self.service.map)


# -- transports --------------------------------------------------------------


class InProcessTransport:
    """A worker living in the caller's process, spoken to in framed
    bytes exactly as a remote one would be.

    Deterministic by construction (no real concurrency, virtual
    deadlines), which is what lets chaos tests assert exact degraded
    sets.  :meth:`kill` models a crashed replica: the worker is dropped
    and every exchange fails with :class:`ChannelError` until
    :meth:`restart` builds a fresh worker from an artifact path — the
    same contract a supervisor has with a real child process.
    """

    def __init__(self, artifact_path: str, shard_id: int = 0,
                 cache_size: int = 4096,
                 loader: Optional[Callable[[str], Any]] = None) -> None:
        self.shard_id = shard_id
        self.cache_size = cache_size
        self._loader = loader
        self.worker: Optional[ShardWorker] = ShardWorker(
            artifact_path, shard_id=shard_id, cache_size=cache_size,
            loader=loader,
        )
        self.exchanges = 0

    @property
    def alive(self) -> bool:
        return self.worker is not None

    def exchange(self, data: bytes, deadline_s: float) -> bytes:
        if self.worker is None:
            raise ChannelError("shard %d is down" % self.shard_id)
        self.exchanges += 1
        return self.worker.handle_frame(data)

    def kill(self) -> None:
        if self.worker is not None:
            self.worker.close()
            self.worker = None

    def restart(self, artifact_path: str, token: int = 0) -> None:
        self.kill()
        self.worker = ShardWorker(
            artifact_path, shard_id=self.shard_id,
            cache_size=self.cache_size, loader=self._loader, token=token,
        )

    def close(self) -> None:
        self.kill()


class SpawnProcessTransport:
    """A worker in a spawn-context child process, one duplex pipe.

    Frames travel over ``multiprocessing.Pipe`` byte messages; the
    deadline maps to ``Connection.poll``.  A child that dies (or a pipe
    that breaks) surfaces as :class:`ChannelError`, after which the
    supervisor may :meth:`restart` — a fresh child loading the artifact
    path it is given (normally the last *committed* epoch).
    """

    def __init__(self, artifact_path: str, shard_id: int = 0,
                 cache_size: int = 4096) -> None:
        self.shard_id = shard_id
        self.cache_size = cache_size
        self._ctx = multiprocessing.get_context("spawn")
        self._process = None
        self._conn = None
        self._start(artifact_path, 0)

    def _start(self, artifact_path: str, token: int) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=shard_process_main,
            args=(child, artifact_path, self.shard_id, self.cache_size,
                  token),
            daemon=True,
        )
        process.start()
        child.close()
        self._process = process
        self._conn = parent

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def exchange(self, data: bytes, deadline_s: float) -> bytes:
        if self._conn is None or self._process is None:
            raise ChannelError("shard %d is down" % self.shard_id)
        try:
            self._conn.send_bytes(data)
            if not self._conn.poll(deadline_s):
                raise MeasurementTimeout(
                    "shard %d silent for %.1fs" % (self.shard_id, deadline_s)
                )
            return self._conn.recv_bytes()
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise ChannelError(
                "shard %d pipe failed: %s" % (self.shard_id, exc)
            ) from exc

    def kill(self) -> None:
        process, self._process = self._process, None
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()
        if process is not None:
            process.terminate()
            process.join(timeout=5.0)

    def restart(self, artifact_path: str, token: int = 0) -> None:
        self.kill()
        self._start(artifact_path, token)

    def close(self) -> None:
        if self._conn is not None and self._process is not None \
                and self._process.is_alive():
            try:
                self._conn.send_bytes(
                    pack_frame(encode(Command(op="shutdown", args={}, seq=0)))
                )
            except (BrokenPipeError, OSError):
                pass
        self.kill()


def shard_process_main(conn, artifact_path: str, shard_id: int,
                       cache_size: int, token: int = 0) -> None:
    """Entry point of a spawned shard process: serve framed requests
    from ``conn`` until a shutdown command or EOF."""
    worker = ShardWorker(
        artifact_path, shard_id=shard_id, cache_size=cache_size,
        token=token,
    )
    try:
        while True:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                return
            response = worker.handle_frame(data)
            try:
                conn.send_bytes(response)
            except (BrokenPipeError, OSError):
                return
            # Peek at our own reply for the shutdown handshake: replying
            # first, then exiting, lets the parent join cleanly.
            try:
                command = decode(unpack_frame(data))
            except DataError:
                continue
            if isinstance(command, Command) and command.op == "shutdown":
                return
    finally:
        worker.close()
        conn.close()


# -- the client channel ------------------------------------------------------


class ShardChannel:
    """The front end's handle on one shard: framing, deadlines, faults.

    Mirrors the remote-control :class:`~repro.remote.protocol.Channel`
    discipline on a different transport: every request is one framed
    command / framed reply exchange, an attached
    :class:`ChannelFaultPolicy` can drop (deadline expires), garble
    (decode fails), sever (channel dies until the supervisor restarts
    the shard), or delay the reply, and all failures surface as the
    standard error taxonomy for the supervisor's breaker to count.

    ``clock_advance`` (optional) charges waits — deadline expiries,
    injected delays — to a virtual clock so fault timelines reproduce.
    """

    def __init__(
        self,
        transport,
        faults: Optional[ChannelFaultPolicy] = None,
        deadline_s: float = 5.0,
        clock_advance: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.transport = transport
        self.faults = faults
        self.deadline_s = deadline_s
        self._advance = clock_advance
        self.requests = 0
        self.bytes_out = 0
        self.bytes_in = 0
        self.timeouts = 0
        self.garbled = 0
        self.severed = 0
        self.delays = 0
        self._seq = 0

    @property
    def shard_id(self) -> int:
        return self.transport.shard_id

    @property
    def alive(self) -> bool:
        return self.transport.alive

    def _wait(self, seconds: float) -> None:
        if self._advance is not None and seconds > 0:
            self._advance(seconds)

    def request(self, op: str, *,
                trace: Optional[Dict[str, Any]] = None,
                **args: Any) -> Dict[str, Any]:
        """One framed round trip; returns the reply payload.

        ``trace`` (keyword-only, never an op argument) is the optional
        trace context stamped into the command so the worker parents
        its spans under the front-end span that issued this request.
        """
        self._seq += 1
        self.requests += 1
        wire_out = pack_frame(encode(Command(op=op, args=args,
                                             seq=self._seq, trace=trace)))
        self.bytes_out += len(wire_out)

        fault = self.faults.next_fault() if self.faults is not None else None
        if fault == "sever":
            self.severed += 1
            self.transport.kill()
            raise ChannelError(
                "shard %d connection severed" % self.shard_id
            )

        wire_in = self.transport.exchange(wire_out, self.deadline_s)

        if fault == "drop":
            self.timeouts += 1
            self._wait(self.deadline_s)
            raise MeasurementTimeout(
                "no reply from shard %d within %.1fs"
                % (self.shard_id, self.deadline_s)
            )
        if fault == "delay":
            self.delays += 1
            self._wait(self.faults.delay_seconds)
        if fault == "garble":
            self.garbled += 1
            wire_in = self.faults.garble(wire_in)

        self.bytes_in += len(wire_in)
        try:
            reply = decode(unpack_frame(wire_in))
        except DataError:
            if fault != "garble":
                self.garbled += 1
            raise
        if not isinstance(reply, Reply):
            raise DataError("expected a reply, got %r" % (reply,))
        if reply.error is not None:
            raise ChannelError(
                "shard %d error for op %r: %s"
                % (self.shard_id, op, reply.error)
            )
        return reply.payload

    def query(self, requests: Sequence[Tuple[str, int]],
              trace: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        return self.request(
            "query", trace=trace,
            requests=[[op, key] for op, key in requests],
        )

    def answers_from(self, payload: Dict[str, Any]) -> List[Answer]:
        return [answer_from_wire(entry) for entry in payload["answers"]]

    def close(self) -> None:
        self.transport.close()


class AsyncShardTransport:
    """The asyncio face of one :class:`ShardChannel`.

    Same framed command/reply exchange, same fault injection, same
    error taxonomy — ``await``-able.  With ``executor=None`` (the
    default) the exchange runs inline on the event loop, which is
    correct and *deterministic* for :class:`InProcessTransport` workers
    (the exchange is a function call, there is nothing to wait on) and
    keeps the coalescing front end byte-reproducible under a seed.
    Pass a ``concurrent.futures`` executor for process-backed shards,
    whose pipe exchanges genuinely block: each exchange is then
    offloaded so waves to different shards overlap in wall time.
    """

    def __init__(self, channel: ShardChannel, executor=None) -> None:
        import threading
        self.channel = channel
        self.executor = executor
        # One exchange at a time per channel: a duplex pipe cannot
        # interleave two framed round trips, and ShardChannel's seq and
        # byte accounting are not thread-safe.  Concurrency lives
        # *across* shards, not within one.
        self._lock = threading.Lock()

    @property
    def shard_id(self) -> int:
        return self.channel.shard_id

    @property
    def alive(self) -> bool:
        return self.channel.alive

    def _exchange(self, op: str, trace: Optional[Dict[str, Any]],
                  args: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            return self.channel.request(op, trace=trace, **args)

    async def request(self, op: str, *,
                      trace: Optional[Dict[str, Any]] = None,
                      **args: Any) -> Dict[str, Any]:
        if self.executor is None:
            return self.channel.request(op, trace=trace, **args)
        import asyncio
        import functools
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self.executor,
            functools.partial(self._exchange, op, trace, args),
        )

    async def query(self, requests: Sequence[Tuple[str, int]],
                    trace: Optional[Dict[str, Any]] = None
                    ) -> Dict[str, Any]:
        return await self.request(
            "query", trace=trace,
            requests=[[op, key] for op, key in requests],
        )

    def answers_from(self, payload: Dict[str, Any]) -> List[Answer]:
        return self.channel.answers_from(payload)
