"""The zero-copy compiled data plane: a flat, array-backed BorderMap.

:class:`~repro.serving.bordermap.BorderMap` is a dict-and-dataclass
object graph: one Python object per router, link, and trie node, with
every derived index rebuilt in ``__init__`` on each load.  That shape is
the scaling wall at internet scale (~600k announced prefixes): load time
is O(map), resident memory is object-per-prefix, and nothing is shared
between worker processes.

:class:`CompiledBorderMap` lowers the same artifact into contiguous
integer tables (stdlib ``array``/``memoryview`` — no third-party deps):

* **columnar router/link tables** — integer offsets instead of object
  references; variable-length fields (router aliases, destination sets,
  adjacency lists) in CSR form (an offsets column plus a values column);
* **a sorted interface index** — ``(addr, router)`` parallel arrays,
  exact-matched by binary search;
* **a flat LPM index** — the announced-prefix set projected onto
  disjoint address ranges (``lpm_base``/``lpm_origin``), so a
  longest-prefix match is one ``bisect`` over a contiguous ``u32``
  array instead of a 32-deep pointer chase through
  :class:`~repro.trie.PrefixTrie` nodes;
* **interned strings and ASes** — every AS number and string lives once.

The tables serialize into the mmap-able container of
:mod:`repro.io.binfmt` (format :data:`BIN_FORMAT`): ``load_compiled_map``
maps the file and serves straight from the page cache — no JSON parse,
no index rebuild, O(sections) start — and any number of worker
processes mapping the same artifact share its pages copy-free.

Answers are byte-identical to the dict engine's: the same
:class:`~repro.serving.bordermap.Ownership` / ``BorderLink`` /
``NeighborInfo`` values, materialized lazily from the flat tables and
memoized (there are few routers/links/neighbors; the unbounded address
space is what stays flat).
"""

from __future__ import annotations

import json
import sys
import zlib
from array import array
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import (
    Any, Dict, IO, List, Optional, Sequence, Tuple, Union,
)

from ..addr import Prefix
from ..errors import DataError
from ..io.binfmt import BinaryContainer, open_container, write_container
from .bordermap import (
    BorderLink,
    BorderMap,
    CompiledRouter,
    NeighborInfo,
    Ownership,
    best_relationship,
)

#: Format tag carried in the ``meta`` section; bumped on any table-layout
#: change (the binfmt container version covers the envelope only).
BIN_FORMAT = "bdrmap-repro-bordermap-bin/1"

#: Format tag of a map *patch* artifact (see :class:`MapPatch`).
PATCH_FORMAT = "bdrmap-repro-bordermap-patch/1"

#: Sentinel for "absent" in u32 index columns (owner, far router, LPM
#: origin).  It is an *index* sentinel — table sizes stay far below it.
NONE_U32 = 0xFFFFFFFF

_U32 = "I" if array("I").itemsize == 4 else "L"
if array(_U32).itemsize != 4:  # pragma: no cover - exotic platforms only
    raise ImportError("no 4-byte unsigned array type on this platform")
_LITTLE = sys.byteorder == "little"

#: The u32 columns of the artifact, in canonical section order.
_U32_SECTIONS = (
    "ases",
    "rt_vp", "rt_rid", "rt_owner", "rt_reason",
    "rt_addr_off", "rt_addr", "rt_dst_off", "rt_dst",
    "lk_vp", "lk_near", "lk_far", "lk_nbr", "lk_rel", "lk_reason",
    "if_addr", "if_router",
    "lpm_base", "lpm_origin",
    "pfx_addr", "pfx_origin",
    "nbr_as", "nbr_off", "nbr_link",
    "twd_as", "twd_off", "twd_link",
)
#: The u8 columns.
_U8_SECTIONS = ("lk_ixp", "pfx_plen")


def _u32(values) -> "array":
    return array(_U32, values)


def _u8(values) -> "array":
    return array("B", values)


def _tobytes(column: "array") -> bytes:
    if _LITTLE or column.itemsize == 1:
        return column.tobytes()
    swapped = array(column.typecode, column)  # pragma: no cover - BE host
    swapped.byteswap()  # pragma: no cover - BE host
    return swapped.tobytes()  # pragma: no cover - BE host


def _cast(view: memoryview, typecode: str, name: str) -> Sequence[int]:
    """A section payload as a u32/u8 sequence — zero-copy on
    little-endian hosts, a byteswapped array copy elsewhere."""
    itemsize = array(typecode).itemsize
    if len(view) % itemsize:
        raise DataError(
            "corrupt section %r: %d bytes is not a whole number of "
            "%d-byte items" % (name, len(view), itemsize)
        )
    if _LITTLE or itemsize == 1:
        return view.cast(typecode)
    copied = array(typecode)  # pragma: no cover - BE host
    copied.frombytes(view.tobytes())  # pragma: no cover - BE host
    copied.byteswap()  # pragma: no cover - BE host
    return copied  # pragma: no cover - BE host


def _csr(rows: Sequence[Sequence[int]]) -> Tuple["array", "array"]:
    """Pack variable-length rows into (offsets, values) CSR columns."""
    offsets = _u32([0])
    values = _u32([])
    total = 0
    for row in rows:
        values.extend(row)
        total += len(row)
        offsets.append(total)
    return offsets, values


class CompiledBorderMap:
    """Flat array-backed border map: same query surface, same answers,
    contiguous memory.

    Never constructed directly — use :meth:`from_border_map` (lower a
    dict map at compile time) or :func:`load_compiled_map` (map a saved
    artifact).  Instances are immutable and safe to share across
    threads; the engine's generation-token cache keying works unchanged
    because instances draw from the same process-unique counter as
    :class:`~repro.serving.bordermap.BorderMap`.
    """

    FORMAT = BIN_FORMAT

    def __init__(
        self,
        meta: Dict[str, Any],
        tables: Dict[str, Sequence[int]],
        container: Optional[BinaryContainer] = None,
    ) -> None:
        if meta.get("format") != BIN_FORMAT:
            raise DataError(
                "unknown compiled border map format %r" % meta.get("format")
            )
        self.focal_asn: int = meta["focal_asn"]
        self.vp_ases = frozenset(meta["vp_ases"])
        self.epoch: int = meta["epoch"]
        self.source: str = meta["source"]
        self.generation = next(BorderMap._generations)
        self._strings: List[str] = list(meta["strings"])
        self._meta = meta
        self._tables = tables
        self._container = container

        try:
            for name in _U32_SECTIONS + _U8_SECTIONS:
                setattr(self, "_" + name, tables[name])
        except KeyError as exc:
            raise DataError("compiled map missing table %s" % exc) from exc
        self._check_shape()

        n_routers = len(tables["rt_vp"])
        n_links = len(tables["lk_near"])
        n_ases = len(tables["ases"])
        # Lazy materialization memos: tiny (routers/links/ASes, never
        # addresses), filled on demand so load stays O(sections).
        self._owner_memo: List[Optional[Ownership]] = [None] * n_routers
        self._bgp_memo: List[Optional[Ownership]] = [None] * n_ases
        self._link_memo: List[Optional[BorderLink]] = [None] * n_links
        self._border_memo: Dict[int, Tuple[BorderLink, ...]] = {}
        self._range_border_memo: List[
            Optional[Tuple[BorderLink, ...]]
        ] = [None] * len(tables["lpm_base"])
        self._neighbor_memo: Dict[int, Optional[NeighborInfo]] = {}
        self._routers_memo: Optional[Tuple[CompiledRouter, ...]] = None
        self._prefixes_memo: Optional[Tuple[Tuple[Prefix, int], ...]] = None

    def _check_shape(self) -> None:
        t = self._tables
        n_routers = len(t["rt_vp"])
        n_links = len(t["lk_near"])
        same_as_routers = ("rt_rid", "rt_owner", "rt_reason")
        same_as_links = ("lk_vp", "lk_far", "lk_nbr", "lk_rel",
                         "lk_reason", "lk_ixp")
        checks = (
            [(name, len(t[name]), n_routers) for name in same_as_routers]
            + [(name, len(t[name]), n_links) for name in same_as_links]
            + [
                ("rt_addr_off", len(t["rt_addr_off"]), n_routers + 1),
                ("rt_dst_off", len(t["rt_dst_off"]), n_routers + 1),
                ("if_router", len(t["if_router"]), len(t["if_addr"])),
                ("lpm_origin", len(t["lpm_origin"]), len(t["lpm_base"])),
                ("pfx_plen", len(t["pfx_plen"]), len(t["pfx_addr"])),
                ("pfx_origin", len(t["pfx_origin"]), len(t["pfx_addr"])),
                ("nbr_off", len(t["nbr_off"]), len(t["nbr_as"]) + 1),
                ("twd_off", len(t["twd_off"]), len(t["twd_as"]) + 1),
            ]
        )
        for name, actual, expected in checks:
            if actual != expected:
                raise DataError(
                    "corrupt compiled map: table %r has %d rows, want %d"
                    % (name, actual, expected)
                )
        if len(t["lpm_base"]) == 0 or t["lpm_base"][0] != 0:
            raise DataError(
                "corrupt compiled map: LPM index must start at address 0"
            )

    # -- compilation --------------------------------------------------------

    @classmethod
    def from_border_map(
        cls,
        bmap: BorderMap,
        donor: Optional["CompiledBorderMap"] = None,
    ) -> "CompiledBorderMap":
        """Lower a dict :class:`BorderMap` into flat tables.

        This is the compile-time path: it may walk the object graph (and
        the trie) freely — the serving path never does.

        ``donor`` is an optional previously compiled map: when the
        announced-prefix table and AS table are unchanged, its LPM
        projection (the most expensive column to build — one trie walk
        per prefix boundary) is copied instead of recomputed.  The LPM
        index is a pure function of those two tables, so the copy is
        byte-identical to a fresh projection.
        """
        ases = list(bmap.as_table)
        as_index = {asn: i for i, asn in enumerate(ases)}
        strings: List[str] = []
        string_index: Dict[str, int] = {}

        def intern(text: str) -> int:
            found = string_index.get(text)
            if found is None:
                found = string_index[text] = len(strings)
                strings.append(text)
            return found

        rt_addr_off, rt_addr = _csr([r.addrs for r in bmap.routers])
        rt_dst_off, rt_dst = _csr(
            [[as_index[a] for a in r.dsts] for r in bmap.routers]
        )
        iface = sorted(bmap._iface.items())
        nbr_items = sorted(
            (as_index[asn], ids) for asn, ids in bmap._by_neighbor.items()
        )
        twd_items = sorted(
            (as_index[asn], ids) for asn, ids in bmap._toward.items()
        )
        nbr_off, nbr_link = _csr([ids for _, ids in nbr_items])
        twd_off, twd_link = _csr([ids for _, ids in twd_items])
        pfx_addr = _u32(p.addr for p, _ in bmap.prefixes)
        pfx_plen = _u8(p.plen for p, _ in bmap.prefixes)
        pfx_origin = _u32(as_index[o] for _, o in bmap.prefixes)
        if (
            donor is not None
            and list(donor._ases) == ases
            and list(donor._pfx_addr) == list(pfx_addr)
            and list(donor._pfx_plen) == list(pfx_plen)
            and list(donor._pfx_origin) == list(pfx_origin)
        ):
            lpm_base = _u32(donor._lpm_base)
            lpm_origin = _u32(donor._lpm_origin)
        else:
            lpm_base, lpm_origin = cls._project_lpm(bmap, as_index)

        tables: Dict[str, Sequence[int]] = {
            "ases": _u32(ases),
            "rt_vp": _u32(intern(r.vp_name) for r in bmap.routers),
            "rt_rid": _u32(r.rid for r in bmap.routers),
            "rt_owner": _u32(
                as_index[r.owner] if r.owner is not None else NONE_U32
                for r in bmap.routers
            ),
            "rt_reason": _u32(intern(r.reason) for r in bmap.routers),
            "rt_addr_off": rt_addr_off,
            "rt_addr": rt_addr,
            "rt_dst_off": rt_dst_off,
            "rt_dst": rt_dst,
            "lk_vp": _u32(intern(l.vp_name) for l in bmap.links),
            "lk_near": _u32(l.near_router for l in bmap.links),
            "lk_far": _u32(
                l.far_router if l.far_router is not None else NONE_U32
                for l in bmap.links
            ),
            "lk_nbr": _u32(as_index[l.neighbor_as] for l in bmap.links),
            "lk_rel": _u32(intern(l.relationship) for l in bmap.links),
            "lk_reason": _u32(intern(l.reason) for l in bmap.links),
            "lk_ixp": _u8(int(l.via_ixp) for l in bmap.links),
            "if_addr": _u32(addr for addr, _ in iface),
            "if_router": _u32(router for _, router in iface),
            "lpm_base": lpm_base,
            "lpm_origin": lpm_origin,
            "pfx_addr": pfx_addr,
            "pfx_plen": pfx_plen,
            "pfx_origin": pfx_origin,
            "nbr_as": _u32(key for key, _ in nbr_items),
            "nbr_off": nbr_off,
            "nbr_link": nbr_link,
            "twd_as": _u32(key for key, _ in twd_items),
            "twd_off": twd_off,
            "twd_link": twd_link,
        }
        meta = {
            "format": BIN_FORMAT,
            "focal_asn": bmap.focal_asn,
            "vp_ases": sorted(bmap.vp_ases),
            "epoch": bmap.epoch,
            "source": bmap.source,
            "strings": strings,
        }
        return cls(meta, tables)

    @staticmethod
    def _project_lpm(
        bmap: BorderMap, as_index: Dict[int, int]
    ) -> Tuple["array", "array"]:
        """Project the announced-prefix set onto disjoint ranges.

        The LPM answer can only change where some prefix starts or ends,
        so evaluating the trie once per boundary and run-length
        compressing yields a sorted ``lpm_base`` array where
        ``bisect_right(lpm_base, addr) - 1`` lands on the range whose
        ``lpm_origin`` IS the longest-prefix match — identical to the
        trie's answer by construction.
        """
        boundaries = {0}
        for prefix, _ in bmap.prefixes:
            boundaries.add(prefix.addr)
            end = prefix.last + 1
            if end < (1 << 32):
                boundaries.add(end)
        base = _u32([])
        origin = _u32([])
        lookup = bmap._trie.lookup_value
        previous = -1
        for boundary in sorted(boundaries):
            asn = lookup(boundary)
            value = as_index[asn] if asn is not None else NONE_U32
            if value != previous:
                base.append(boundary)
                origin.append(value)
                previous = value
        return base, origin

    # -- persistence --------------------------------------------------------

    def sections(self) -> Dict[str, bytes]:
        """The artifact's named sections, ready for
        :func:`repro.io.binfmt.write_container`."""
        payload: Dict[str, bytes] = {
            "meta": json.dumps(self._meta, sort_keys=True).encode("utf-8"),
        }
        for name in _U32_SECTIONS:
            column = self._tables[name]
            if not isinstance(column, array):
                column = _u32(column)
            payload[name] = _tobytes(column)
        for name in _U8_SECTIONS:
            column = self._tables[name]
            if not isinstance(column, array):
                column = _u8(column)
            payload[name] = _tobytes(column)
        return payload

    @classmethod
    def from_container(
        cls, container: BinaryContainer
    ) -> "CompiledBorderMap":
        try:
            meta = json.loads(container.section_bytes("meta"))
        except ValueError as exc:
            raise DataError(
                "corrupt section 'meta' in %s: %s" % (container.path, exc)
            ) from exc
        tables: Dict[str, Sequence[int]] = {}
        for name in _U32_SECTIONS:
            tables[name] = _cast(container.section(name), _U32, name)
        for name in _U8_SECTIONS:
            tables[name] = _cast(container.section(name), "B", name)
        try:
            return cls(meta, tables, container=container)
        except (KeyError, TypeError) as exc:
            raise DataError(
                "malformed compiled border map %s: %s"
                % (container.path, exc)
            ) from exc

    def close(self) -> None:
        """Release the underlying mapping (no-op for compiled-in-memory
        maps).  Queries after close raise."""
        if self._container is not None:
            self._container.close()

    # -- interned views -----------------------------------------------------

    @property
    def as_table(self) -> Tuple[int, ...]:
        return tuple(self._ases)

    @property
    def prefixes(self) -> Tuple[Tuple[Prefix, int], ...]:
        """The announced-prefix table, materialized on first use (the
        serving path never touches it — the LPM index answers)."""
        if self._prefixes_memo is None:
            ases = self._ases
            self._prefixes_memo = tuple(
                (Prefix(addr, plen), ases[origin])
                for addr, plen, origin in zip(
                    self._pfx_addr, self._pfx_plen, self._pfx_origin
                )
            )
        return self._prefixes_memo

    @property
    def routers(self) -> Tuple[CompiledRouter, ...]:
        """The router table materialized as dataclass rows (diagnostics
        and interop; the serving path reads the columns directly)."""
        if self._routers_memo is None:
            strings, ases = self._strings, self._ases
            addr_off, addrs = self._rt_addr_off, self._rt_addr
            dst_off, dsts = self._rt_dst_off, self._rt_dst
            rows = []
            for i in range(len(self._rt_vp)):
                owner = self._rt_owner[i]
                rows.append(CompiledRouter(
                    index=i,
                    vp_name=strings[self._rt_vp[i]],
                    rid=self._rt_rid[i],
                    addrs=tuple(addrs[addr_off[i]:addr_off[i + 1]]),
                    owner=ases[owner] if owner != NONE_U32 else None,
                    reason=strings[self._rt_reason[i]],
                    dsts=tuple(ases[d]
                               for d in dsts[dst_off[i]:dst_off[i + 1]]),
                ))
            self._routers_memo = tuple(rows)
        return self._routers_memo

    @property
    def links(self) -> Tuple[BorderLink, ...]:
        return tuple(self._link(i) for i in range(len(self._lk_near)))

    def interface_count(self) -> int:
        return len(self._if_addr)

    def stats(self) -> Dict[str, int]:
        return {
            "routers": len(self._rt_vp),
            "links": len(self._lk_near),
            "interfaces": len(self._if_addr),
            "prefixes": len(self._pfx_addr),
            "neighbors": len(self._nbr_as),
            "ases": len(self._ases),
        }

    def to_border_map(self) -> BorderMap:
        """Re-hydrate a dict :class:`BorderMap` (object graph, rebuilt
        indexes) — for diff tooling and round-trip tests, not serving."""
        return BorderMap(
            focal_asn=self.focal_asn,
            vp_ases=self.vp_ases,
            routers=self.routers,
            links=self.links,
            prefixes=self.prefixes,
            epoch=self.epoch,
            source=self.source,
        )

    # -- lazy row materialization -------------------------------------------

    def _owner_answer(self, router_index: int) -> Optional[Ownership]:
        answer = self._owner_memo[router_index]
        if answer is None:
            owner = self._rt_owner[router_index]
            if owner == NONE_U32:
                return None
            answer = Ownership(asn=self._ases[owner], source="interface",
                               router=router_index)
            self._owner_memo[router_index] = answer
        return answer

    def _bgp_answer(self, origin_index: int) -> Ownership:
        answer = self._bgp_memo[origin_index]
        if answer is None:
            answer = Ownership(asn=self._ases[origin_index], source="bgp",
                               router=None)
            self._bgp_memo[origin_index] = answer
        return answer

    def _link(self, index: int) -> BorderLink:
        link = self._link_memo[index]
        if link is None:
            far = self._lk_far[index]
            link = BorderLink(
                index=index,
                vp_name=self._strings[self._lk_vp[index]],
                near_router=self._lk_near[index],
                far_router=far if far != NONE_U32 else None,
                neighbor_as=self._ases[self._lk_nbr[index]],
                relationship=self._strings[self._lk_rel[index]],
                reason=self._strings[self._lk_reason[index]],
                via_ixp=bool(self._lk_ixp[index]),
            )
            self._link_memo[index] = link
        return link

    def _as_index_of(self, asn: int) -> int:
        """Position of ``asn`` in the sorted AS table, or NONE_U32."""
        ases = self._ases
        i = bisect_right(ases, asn) - 1
        if i >= 0 and ases[i] == asn:
            return i
        return NONE_U32

    # -- queries (same contract as BorderMap) -------------------------------

    def owner_of(self, addr: int) -> Optional[Ownership]:
        # The memo fast paths are inlined (no helper call) — this is the
        # hottest entry point of the data plane.
        if_addr = self._if_addr
        i = bisect_right(if_addr, addr) - 1
        if i >= 0 and if_addr[i] == addr:
            router = self._if_router[i]
            answer = self._owner_memo[router]
            if answer is not None:
                return answer
            owner = self._rt_owner[router]
            if owner != NONE_U32:
                answer = Ownership(asn=self._ases[owner],
                                   source="interface", router=router)
                self._owner_memo[router] = answer
                return answer
        origin = self._lpm_origin[bisect_right(self._lpm_base, addr) - 1]
        if origin == NONE_U32:
            return None
        answer = self._bgp_memo[origin]
        if answer is None:
            answer = Ownership(asn=self._ases[origin], source="bgp",
                               router=None)
            self._bgp_memo[origin] = answer
        return answer

    def owner_of_batch(
        self, addrs: Sequence[int]
    ) -> List[Optional[Ownership]]:
        # One tight loop, locals bound once: two binary searches per
        # address over contiguous u32 arrays, memoized answer rows.
        if_addr = self._if_addr
        if_router = self._if_router
        lpm_base = self._lpm_base
        lpm_origin = self._lpm_origin
        owner_answer = self._owner_answer
        bgp_answer = self._bgp_answer
        search = bisect_right
        answers: List[Optional[Ownership]] = []
        append = answers.append
        for addr in addrs:
            i = search(if_addr, addr) - 1
            if i >= 0 and if_addr[i] == addr:
                answer = owner_answer(if_router[i])
                if answer is not None:
                    append(answer)
                    continue
            origin = lpm_origin[search(lpm_base, addr) - 1]
            append(bgp_answer(origin) if origin != NONE_U32 else None)
        return answers

    def dst_as(self, addr: int) -> Optional[int]:
        origin = self._lpm_origin[bisect_right(self._lpm_base, addr) - 1]
        if origin != NONE_U32:
            return self._ases[origin]
        if_addr = self._if_addr
        i = bisect_right(if_addr, addr) - 1
        if i >= 0 and if_addr[i] == addr:
            owner = self._rt_owner[self._if_router[i]]
            return self._ases[owner] if owner != NONE_U32 else None
        return None

    def _links_toward(self, as_index: int) -> Tuple[BorderLink, ...]:
        found = self._border_memo.get(as_index)
        if found is None:
            keys, offsets, values = self._twd_as, self._twd_off, self._twd_link
            i = bisect_right(keys, as_index) - 1
            if i < 0 or keys[i] != as_index:
                keys, offsets, values = (
                    self._nbr_as, self._nbr_off, self._nbr_link
                )
                i = bisect_right(keys, as_index) - 1
            if i >= 0 and keys[i] == as_index:
                found = tuple(
                    self._link(l) for l in values[offsets[i]:offsets[i + 1]]
                )
            else:
                found = ()
            self._border_memo[as_index] = found
        return found

    def border_for(self, addr: int) -> Tuple[BorderLink, ...]:
        # The whole answer is a function of the LPM range the address
        # falls in (the origin index IS the interned AS index), so it is
        # memoized per range — bounded by the LPM table, not by the
        # address space.
        ri = bisect_right(self._lpm_base, addr) - 1
        origin = self._lpm_origin[ri]
        if origin != NONE_U32:
            found = self._range_border_memo[ri]
            if found is None:
                if self._ases[origin] in self.vp_ases:
                    found = ()
                else:
                    found = self._links_toward(origin)
                self._range_border_memo[ri] = found
            return found
        # No announced prefix covers the address: fall back to the
        # interface map, exactly like the dict engine's dst_as.
        asn = self.dst_as(addr)
        if asn is None or asn in self.vp_ases:
            return ()
        as_index = self._as_index_of(asn)
        if as_index == NONE_U32:
            return ()
        return self._links_toward(as_index)

    def neighbor_ases(self) -> Tuple[int, ...]:
        ases = self._ases
        return tuple(ases[i] for i in self._nbr_as)

    def neighbors(self, asn: int) -> Optional[NeighborInfo]:
        info = self._neighbor_memo.get(asn, False)
        if info is False:
            info = None
            as_index = self._as_index_of(asn)
            if as_index != NONE_U32:
                keys, offsets = self._nbr_as, self._nbr_off
                i = bisect_right(keys, as_index) - 1
                if i >= 0 and keys[i] == as_index:
                    links = tuple(
                        self._link(l)
                        for l in self._nbr_link[offsets[i]:offsets[i + 1]]
                    )
                    best = best_relationship(links)
                    info = NeighborInfo(
                        asn=asn,
                        relationship=best.relationship,
                        links=links,
                        best_confidence=best.confidence,
                    )
            self._neighbor_memo[asn] = info
        return info


# -- module-level artifact API ------------------------------------------------


def compile_map(
    bmap: BorderMap, donor: Optional[CompiledBorderMap] = None
) -> CompiledBorderMap:
    """Lower a dict BorderMap to its flat compiled form (optionally
    reusing an unchanged LPM projection from ``donor``)."""
    return CompiledBorderMap.from_border_map(bmap, donor=donor)


def save_compiled_map(
    source: Union[BorderMap, CompiledBorderMap],
    target: Union[str, IO[bytes]],
) -> int:
    """Write ``source`` (dict or compiled) as a binary artifact; returns
    the bytes written."""
    compiled = (
        source if isinstance(source, CompiledBorderMap)
        else CompiledBorderMap.from_border_map(source)
    )
    return write_container(target, compiled.sections())


def load_compiled_map(path: str, verify: bool = True) -> CompiledBorderMap:
    """Map a binary artifact and serve it without deserialization.

    With ``verify=True`` (default) every section's checksum is proven
    before the first answer — a corrupted or truncated artifact raises
    :class:`DataError` naming the section, never a silent partial load.
    ``verify=False`` defers checksums to first section access for pure
    O(header) start on trusted storage.
    """
    container = open_container(path, verify=verify)
    try:
        return CompiledBorderMap.from_container(container)
    except DataError:
        container.close()
        raise


# -- in-place patching --------------------------------------------------------


@dataclass(frozen=True)
class MapPatch:
    """The section-level delta between two compiled maps.

    ``changed`` holds the full bytes of every section that differs (the
    section is the patch granularity: sections are columns, and a column
    either changed or it didn't); ``base_crcs`` pins the exact base
    artifact the patch applies to — :func:`apply_map_patch` refuses any
    other base rather than producing a silently wrong map.  A patch is
    what the epoch pipeline ships to serving shards instead of a full
    artifact when churn is low.
    """

    base_epoch: int
    new_epoch: int
    changed: Dict[str, bytes] = field(default_factory=dict)
    base_crcs: Dict[str, int] = field(default_factory=dict)

    @property
    def unchanged(self) -> Tuple[str, ...]:
        return tuple(
            name for name in self.base_crcs if name not in self.changed
        )


def patch_compiled_map(
    prev: CompiledBorderMap, bmap: BorderMap
) -> Tuple[CompiledBorderMap, MapPatch]:
    """Compile ``bmap`` against the previous epoch's compiled map.

    Returns the new compiled map — byte-identical to
    ``compile_map(bmap)`` — plus the :class:`MapPatch` carrying only the
    sections that changed.  Compilation reuses ``prev``'s LPM projection
    when the prefix tables are unchanged.
    """
    compiled = CompiledBorderMap.from_border_map(bmap, donor=prev)
    new_sections = compiled.sections()
    old_sections = prev.sections()
    if set(new_sections) != set(old_sections):  # pragma: no cover - same BIN_FORMAT
        raise DataError("section sets differ between map generations")
    changed = {
        name: payload
        for name, payload in new_sections.items()
        if old_sections[name] != payload
    }
    patch = MapPatch(
        base_epoch=prev.epoch,
        new_epoch=compiled.epoch,
        changed=changed,
        base_crcs={
            name: zlib.crc32(payload)
            for name, payload in old_sections.items()
        },
    )
    return compiled, patch


def save_map_patch(
    patch: MapPatch, target: Union[str, IO[bytes]]
) -> int:
    """Write a :class:`MapPatch` as a binfmt container; returns the bytes
    written.  Layout: a ``patch_meta`` JSON section (format tag, epochs,
    base crcs, changed-section list) followed by the changed sections in
    canonical artifact order."""
    meta = {
        "format": PATCH_FORMAT,
        "base_epoch": patch.base_epoch,
        "new_epoch": patch.new_epoch,
        "base_crcs": dict(sorted(patch.base_crcs.items())),
        "changed": sorted(patch.changed),
    }
    sections: Dict[str, bytes] = {
        "patch_meta": json.dumps(meta, sort_keys=True).encode("utf-8"),
    }
    for name in ("meta",) + _U32_SECTIONS + _U8_SECTIONS:
        if name in patch.changed:
            sections[name] = patch.changed[name]
    return write_container(target, sections)


def load_map_patch(path: str) -> MapPatch:
    """Read a patch artifact written by :func:`save_map_patch`."""
    with open_container(path) as container:
        try:
            meta = json.loads(container.section_bytes("patch_meta"))
        except ValueError as exc:
            raise DataError(
                "corrupt section 'patch_meta' in %s: %s" % (path, exc)
            ) from exc
        if meta.get("format") != PATCH_FORMAT:
            raise DataError(
                "unknown map patch format %r in %s"
                % (meta.get("format"), path)
            )
        return MapPatch(
            base_epoch=meta["base_epoch"],
            new_epoch=meta["new_epoch"],
            changed={
                name: container.section_bytes(name)
                for name in meta["changed"]
            },
            base_crcs={
                name: crc for name, crc in meta["base_crcs"].items()
            },
        )


def apply_map_patch(
    base_path: str,
    patch_path: str,
    out_path: Union[str, IO[bytes]],
) -> int:
    """Overlay a patch onto a base artifact, producing the next epoch's
    full artifact (byte-identical to saving the patched compiled map).

    Every base section is CRC-checked against the patch's expectations
    first; a mismatched or wrong-generation base raises
    :class:`DataError` naming the section instead of writing a corrupt
    map.  Returns the bytes written.
    """
    patch = load_map_patch(patch_path)
    with open_container(base_path) as container:
        names = container.names()
        if set(names) != set(patch.base_crcs):
            raise DataError(
                "patch %s does not match base %s: section sets differ"
                % (patch_path, base_path)
            )
        unknown = set(patch.changed) - set(names)
        if unknown:
            raise DataError(
                "patch %s carries unknown sections: %s"
                % (patch_path, ", ".join(sorted(unknown)))
            )
        sections: Dict[str, bytes] = {}
        for name in names:
            payload = container.section_bytes(name)
            if zlib.crc32(payload) != patch.base_crcs[name]:
                raise DataError(
                    "patch %s does not apply: base section %r of %s has "
                    "a different checksum (wrong base artifact?)"
                    % (patch_path, name, base_path)
                )
            sections[name] = patch.changed.get(name, payload)
    return write_container(out_path, sections)
