"""The sharded serving front end: key-hash routing, admission control,
failover, and coordinated two-phase epoch swaps.

:class:`ShardedBorderServer` is what a deployment runs when one
process's worth of query throughput isn't enough: N replicas (each a
full :class:`~repro.serving.backend.BorderMapBackend` behind a
:class:`~repro.serving.shard.ShardChannel`), queries routed by a stable
key hash, a :class:`~repro.serving.supervisor.ShardSupervisor` keeping
the replicas alive.  The contract under failure is *explicit
degradation*:

* **Admission control** — at most ``max_inflight`` requests are
  accepted per batch wave; overflow is shed immediately with a
  ``degraded`` :class:`~repro.serving.service.Answer` (``note="shed"``),
  never silently dropped and never queued unboundedly.
* **Failover** — a request whose home shard is down or breaker-open is
  retried on the next healthy replica; replicas hold the same map, so a
  failover answer is byte-identical to the home shard's.  Only when no
  replica can answer does the caller get a degraded ``unavailable``
  answer.
* **Stale-epoch marking** — every query reply carries the shard's swap
  token; answers from a replica that has not yet committed the current
  epoch are delivered (they are correct for their own epoch) but marked
  ``degraded`` with ``note="stale-epoch"``.

The **two-phase swap** (:meth:`ShardedBorderServer.swap`) reuses the
process-unique generation counter
(:func:`~repro.serving.bordermap.next_generation`) as its token: phase
one stages the new artifact on every live shard (load happens while the
old epoch serves); only if *all* prepares succeed is the epoch
committed — otherwise every stage is aborted and the old epoch keeps
serving (keep-last-good).  Phase two commits shard by shard; a shard
that dies between prepare and commit is restarted by the supervisor
from the *committed* artifact path, so it re-converges instead of
resurrecting the old epoch.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import DataError, MeasurementError
from ..net.faults import ChannelFaultPolicy
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, perf_clock
from .bordermap import next_generation
from .service import Answer
from .shard import (
    InProcessTransport,
    ShardChannel,
    SpawnProcessTransport,
    span_from_wire,
)
from .supervisor import RestartPolicy, ShardSupervisor, SupervisedShard

_MASK64 = 0xFFFFFFFFFFFFFFFF


def shard_index(key: int, count: int) -> int:
    """Stable key→shard routing hash (splitmix64 finalizer).

    A pure function of the key, identical in every process, so a front
    end restart (or a second front end) routes the same keys to the
    same replicas and their caches stay warm.
    """
    x = (key + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x % count


def is_shed(answer: Answer) -> bool:
    """Was this answer shed by admission control (vs degraded for any
    other reason)?  Shed and degraded are counted *disjointly*: a shed
    answer carries ``degraded=True`` but must only ever land in the
    ``shed`` counter, or the tier's degraded rate silently includes
    admission-control rejections."""
    return answer.note.startswith("shed")


def mark_stale(answers: Sequence[Answer], token: int,
               committed_token: int) -> List[Answer]:
    """Re-tag a replica's answers as stale-epoch degraded: correct for
    the epoch the replica serves, but not what a converged tier would
    say.  Shared by the synchronous batch path and the async front
    end so the marker text (and chaos-test oracles) stay identical."""
    return [
        Answer(
            op=answer.op, key=answer.key, value=answer.value,
            epoch=answer.epoch, degraded=True,
            note="stale-epoch: shard token %d != committed %d"
                 % (token, committed_token),
        )
        for answer in answers
    ]


def unavailable_answers(group: Sequence[Tuple[str, int]],
                        epoch: int) -> List[Answer]:
    """Explicitly degraded answers for a group no replica could serve."""
    return [
        Answer(
            op=op, key=key, value=None, epoch=epoch,
            degraded=True, note="unavailable: no healthy shard",
        )
        for op, key in group
    ]


class VirtualClock:
    """A manually advanced clock for deterministic serving timelines."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds > 0:
            self.now += seconds


class ShardedBorderServer:
    """Front end over N supervised shard replicas (see module docs)."""

    def __init__(
        self,
        channels: List[ShardChannel],
        artifact_path: str,
        epoch: int,
        clock,
        max_inflight: int = 256,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        restart_policy: Optional[RestartPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        if not channels:
            raise ValueError("a sharded server needs at least one shard")
        # One canonical registry.  Internal bookkeeping (request/shed/
        # degraded counters back the public properties) always needs a
        # real registry, so a None/disabled argument gets a private one;
        # ``telemetry`` remembers whether the caller asked for
        # observability, which gates the per-tick harvest below.
        if metrics is None or not metrics.enabled:
            metrics = MetricsRegistry()
            self.telemetry = False
        else:
            self.telemetry = True
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled:
            self.telemetry = True
        # Spans harvested from shard workers, in harvest order; merged
        # with the front-end tracer's own spans by merged_trace().
        self._remote_spans: List[Dict[str, Any]] = []
        self._harvest_cursor = 0
        self.clock = clock
        self.channels = channels
        self.max_inflight = max_inflight
        self.supervisor = ShardSupervisor(
            channels,
            committed_path=artifact_path,
            clock=clock,
            failure_threshold=failure_threshold,
            reset_timeout_s=reset_timeout_s,
            restart_policy=restart_policy,
            metrics=metrics,
        )
        # The committed epoch: what a fully converged tier serves.
        # token 0 = "as initially loaded; no swap committed yet" — every
        # shard starts there, so 0 never marks an answer stale.
        self.committed_path = artifact_path
        self.committed_epoch = epoch
        self.committed_token = 0

    # -- counters ------------------------------------------------------------

    def _count(self, name: str, value: int = 1) -> None:
        self.metrics.inc("serving.server." + name, value)

    @property
    def requests(self) -> int:
        return self.metrics.counter("serving.server.requests")

    @property
    def shed(self) -> int:
        return self.metrics.counter("serving.server.shed")

    @property
    def degraded(self) -> int:
        return self.metrics.counter("serving.server.degraded")

    @property
    def failovers(self) -> int:
        return self.metrics.counter("serving.server.failovers")

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def degraded_rate(self) -> float:
        """Non-shed degraded answers per request — disjoint from
        :attr:`shed_rate` by construction (shed answers are counted
        only by the shed counter)."""
        return self.degraded / self.requests if self.requests else 0.0

    # -- querying ------------------------------------------------------------

    def query(self, op: str, key: int) -> Answer:
        return self.batch([(op, key)])[0]

    def batch(self, requests: Sequence[Tuple[str, int]]) -> List[Answer]:
        """Answer a batch: route, fail over, degrade explicitly.

        Admission control caps the accepted wave at ``max_inflight``;
        overflow is shed up front (cheaply, before any shard work) so
        an overloaded tier stays responsive for the requests it does
        accept.
        """
        requests = list(requests)
        if not requests:
            return []
        self._count("requests", len(requests))
        self.metrics.set_gauge(
            "serving.server.queue_depth", float(len(requests))
        )
        accepted = requests[: self.max_inflight]
        overflow = requests[self.max_inflight:]
        if overflow:
            self._count("shed", len(overflow))

        answers: List[Optional[Answer]] = [None] * len(requests)
        count = len(self.channels)
        groups: Dict[int, List[int]] = {}
        for position, (op, key) in enumerate(accepted):
            groups.setdefault(shard_index(key, count), []).append(position)

        with self.tracer.span("server.batch", size=len(requests),
                              shards=len(groups)):
            for home, positions in sorted(groups.items()):
                group = [requests[i] for i in positions]
                got = self._query_group(home, group)
                for position, answer in zip(positions, got):
                    answers[position] = answer

        for position, (op, key) in enumerate(requests):
            if answers[position] is None:  # shed overflow
                answers[position] = Answer(
                    op=op, key=key, value=None,
                    epoch=self.committed_epoch,
                    degraded=True, note="shed: server over capacity",
                )
        # Shed answers carry degraded=True but are already counted under
        # ``shed``; the degraded counter holds only non-shed degradation
        # (stale-epoch, unavailable) so the two rates stay disjoint.
        degraded = sum(
            1 for answer in answers
            if answer.degraded and not is_shed(answer)
        )
        if degraded:
            self._count("degraded", degraded)
        # The wave is done: an idle tier reports an empty queue, not the
        # last wave's depth forever.
        self.metrics.set_gauge("serving.server.queue_depth", 0.0)
        return answers  # type: ignore[return-value]

    def _trace_ctx(self) -> Optional[Dict[str, Any]]:
        """The compact trace context stamped into outgoing shard
        commands: the innermost open front-end span plus this tracer's
        seed (which deterministically derives each worker's)."""
        if not self.tracer.enabled:
            return None
        return {"id": self.tracer.current_id, "seed": self.tracer.seed}

    def _query_group(
        self, home: int, group: List[Tuple[str, int]]
    ) -> List[Answer]:
        """Send one shard's worth of requests, failing over in ring
        order across the replicas."""
        supervisor = self.supervisor
        count = len(self.channels)
        with self.tracer.span("server.query_group", home=home,
                              size=len(group)):
            ctx = self._trace_ctx()
            for offset in range(count):
                index = (home + offset) % count
                shard = supervisor.shards[index]
                if not supervisor.healthy(shard):
                    continue
                if offset:
                    self._count("failovers")
                try:
                    payload = shard.channel.query(group, trace=ctx)
                except (MeasurementError, DataError):
                    supervisor.record_failure(shard)
                    continue
                supervisor.record_success(shard)
                answers = shard.channel.answers_from(payload)
                token = payload.get("token", 0)
                shard.last_seen_epoch = payload.get("epoch", -1)
                shard.last_seen_token = token
                if token != self.committed_token:
                    # The replica answered from an epoch the tier has
                    # moved past (or not yet reached): correct for its
                    # own epoch, but not what a converged tier would
                    # say — mark it.
                    answers = mark_stale(answers, token,
                                         self.committed_token)
                return answers
            # No replica could answer.
            self._count("unavailable", len(group))
            return unavailable_answers(group, self.committed_epoch)

    # -- two-phase epoch swap ------------------------------------------------

    def swap(self, artifact_path: str, epoch: int) -> Optional[int]:
        """Two-phase hot swap to the artifact at ``artifact_path``.

        Returns the committed swap token, or ``None`` when the swap was
        rolled back (some live shard could not stage the new epoch) —
        in which case the old epoch keeps serving everywhere
        (keep-last-good) and the failure is counted under
        ``serving.server.swap_failures``.
        """
        token = next_generation()
        supervisor = self.supervisor
        live = [
            shard for shard in supervisor.shards if shard.channel.alive
        ]
        with self.tracer.span("server.swap", epoch=epoch, token=token):
            ctx = self._trace_ctx()
            prepared: List[SupervisedShard] = []
            for shard in live:
                try:
                    shard.channel.request(
                        "prepare", trace=ctx, path=artifact_path,
                        token=token, epoch=epoch,
                    )
                except (MeasurementError, DataError):
                    supervisor.record_failure(shard)
                    self._abort(prepared, token, ctx)
                    self._count("swap_failures")
                    return None
                prepared.append(shard)
            if not prepared:
                self._count("swap_failures")
                return None
            # Point of no return: the tier is now committed to the new
            # epoch.  Restarts from here on load the *new* artifact.
            self.committed_path = artifact_path
            self.committed_epoch = epoch
            self.committed_token = token
            supervisor.committed_path = artifact_path
            supervisor.committed_token = token
            self._count("swaps")
            for shard in prepared:
                try:
                    shard.channel.request("commit", trace=ctx, token=token)
                except (MeasurementError, DataError):
                    # The shard missed its commit (died, severed...).
                    # It is now stale; its answers get marked degraded
                    # until the supervisor restarts it from the
                    # committed path.
                    supervisor.record_failure(shard)
                    self._count("commit_failures")
        return token

    def _abort(self, prepared: List[SupervisedShard], token: int,
               ctx: Optional[Dict[str, Any]] = None) -> None:
        for shard in prepared:
            try:
                shard.channel.request("abort", trace=ctx, token=token)
            except (MeasurementError, DataError):
                self.supervisor.record_failure(shard)

    # -- telemetry harvest ----------------------------------------------------

    def _harvest_shard(self, shard) -> str:
        """Harvest one shard: fold its registry delta into the front-end
        registry under a ``shard.<k>.`` prefix and collect the spans it
        finished since the last harvest."""
        if not shard.channel.alive:
            return "down"
        try:
            payload = shard.channel.request("harvest")
        except (MeasurementError, DataError):
            self.supervisor.record_failure(shard)
            return "failed"
        self.supervisor.record_success(shard)
        shard.last_seen_epoch = payload.get("epoch", -1)
        shard.last_seen_token = payload.get("token", -1)
        self.metrics.merge_delta(
            payload.get("metrics", {}),
            prefix="shard.%d." % shard.shard_id,
        )
        self._remote_spans.extend(
            span_from_wire(entry) for entry in payload.get("spans", ())
        )
        self._count("harvests")
        return "harvested"

    def collect_metrics(self) -> Dict[int, str]:
        """Harvest every live shard (see :meth:`_harvest_shard`).

        Health reports and trace exports call this on demand; the
        supervision tick spreads the same work round-robin, one shard
        per tick, so the steady-state harvest cost stays flat in the
        shard count.  Returns a per-shard outcome map in
        supervisor-tick style.
        """
        return {
            shard.shard_id: self._harvest_shard(shard)
            for shard in self.supervisor.shards
        }

    def merged_trace(self) -> List[Dict[str, Any]]:
        """Front-end spans plus every harvested worker span, as dicts.

        Order is deterministic — front-end spans in completion order,
        then remote spans in (harvest, completion) order — so the JSONL
        export is byte-stable for a given seed and workload.  Worker
        spans reference front-end span ids as parents, reconstructing
        the cross-process tree (:func:`repro.obs.trace.span_tree`).
        """
        spans = [span.as_dict() for span in self.tracer.spans]
        spans.extend(self._remote_spans)
        return spans

    def write_merged_trace(self, target) -> None:
        """Atomic JSONL export of :meth:`merged_trace`."""
        payload = "".join(
            json.dumps(span, sort_keys=True) + "\n"
            for span in self.merged_trace()
        )
        if hasattr(target, "write"):
            target.write(payload)
            return
        from ..io.serialize import atomic_write_text
        atomic_write_text(target, payload)

    # -- supervision ----------------------------------------------------------

    def tick(self) -> Dict[int, str]:
        """Run one supervision pass (heartbeats + due restarts), then —
        when telemetry is on — harvest the next shard's metrics and
        spans (round-robin, one shard per tick, so the harvest cost per
        tick stays constant as the tier grows)."""
        with self.tracer.span("server.tick"):
            actions = self.supervisor.tick()
            if self.telemetry:
                shards = self.supervisor.shards
                shard = shards[self._harvest_cursor % len(shards)]
                self._harvest_cursor += 1
                self._harvest_shard(shard)
            return actions

    def converged(self) -> bool:
        """Is every live shard serving the committed epoch?"""
        return self.supervisor.converged(self.committed_token)

    def summary(self) -> str:
        return (
            "server: epoch %d (token %d), %d requests, %d shed (%.2f%%), "
            "%d degraded, %d failovers\n%s"
            % (
                self.committed_epoch, self.committed_token, self.requests,
                self.shed, 100.0 * self.shed_rate, self.degraded,
                self.failovers, self.supervisor.summary(),
            )
        )

    def close(self) -> None:
        for channel in self.channels:
            channel.close()


# -- factories ---------------------------------------------------------------


def make_local_server(
    artifact_path: str,
    epoch: int,
    shards: int = 3,
    cache_size: int = 4096,
    max_inflight: int = 256,
    deadline_s: float = 5.0,
    faults: Optional[ChannelFaultPolicy] = None,
    fault_seed: int = 0,
    failure_threshold: int = 3,
    reset_timeout_s: float = 30.0,
    restart_seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
    tracer=None,
    clock: Optional[VirtualClock] = None,
) -> Tuple[ShardedBorderServer, VirtualClock]:
    """A fully in-process sharded server on a virtual clock.

    Deterministic end to end: the same seed and fault policy replay the
    same fault and restart timeline.  ``faults`` is a *template*; each
    shard channel gets its own policy derived from ``fault_seed`` and
    the shard id, so fault streams are independent per shard but
    reproducible.
    """
    if clock is None:
        clock = VirtualClock()
    channels = []
    for shard_id in range(shards):
        policy = None
        if faults is not None:
            policy = ChannelFaultPolicy(
                drop_rate=faults.drop_rate,
                garble_rate=faults.garble_rate,
                sever_rate=faults.sever_rate,
                delay_rate=faults.delay_rate,
                delay_seconds=faults.delay_seconds,
                seed=fault_seed * 1000003 + shard_id,
            )
        transport = InProcessTransport(
            artifact_path, shard_id=shard_id, cache_size=cache_size
        )
        channels.append(
            ShardChannel(
                transport, faults=policy, deadline_s=deadline_s,
                clock_advance=clock.advance,
            )
        )
    server = ShardedBorderServer(
        channels, artifact_path=artifact_path, epoch=epoch, clock=clock,
        max_inflight=max_inflight, failure_threshold=failure_threshold,
        reset_timeout_s=reset_timeout_s,
        restart_policy=RestartPolicy(seed=restart_seed),
        metrics=metrics, tracer=tracer,
    )
    return server, clock


def make_process_server(
    artifact_path: str,
    epoch: int,
    shards: int = 2,
    cache_size: int = 4096,
    max_inflight: int = 256,
    deadline_s: float = 10.0,
    failure_threshold: int = 3,
    reset_timeout_s: float = 5.0,
    restart_seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
    tracer=None,
) -> ShardedBorderServer:
    """The production shape: each shard is a spawn-context child
    process holding its own copy of the map; time is the wall clock
    (via :func:`~repro.obs.trace.perf_clock`, the repo's one sanctioned
    wall-time source)."""
    channels = [
        ShardChannel(
            SpawnProcessTransport(
                artifact_path, shard_id=shard_id, cache_size=cache_size
            ),
            deadline_s=deadline_s,
        )
        for shard_id in range(shards)
    ]
    return ShardedBorderServer(
        channels, artifact_path=artifact_path, epoch=epoch,
        clock=perf_clock, max_inflight=max_inflight,
        failure_threshold=failure_threshold,
        reset_timeout_s=reset_timeout_s,
        restart_policy=RestartPolicy(seed=restart_seed),
        metrics=metrics, tracer=tracer,
    )


def collect_answer_values(answers: Sequence[Answer]) -> List[Any]:
    """The values of a batch, in order — convenience for oracle diffs."""
    return [answer.value for answer in answers]
