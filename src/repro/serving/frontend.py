"""The async coalescing front end for the sharded serving tier.

:class:`AsyncBorderFrontEnd` sits in front of an existing
:class:`~repro.serving.server.ShardedBorderServer`'s shard channels and
closes the throughput gap the synchronous ``batch()`` path leaves on
duplicate-heavy workloads (many clients asking about the same
interconnection — the common case for border queries):

* **Singleflight coalescing** — concurrent duplicate ``(op, key)``
  requests collapse into one in-flight shard call through a
  future-keyed table.  The engine already dedupes *inside*
  ``QueryEngine.batch``, but the framed shard payload still carried
  every duplicate across two JSON hops; here each distinct key crosses
  the wire exactly once per epoch and every waiter shares the answer.
* **Pipelined shard waves** — per-shard groups are dispatched as
  concurrent waves instead of ``batch()``'s sequential
  ``sorted(groups.items())`` loop, bounded by a per-shard
  outstanding-wave cap (the async tier's admission control, replacing
  the synchronous slice-at-``max_inflight``): when a shard's in-flight
  distinct demand exceeds ``wave_size * max_waves_per_shard``, the
  overflow is shed immediately with an explicit degraded answer —
  never queued unboundedly, never silently dropped.
* **PR 7 semantics preserved** — key-hash routing
  (:func:`~repro.serving.server.shard_index`), ring-order failover to
  live replicas, explicit degraded/shed/stale-epoch answers, and
  two-phase swap safety: :meth:`swap` fences new waves and drains
  every in-flight coalesced call before the commit, so no coalesced
  future ever resolves with answers from a mix of epochs (the
  singleflight table is additionally keyed by the committed swap
  token, so a request arriving mid-swap can never join a
  previous epoch's future).
* **Trace propagation** — each coalesced shard call records one
  ``server.query_group`` span with a ``coalesced=N`` attribute (the
  number of requests folded into the wave) whose id rides the framed
  command, exactly like the synchronous path, so worker spans parent
  correctly in the merged cross-process trace.

Determinism: with in-process shard transports the event loop never
actually blocks (exchanges are function calls), so wave dispatch order
— and therefore fault-policy draws, failover order, and the merged
trace — is deterministic under a seed, which is what lets the chaos
tests assert byte-identity against the synchronous path.  Process-
backed shards pass an executor to :class:`~repro.serving.shard.\
AsyncShardTransport` and genuinely overlap in wall time.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import DataError, MeasurementError
from .service import Answer
from .shard import AsyncShardTransport, SpawnProcessTransport
from .server import (
    ShardedBorderServer,
    is_shed,
    mark_stale,
    shard_index,
    unavailable_answers,
)

#: Note stamped on answers shed by the per-shard wave cap; starts with
#: "shed" so :func:`~repro.serving.server.is_shed` (and the disjoint
#: shed/degraded accounting) treats both admission controllers alike.
SHED_NOTE = "shed: shard wave cap"


class AsyncBorderFrontEnd:
    """Asyncio front end over a :class:`ShardedBorderServer`'s shards.

    The front end reuses the server's supervisor (breakers, restarts,
    heartbeats), committed epoch/token state, metrics registry, and
    tracer — it replaces only the dispatch loop, so health reports,
    chaos harnesses, and ``swap()`` bookkeeping read exactly the same
    tier state whichever path served the traffic.
    """

    def __init__(
        self,
        server: ShardedBorderServer,
        wave_size: int = 64,
        max_waves_per_shard: int = 4,
        executor=None,
        own_executor: bool = False,
    ) -> None:
        if wave_size < 1:
            raise ValueError("wave_size must be >= 1")
        if max_waves_per_shard < 1:
            raise ValueError("max_waves_per_shard must be >= 1")
        self.server = server
        self.metrics = server.metrics
        self.tracer = server.tracer
        self.wave_size = wave_size
        self.max_waves_per_shard = max_waves_per_shard
        self.transports = [
            AsyncShardTransport(channel, executor=executor)
            for channel in server.channels
        ]
        self._executor = executor
        self._own_executor = own_executor
        # Per-shard admission cap: distinct in-flight keys, not waves —
        # a full pipeline of max_waves_per_shard waves of wave_size.
        self._capacity = wave_size * max_waves_per_shard
        # asyncio primitives are loop-bound; (re)built lazily so the
        # front end survives repeated asyncio.run() calls.
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._inflight: Dict[Tuple[int, str, int], asyncio.Future] = {}
        self._shard_load: List[int] = [0] * len(server.channels)
        self._semaphores: List[asyncio.Semaphore] = []
        self._fence: Optional[asyncio.Event] = None
        self._drained: Optional[asyncio.Event] = None
        self._swap_lock: Optional[asyncio.Lock] = None
        self._outstanding = 0

    # -- counters ------------------------------------------------------------

    def _count(self, name: str, value: int = 1) -> None:
        self.metrics.inc("serving.frontend." + name, value)

    @property
    def requests(self) -> int:
        return self.metrics.counter("serving.frontend.requests")

    @property
    def coalesced(self) -> int:
        return self.metrics.counter("serving.frontend.coalesced")

    @property
    def coalesce_rate(self) -> float:
        return self.coalesced / self.requests if self.requests else 0.0

    # -- loop binding --------------------------------------------------------

    def _bind_loop(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is loop:
            return
        self._loop = loop
        self._inflight = {}
        self._shard_load = [0] * len(self.transports)
        self._semaphores = [
            asyncio.Semaphore(self.max_waves_per_shard)
            for _ in self.transports
        ]
        self._fence = asyncio.Event()
        self._fence.set()
        self._drained = asyncio.Event()
        self._drained.set()
        self._swap_lock = asyncio.Lock()
        self._outstanding = 0

    # -- querying ------------------------------------------------------------

    async def query(self, op: str, key: int) -> Answer:
        return (await self.batch([(op, key)]))[0]

    async def batch(
        self, requests: Sequence[Tuple[str, int]]
    ) -> List[Answer]:
        """Answer a batch: coalesce, route, pipeline, degrade explicitly.

        Every position in ``requests`` gets an answer in order.
        Duplicate ``(op, key)`` pairs — inside this batch or across
        concurrent ``batch()`` calls — share one shard call.
        """
        requests = list(requests)
        if not requests:
            return []
        self._bind_loop()
        loop = self._loop
        server = self.server
        count = len(self.transports)
        self._count("requests", len(requests))
        self.metrics.inc("serving.server.requests", len(requests))

        token = server.committed_token
        futures: List[asyncio.Future] = []
        owned: Dict[int, List[Tuple[str, int, asyncio.Future]]] = {}
        joined = 0
        for op, key in requests:
            fkey = (token, op, key)
            future = self._inflight.get(fkey)
            if future is not None:
                future.waiters += 1  # type: ignore[attr-defined]
                joined += 1
                futures.append(future)
                continue
            future = loop.create_future()
            future.waiters = 1  # type: ignore[attr-defined]
            home = shard_index(key, count)
            if self._shard_load[home] >= self._capacity:
                # The shard's pipeline is full: shed now, explicitly.
                future.set_result(Answer(
                    op=op, key=key, value=None,
                    epoch=server.committed_epoch,
                    degraded=True, note=SHED_NOTE,
                ))
                futures.append(future)
                continue
            self._inflight[fkey] = future
            self._shard_load[home] += 1
            future.add_done_callback(
                lambda f, fkey=fkey, home=home: self._settled(fkey, home)
            )
            owned.setdefault(home, []).append((op, key, future))
            futures.append(future)
        if joined:
            self._count("coalesced", joined)
        self._count("distinct", sum(len(v) for v in owned.values()))
        self.metrics.set_gauge(
            "serving.server.queue_depth", float(len(self._inflight))
        )

        tasks = [
            loop.create_task(self._send_wave(home, entries[start:start
                                                           + self.wave_size]))
            for home, entries in sorted(owned.items())
            for start in range(0, len(entries), self.wave_size)
        ]
        if tasks:
            await asyncio.gather(*tasks)
        answers: List[Answer] = list(await asyncio.gather(*futures))

        shed = sum(1 for answer in answers if is_shed(answer))
        degraded = sum(
            1 for answer in answers
            if answer.degraded and not is_shed(answer)
        )
        if shed:
            self._count("shed", shed)
            self.metrics.inc("serving.server.shed", shed)
        if degraded:
            self.metrics.inc("serving.server.degraded", degraded)
        self.metrics.set_gauge(
            "serving.server.queue_depth", float(len(self._inflight))
        )
        return answers

    def _settled(self, fkey: Tuple[int, str, int], home: int) -> None:
        """Done callback: retire a resolved future from the
        singleflight table and release its admission slot."""
        if self._inflight.pop(fkey, None) is not None:
            self._shard_load[home] -= 1

    async def _send_wave(
        self, home: int, wave: List[Tuple[str, int, asyncio.Future]]
    ) -> None:
        """One coalesced shard call: at most ``wave_size`` distinct
        keys, bounded by the shard's outstanding-wave semaphore and the
        swap fence."""
        async with self._semaphores[home]:
            await self._fence.wait()
            self._outstanding += 1
            self._drained.clear()
            try:
                group = [(op, key) for op, key, _ in wave]
                demand = sum(
                    getattr(future, "waiters", 1) for _, _, future in wave
                )
                ctx = None
                if self.tracer.enabled:
                    with self.tracer.span(
                        "server.query_group", home=home, size=len(group),
                        coalesced=demand,
                    ):
                        ctx = self.server._trace_ctx()
                self._count("waves")
                answers = await self._query_group(home, group, ctx)
                for (op, key, future), answer in zip(wave, answers):
                    if not future.done():
                        future.set_result(answer)
            finally:
                self._outstanding -= 1
                if self._outstanding == 0:
                    self._drained.set()

    async def _query_group(
        self, home: int, group: List[Tuple[str, int]],
        ctx: Optional[Dict[str, Any]],
    ) -> List[Answer]:
        """The async twin of ``ShardedBorderServer._query_group``:
        ring-order failover across live replicas, stale-epoch marking
        against the committed token."""
        server = self.server
        supervisor = server.supervisor
        count = len(self.transports)
        for offset in range(count):
            index = (home + offset) % count
            shard = supervisor.shards[index]
            if not supervisor.healthy(shard):
                continue
            if offset:
                server._count("failovers")
            try:
                payload = await self.transports[index].query(group, trace=ctx)
            except (MeasurementError, DataError):
                supervisor.record_failure(shard)
                continue
            supervisor.record_success(shard)
            answers = self.transports[index].answers_from(payload)
            token = payload.get("token", 0)
            shard.last_seen_epoch = payload.get("epoch", -1)
            shard.last_seen_token = token
            if token != server.committed_token:
                answers = mark_stale(answers, token, server.committed_token)
            return answers
        server._count("unavailable", len(group))
        return unavailable_answers(group, server.committed_epoch)

    # -- two-phase epoch swap ------------------------------------------------

    async def swap(self, artifact_path: str, epoch: int) -> Optional[int]:
        """Fence, drain, then run the server's two-phase swap.

        New waves block on the fence for the duration; every in-flight
        coalesced call completes (and resolves its futures) before the
        prepare/commit sequence starts, so no coalesced future spans
        the epoch boundary.  Returns the committed token, or ``None``
        on rollback — identical contract to the synchronous
        :meth:`ShardedBorderServer.swap`.
        """
        self._bind_loop()
        async with self._swap_lock:
            self._fence.clear()
            try:
                await self._drained.wait()
                return self.server.swap(artifact_path, epoch)
            finally:
                self._fence.set()

    # -- sync conveniences ---------------------------------------------------

    def batch_sync(self, requests: Sequence[Tuple[str, int]]) -> List[Answer]:
        """Run :meth:`batch` to completion on a private event loop —
        the drop-in stand-in for ``server.batch`` in synchronous
        callers (CLI, tests, benchmarks)."""
        return asyncio.run(self.batch(requests))

    def swap_sync(self, artifact_path: str, epoch: int) -> Optional[int]:
        return asyncio.run(self.swap(artifact_path, epoch))

    def summary(self) -> str:
        return (
            "frontend: %d requests, %d coalesced (%.1f%%), %d waves\n%s"
            % (
                self.requests, self.coalesced, 100.0 * self.coalesce_rate,
                self.metrics.counter("serving.frontend.waves"),
                self.server.summary(),
            )
        )

    def close(self) -> None:
        if self._own_executor and self._executor is not None:
            self._executor.shutdown(wait=True)


def make_async_frontend(
    server: ShardedBorderServer,
    wave_size: int = 64,
    max_waves_per_shard: int = 4,
) -> AsyncBorderFrontEnd:
    """The standard front end for an existing server: inline (and
    deterministic) over in-process shards, thread-offloaded over
    process-backed shards whose pipe exchanges genuinely block."""
    executor = None
    own_executor = False
    if any(isinstance(channel.transport, SpawnProcessTransport)
           for channel in server.channels):
        from concurrent.futures import ThreadPoolExecutor
        executor = ThreadPoolExecutor(
            max_workers=max(2, len(server.channels)),
            thread_name_prefix="bdrmap-frontend",
        )
        own_executor = True
    return AsyncBorderFrontEnd(
        server, wave_size=wave_size,
        max_waves_per_shard=max_waves_per_shard,
        executor=executor, own_executor=own_executor,
    )
