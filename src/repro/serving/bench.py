"""Serving throughput benchmark: infer → compile → measure → record.

One harness drives both ``repro serve-bench`` and
``benchmarks/test_bench_serving.py`` so the CLI, the CI smoke job, and
the perf-tracking JSON all measure exactly the same paths over the same
deterministic workload:

* **naive** — per-query recomputation from the raw per-VP results (scan
  every router, re-derive the destination AS), the pre-BorderMap world;
* **cold** — uncached queries against the compiled map (dict + LPM trie,
  no result cache);
* **warm** — the :class:`~repro.serving.engine.QueryEngine` with a
  populated LRU cache;
* **batched** — the warm engine's batch API fed op-homogeneous
  micro-batches of ``batch_size`` keys;
* **service** — the same batches through the
  :class:`~repro.serving.service.BorderMapService` front end, which adds
  request counting and epoch-tagged answers.

A third harness (:func:`run_service_benchmark`) drives the *sharded*
tier end to end: an open-loop load generator with seeded exponential
arrivals plus a deliberate overload burst, measuring p50/p99 request
latency and the admission-control shed rate (``BENCH_service.json``).

Timings are wall-clock (the one place this repo measures real time —
throughput of the serving layer is a property of the host, not of the
simulated Internet); the workload itself is seeded and fully
deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, IO, List, Optional, Tuple, Union

from ..obs.trace import perf_clock
from ..rng import make_rng

BENCH_SCHEMA = 1


def _default_build(name: str, seed: Optional[int]):
    from .. import build_scenario, topology

    factory = getattr(topology, name)
    config = factory(seed=seed) if seed is not None else factory()
    return build_scenario(config)


def make_workload(
    bmap, view, count: int, seed: int = 0
) -> List[Tuple[str, int]]:
    """A deterministic serving workload over one compiled map.

    Mixes the query shapes a deployment sees: owner lookups on observed
    interfaces (the common case), owner/border lookups on arbitrary
    routed addresses, border lookups toward announced prefixes, a few
    unrouted addresses, and neighbor summaries.
    """
    rng = make_rng((seed << 8) ^ 0x5E21)
    interfaces = sorted(
        {addr for router in bmap.routers for addr in router.addrs}
    )
    prefixes = [prefix for prefix, _ in bmap.prefixes] or None
    neighbor_ases = list(bmap.neighbor_ases()) or [bmap.focal_asn]
    workload: List[Tuple[str, int]] = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.40 and interfaces:
            workload.append(("owner", rng.choice(interfaces)))
        elif roll < 0.60 and prefixes is not None:
            prefix = rng.choice(prefixes)
            workload.append(
                ("owner", prefix.addr + rng.randrange(prefix.size))
            )
        elif roll < 0.90 and prefixes is not None:
            prefix = rng.choice(prefixes)
            workload.append(
                ("border", prefix.addr + rng.randrange(prefix.size))
            )
        elif roll < 0.95:
            workload.append(("neighbors", rng.choice(neighbor_ases)))
        else:
            workload.append(("owner", rng.randrange(1 << 32)))
    return workload


@dataclass
class ServingBenchSummary:
    """The machine-readable outcome (``BENCH_serving.json``)."""

    scenario: str
    seed: Optional[int]
    queries: int
    repeats: int
    batch_size: int
    vps: int
    map_stats: Dict[str, int] = field(default_factory=dict)
    naive_qps: float = 0.0
    cold_qps: float = 0.0
    warm_qps: float = 0.0
    batched_qps: float = 0.0
    service_qps: float = 0.0
    warm_hit_rate: float = 0.0

    @property
    def speedup_warm(self) -> float:
        return self.warm_qps / self.naive_qps if self.naive_qps else 0.0

    @property
    def speedup_batched(self) -> float:
        return self.batched_qps / self.naive_qps if self.naive_qps else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench": "serving",
            "schema": BENCH_SCHEMA,
            "config": {
                "scenario": self.scenario,
                "seed": self.seed,
                "queries": self.queries,
                "repeats": self.repeats,
                "batch_size": self.batch_size,
                "vps": self.vps,
            },
            "map": dict(self.map_stats),
            "metrics": {
                "naive_qps": round(self.naive_qps, 1),
                "cold_qps": round(self.cold_qps, 1),
                "warm_qps": round(self.warm_qps, 1),
                "batched_qps": round(self.batched_qps, 1),
                "service_qps": round(self.service_qps, 1),
                "warm_hit_rate": round(self.warm_hit_rate, 4),
                "speedup_warm": round(self.speedup_warm, 1),
                "speedup_batched": round(self.speedup_batched, 1),
            },
        }

    def write_json(self, target: Union[str, IO[str]]) -> None:
        payload = json.dumps(self.to_dict(), indent=1)
        if hasattr(target, "write"):
            target.write(payload)
            return
        with open(target, "w") as handle:
            handle.write(payload)

    def text(self) -> str:
        return "\n".join(
            [
                "serving benchmark: %s, %d VPs, %d queries x %d passes"
                % (self.scenario, self.vps, self.queries, self.repeats),
                "  map: %s"
                % ", ".join("%s=%d" % (k, v)
                            for k, v in sorted(self.map_stats.items())),
                "  naive   %12.0f q/s  (per-query recomputation)"
                % self.naive_qps,
                "  cold    %12.0f q/s  (%.1fx naive)"
                % (self.cold_qps,
                   self.cold_qps / self.naive_qps if self.naive_qps else 0.0),
                "  warm    %12.0f q/s  (%.1fx naive, %.1f%% cache hits)"
                % (self.warm_qps, self.speedup_warm,
                   100 * self.warm_hit_rate),
                "  batched %12.0f q/s  (%.1fx naive, batch=%d)"
                % (self.batched_qps, self.speedup_batched, self.batch_size),
                "  service %12.0f q/s  (%.1fx naive, epoch-tagged answers)"
                % (self.service_qps,
                   self.service_qps / self.naive_qps
                   if self.naive_qps else 0.0),
            ]
        )


def _qps(total_queries: int, elapsed: float) -> float:
    return total_queries / max(elapsed, 1e-9)


def bench_paths(
    results,
    bmap,
    view,
    workload: List[Tuple[str, int]],
    repeats: int = 5,
    batch_size: int = 64,
    naive_repeats: int = 1,
    metrics=None,
    tracer=None,
) -> Dict[str, float]:
    """Time the serving paths over ``workload``; returns QPS per path
    plus the warm cache hit rate.  ``metrics``/``tracer`` (optional)
    record each path's counters and a span per measured phase."""
    from ..obs.metrics import NULL_REGISTRY
    from ..obs.trace import NULL_TRACER
    from .engine import QueryEngine
    from .naive import naive_border_for, naive_owner_of
    from .service import BorderMapService

    if metrics is None:
        metrics = NULL_REGISTRY
    if tracer is None:
        tracer = NULL_TRACER

    # naive: every query rescans the raw results (and the view for LPM).
    started = perf_clock()
    with tracer.span("bench.naive"):
        for _ in range(naive_repeats):
            for op, key in workload:
                if op == "owner":
                    naive_owner_of(results, key, view=view)
                elif op == "border":
                    naive_border_for(results, key, view=view)
                else:
                    for result in results:
                        result.links_with(key)
    naive_qps = _qps(naive_repeats * len(workload), perf_clock() - started)

    # cold: the compiled map's indexes, no result cache.
    started = perf_clock()
    with tracer.span("bench.cold"):
        for _ in range(repeats):
            for op, key in workload:
                if op == "owner":
                    bmap.owner_of(key)
                elif op == "border":
                    bmap.border_for(key)
                else:
                    bmap.neighbors(key)
    cold_qps = _qps(repeats * len(workload), perf_clock() - started)

    # warm: cached engine, one untimed warm-up pass.  The warm engine
    # keeps a private stats registry because its counters are reset
    # after warm-up (the shared registry must not lose history).
    engine = QueryEngine(bmap, cache_size=4 * len(workload) + 64)
    for op, key in workload:
        getattr(engine, {"owner": "owner_of", "border": "border_for",
                         "neighbors": "neighbors"}[op])(key)
    engine.stats = type(engine.stats)()  # count only the timed passes
    started = perf_clock()
    with tracer.span("bench.warm"):
        for _ in range(repeats):
            for op, key in workload:
                if op == "owner":
                    engine.owner_of(key)
                elif op == "border":
                    engine.border_for(key)
                else:
                    engine.neighbors(key)
    warm_qps = _qps(repeats * len(workload), perf_clock() - started)
    warm_hit_rate = engine.stats.hit_rate

    # batched: the warm engine's batch API.  Micro-batches are
    # op-homogeneous (grouping is the front end's job and happens before
    # the engine is involved).
    batch_engine = QueryEngine(
        bmap, cache_size=4 * len(workload) + 64, metrics=metrics
    )
    batches: List[Tuple[str, List[int]]] = []
    for start in range(0, len(workload), batch_size):
        per_op: Dict[str, List[int]] = {}
        for op, key in workload[start:start + batch_size]:
            per_op.setdefault(op, []).append(key)
        batches.extend(sorted(per_op.items()))
    methods = {
        "owner": batch_engine.owner_of_batch,
        "border": batch_engine.border_for_batch,
        "neighbors": batch_engine.neighbors_batch,
    }
    for op, keys in batches:  # warm-up
        methods[op](keys)
    started = perf_clock()
    with tracer.span("bench.batched"):
        for _ in range(repeats):
            for op, keys in batches:
                methods[op](keys)
    batched_qps = _qps(repeats * len(workload), perf_clock() - started)

    # service: the same batches through the BorderMapService front end
    # (request counting, epoch-tagged answers) — the figure a deployment
    # would quote.
    service = BorderMapService(
        bmap, cache_size=4 * len(workload) + 64, batch_size=batch_size,
        metrics=metrics,
    )
    service.batch(workload)  # warm-up
    started = perf_clock()
    with tracer.span("bench.service"):
        for _ in range(repeats):
            for start in range(0, len(workload), batch_size):
                service.batch(workload[start:start + batch_size])
    service_qps = _qps(repeats * len(workload), perf_clock() - started)

    return {
        "naive_qps": naive_qps,
        "cold_qps": cold_qps,
        "warm_qps": warm_qps,
        "batched_qps": batched_qps,
        "service_qps": service_qps,
        "warm_hit_rate": warm_hit_rate,
    }


@dataclass
class CompiledBenchSummary:
    """The compiled-data-plane outcome (``BENCH_compiled.json``):
    flat array-backed map vs the dict engine, same workload, plus the
    artifact load-time race (mmap vs JSON parse + index rebuild)."""

    scenario: str
    seed: Optional[int]
    queries: int
    repeats: int
    load_repeats: int
    vps: int
    map_stats: Dict[str, int] = field(default_factory=dict)
    json_bytes: int = 0
    binary_bytes: int = 0
    load_json_seconds: float = 0.0
    load_binary_seconds: float = 0.0
    dict_qps: float = 0.0
    compiled_qps: float = 0.0
    dict_batch_qps: float = 0.0
    compiled_batch_qps: float = 0.0

    @property
    def speedup_lookup(self) -> float:
        return self.compiled_qps / self.dict_qps if self.dict_qps else 0.0

    @property
    def speedup_batch(self) -> float:
        return (self.compiled_batch_qps / self.dict_batch_qps
                if self.dict_batch_qps else 0.0)

    @property
    def speedup_load(self) -> float:
        return (self.load_json_seconds / self.load_binary_seconds
                if self.load_binary_seconds else 0.0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench": "compiled",
            "schema": BENCH_SCHEMA,
            "config": {
                "scenario": self.scenario,
                "seed": self.seed,
                "queries": self.queries,
                "repeats": self.repeats,
                "load_repeats": self.load_repeats,
                "vps": self.vps,
            },
            "map": dict(self.map_stats),
            "artifact": {
                "json_bytes": self.json_bytes,
                "binary_bytes": self.binary_bytes,
            },
            "metrics": {
                "load_json_ms": round(1e3 * self.load_json_seconds, 3),
                "load_binary_ms": round(1e3 * self.load_binary_seconds, 3),
                "dict_qps": round(self.dict_qps, 1),
                "compiled_qps": round(self.compiled_qps, 1),
                "dict_batch_qps": round(self.dict_batch_qps, 1),
                "compiled_batch_qps": round(self.compiled_batch_qps, 1),
                "speedup_lookup": round(self.speedup_lookup, 1),
                "speedup_batch": round(self.speedup_batch, 1),
                "speedup_load": round(self.speedup_load, 1),
            },
        }

    def write_json(self, target: Union[str, IO[str]]) -> None:
        payload = json.dumps(self.to_dict(), indent=1)
        if hasattr(target, "write"):
            target.write(payload)
            return
        with open(target, "w") as handle:
            handle.write(payload)

    def text(self) -> str:
        return "\n".join(
            [
                "compiled data plane benchmark: %s, %d VPs, %d queries x "
                "%d passes" % (self.scenario, self.vps, self.queries,
                               self.repeats),
                "  map: %s"
                % ", ".join("%s=%d" % (k, v)
                            for k, v in sorted(self.map_stats.items())),
                "  artifact: json=%d bytes, binary=%d bytes"
                % (self.json_bytes, self.binary_bytes),
                "  load    json %10.3f ms   binary %10.3f ms  (%.1fx)"
                % (1e3 * self.load_json_seconds,
                   1e3 * self.load_binary_seconds, self.speedup_load),
                "  lookup  dict %10.0f q/s  compiled %9.0f q/s  (%.1fx)"
                % (self.dict_qps, self.compiled_qps, self.speedup_lookup),
                "  batch   dict %10.0f q/s  compiled %9.0f q/s  (%.1fx)"
                % (self.dict_batch_qps, self.compiled_batch_qps,
                   self.speedup_batch),
            ]
        )


def _assert_backends_agree(bmap, cmap, workload) -> None:
    """Refuse to time backends that disagree: every answer the benchmark
    is about to measure must be byte-identical across data planes."""
    for op, key in workload:
        if op == "owner":
            want, got = bmap.owner_of(key), cmap.owner_of(key)
        elif op == "border":
            want, got = bmap.border_for(key), cmap.border_for(key)
        else:
            want, got = bmap.neighbors(key), cmap.neighbors(key)
        if want != got:
            raise AssertionError(
                "backends disagree on %s %r: dict=%r compiled=%r"
                % (op, key, want, got)
            )


def _workload_pass(target, workload) -> float:
    """One timed pass over the workload; returns elapsed seconds."""
    started = perf_clock()
    for op, key in workload:
        if op == "owner":
            target.owner_of(key)
        elif op == "border":
            target.border_for(key)
        else:
            target.neighbors(key)
    return perf_clock() - started


def bench_compiled_paths(
    bmap,
    cmap,
    workload: List[Tuple[str, int]],
    json_path: str,
    binary_path: str,
    repeats: int = 5,
    load_repeats: int = 10,
) -> Dict[str, float]:
    """Time the dict map against the compiled map — uncached direct
    lookups (the data planes themselves, no engine LRU in front) plus
    the owner batch path and the artifact load race.  Loads take the
    best of ``load_repeats`` (the page cache is deliberately warm on
    both sides: the race is parse-and-rebuild vs map-and-go)."""
    from ..io import load_border_map
    from .compiled import load_compiled_map

    _assert_backends_agree(bmap, cmap, workload)

    # One untimed pass so both sides' lazy/memoized rows exist: the
    # steady state is what a long-lived server measures.  Timed passes
    # are interleaved dict/compiled and each side keeps its best, so
    # transient machine noise cannot land on one side only.
    _workload_pass(bmap, workload)
    _workload_pass(cmap, workload)
    dict_best = compiled_best = float("inf")
    for _ in range(repeats):
        dict_best = min(dict_best, _workload_pass(bmap, workload))
        compiled_best = min(compiled_best, _workload_pass(cmap, workload))
    dict_qps = _qps(len(workload), dict_best)
    compiled_qps = _qps(len(workload), compiled_best)

    owner_addrs = [key for op, key in workload if op == "owner"] or [0]
    dict_best = compiled_best = float("inf")
    for _ in range(repeats):
        started = perf_clock()
        bmap.owner_of_batch(owner_addrs)
        dict_best = min(dict_best, perf_clock() - started)
        started = perf_clock()
        cmap.owner_of_batch(owner_addrs)
        compiled_best = min(compiled_best, perf_clock() - started)
    dict_batch_qps = _qps(len(owner_addrs), dict_best)
    compiled_batch_qps = _qps(len(owner_addrs), compiled_best)

    load_json = load_binary = float("inf")
    for _ in range(load_repeats):
        started = perf_clock()
        load_border_map(json_path)
        load_json = min(load_json, perf_clock() - started)
        started = perf_clock()
        load_compiled_map(binary_path).close()
        load_binary = min(load_binary, perf_clock() - started)

    return {
        "dict_qps": dict_qps,
        "compiled_qps": compiled_qps,
        "dict_batch_qps": dict_batch_qps,
        "compiled_batch_qps": compiled_batch_qps,
        "load_json_seconds": load_json,
        "load_binary_seconds": load_binary,
    }


def run_compiled_benchmark(
    scenario_name: str = "mini",
    seed: Optional[int] = None,
    queries: int = 2000,
    repeats: int = 5,
    load_repeats: int = 10,
    workdir: Optional[str] = None,
    build: Optional[Callable] = None,
) -> CompiledBenchSummary:
    """Infer on ``scenario_name``, compile both data planes, and race
    them: lookup throughput and artifact load time, dict vs compiled.
    Artifacts land in ``workdir`` (a temp dir when omitted)."""
    import os
    import tempfile

    from .. import build_data_bundle
    from ..core.orchestrator import MultiVPOrchestrator
    from ..io import save_border_map
    from .bordermap import compile_border_map
    from .compiled import CompiledBorderMap, save_compiled_map

    build = build or _default_build
    scenario = build(scenario_name, seed)
    data = build_data_bundle(scenario)
    run = MultiVPOrchestrator(scenario, data=data).run()
    bmap = compile_border_map(
        run.results, view=data.view, rels=data.rels, epoch=1,
        source="compiled-bench %s" % scenario_name,
    )
    cmap = CompiledBorderMap.from_border_map(bmap)
    workload = make_workload(bmap, data.view, queries, seed=seed or 0)

    cleanup = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="bdrmap-bench-")
        workdir = cleanup.name
    try:
        json_path = os.path.join(workdir, "map.json")
        binary_path = os.path.join(workdir, "map.bdrm")
        save_border_map(bmap, json_path)
        binary_bytes = save_compiled_map(cmap, binary_path)
        measured = bench_compiled_paths(
            bmap, cmap, workload, json_path, binary_path,
            repeats=repeats, load_repeats=load_repeats,
        )
        json_bytes = os.path.getsize(json_path)
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return CompiledBenchSummary(
        scenario=scenario_name,
        seed=seed,
        queries=len(workload),
        repeats=repeats,
        load_repeats=load_repeats,
        vps=len(run.results),
        map_stats=bmap.stats(),
        json_bytes=json_bytes,
        binary_bytes=binary_bytes,
        **measured,
    )


def _percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted list."""
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return (sorted_values[low] * (1.0 - fraction)
            + sorted_values[high] * fraction)


@dataclass
class ServiceBenchSummary:
    """The sharded-tier outcome (``BENCH_service.json``): open-loop
    latency percentiles and the admission-control shed rate."""

    scenario: str
    seed: Optional[int]
    shards: int
    max_inflight: int
    offered_qps: float
    requests: int
    burst: int
    vps: int
    map_stats: Dict[str, int] = field(default_factory=dict)
    accepted: int = 0
    shed: int = 0
    degraded: int = 0
    waves: int = 0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0
    service_qps: float = 0.0

    @property
    def total(self) -> int:
        return self.requests + self.burst

    @property
    def shed_rate(self) -> float:
        return self.shed / self.total if self.total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench": "service",
            "schema": BENCH_SCHEMA,
            "config": {
                "scenario": self.scenario,
                "seed": self.seed,
                "shards": self.shards,
                "max_inflight": self.max_inflight,
                "offered_qps": round(self.offered_qps, 1),
                "requests": self.requests,
                "burst": self.burst,
                "vps": self.vps,
            },
            "map": dict(self.map_stats),
            "metrics": {
                "accepted": self.accepted,
                "shed": self.shed,
                "degraded": self.degraded,
                "waves": self.waves,
                "shed_rate": round(self.shed_rate, 4),
                "p50_ms": round(self.p50_ms, 3),
                "p99_ms": round(self.p99_ms, 3),
                "max_ms": round(self.max_ms, 3),
                "service_qps": round(self.service_qps, 1),
            },
        }

    def write_json(self, target: Union[str, IO[str]]) -> None:
        payload = json.dumps(self.to_dict(), indent=1)
        if hasattr(target, "write"):
            target.write(payload)
            return
        with open(target, "w") as handle:
            handle.write(payload)

    def text(self) -> str:
        return "\n".join(
            [
                "service benchmark: %s, %d shards, %d+%d requests "
                "(open-loop %.0f q/s + burst), max_inflight=%d"
                % (self.scenario, self.shards, self.requests, self.burst,
                   self.offered_qps, self.max_inflight),
                "  map: %s"
                % ", ".join("%s=%d" % (k, v)
                            for k, v in sorted(self.map_stats.items())),
                "  accepted %d, shed %d (%.1f%%), degraded %d, %d waves"
                % (self.accepted, self.shed, 100 * self.shed_rate,
                   self.degraded, self.waves),
                "  latency p50 %8.3f ms   p99 %8.3f ms   max %8.3f ms"
                % (self.p50_ms, self.p99_ms, self.max_ms),
                "  throughput %11.0f q/s (accepted requests)"
                % self.service_qps,
            ]
        )


def bench_service(
    server,
    workload: List[Tuple[str, int]],
    arrivals: List[float],
    tick_every: int = 0,
) -> Dict[str, Any]:
    """Open-loop load generation against a sharded server.

    ``arrivals[i]`` is the (simulated) arrival second of request
    ``workload[i]`` — fixed in advance, never slowed by the server,
    which is what makes the loop *open*: an overloaded tier sees the
    queue it earned.  Service time per wave is real wall time
    (:func:`~repro.obs.trace.perf_clock`); a request's latency is its
    wave's completion instant minus its own arrival instant.  Requests
    the server sheds are counted, not timed — rejection is immediate.

    ``tick_every`` > 0 runs a supervision pass (which, with telemetry
    on, harvests shard metrics and spans) every that-many waves — the
    production cadence the obs-tier benchmark charges against its
    overhead budget.  The tick is *inside* the timed region on purpose.
    """
    assert len(arrivals) == len(workload)
    latencies: List[float] = []
    accepted = shed = degraded = waves = 0
    busy_seconds = 0.0
    now = 0.0
    position = 0
    while position < len(workload):
        # The wave: the next pending request plus everything that
        # arrived while the server was busy.
        start = max(now, arrivals[position])
        end = position
        while end < len(workload) and arrivals[end] <= start:
            end += 1
        wave = workload[position:end]
        started = perf_clock()
        answers = server.batch(wave)
        if tick_every and (waves + 1) % tick_every == 0:
            server.tick()
        elapsed = perf_clock() - started
        busy_seconds += elapsed
        done = start + elapsed
        for offset, answer in enumerate(answers):
            if answer.note.startswith("shed"):
                shed += 1
                continue
            if answer.degraded:
                degraded += 1
            accepted += 1
            latencies.append(done - arrivals[position + offset])
        waves += 1
        now = done
        position = end
    latencies.sort()
    return {
        "accepted": accepted,
        "shed": shed,
        "degraded": degraded,
        "waves": waves,
        "p50_ms": 1e3 * _percentile(latencies, 0.50),
        "p99_ms": 1e3 * _percentile(latencies, 0.99),
        "max_ms": 1e3 * (latencies[-1] if latencies else 0.0),
        "service_qps": _qps(accepted, busy_seconds),
    }


def run_service_benchmark(
    scenario_name: str = "mini",
    seed: Optional[int] = None,
    requests: int = 2000,
    burst: int = 256,
    shards: int = 3,
    max_inflight: int = 64,
    offered_qps: float = 2000.0,
    workdir: Optional[str] = None,
    build: Optional[Callable] = None,
    metrics=None,
    tracer=None,
    tick_every: int = 0,
) -> ServiceBenchSummary:
    """Infer, compile, save the artifact, stand up an in-process
    sharded server, and load it open-loop.

    Two phases in one arrival schedule: ``requests`` arrivals with
    seeded exponential inter-arrival gaps at ``offered_qps`` (the
    nominal regime — latency percentiles come from here and from how
    waves queue behind real service time), then a ``burst`` of
    simultaneous arrivals (the overload regime — with
    ``burst > max_inflight`` the admission controller must shed, so the
    shed-rate figure is exercised deterministically, not by luck of the
    host's speed).
    """
    import os
    import tempfile

    from .. import build_data_bundle
    from ..core.orchestrator import MultiVPOrchestrator
    from ..io import save_border_map
    from .bordermap import compile_border_map
    from .server import make_local_server

    build = build or _default_build
    scenario = build(scenario_name, seed)
    data = build_data_bundle(scenario)
    run = MultiVPOrchestrator(scenario, data=data).run()
    bmap = compile_border_map(
        run.results, view=data.view, rels=data.rels, epoch=1,
        source="service-bench %s" % scenario_name,
    )
    total = requests + burst
    workload = make_workload(bmap, data.view, total, seed=seed or 0)
    rng = make_rng(seed or 0, "bench", "arrivals")
    arrivals: List[float] = []
    clock_s = 0.0
    for _ in range(requests):
        clock_s += rng.expovariate(offered_qps)
        arrivals.append(clock_s)
    arrivals.extend([clock_s] * burst)  # the overload burst, one instant

    cleanup = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="bdrmap-bench-")
        workdir = cleanup.name
    try:
        artifact_path = os.path.join(workdir, "map.json")
        save_border_map(bmap, artifact_path)
        server, _ = make_local_server(
            artifact_path, epoch=1, shards=shards,
            cache_size=4 * total + 64, max_inflight=max_inflight,
            metrics=metrics, tracer=tracer,
        )
        try:
            # Untimed warm-up in admission-sized waves (nothing shed, so
            # every key reaches its home shard's cache).
            for start in range(0, total, max_inflight):
                server.batch(workload[start:start + max_inflight])
            measured = bench_service(
                server, workload, arrivals, tick_every=tick_every
            )
        finally:
            server.close()
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return ServiceBenchSummary(
        scenario=scenario_name,
        seed=seed,
        shards=shards,
        max_inflight=max_inflight,
        offered_qps=offered_qps,
        requests=requests,
        burst=burst,
        vps=len(run.results),
        map_stats=bmap.stats(),
        **measured,
    )


def make_duplicate_workload(
    bmap, view, count: int, seed: int = 0, dup_factor: int = 8
) -> List[Tuple[str, int]]:
    """A duplicate-heavy serving workload: ``count`` requests drawn
    with heavy-hitter skew from a distinct pool of roughly
    ``count / dup_factor`` queries.

    Border queries repeat heavily in deployment (many clients asking
    about the same interconnection), so the pool is sampled with a
    Zipf-like weight (rank ``r`` drawn proportionally to ``1/(r+1)``)
    — a few keys dominate, the tail is long, and the draw is fully
    deterministic under ``seed``.
    """
    if dup_factor < 1:
        raise ValueError("dup_factor must be >= 1")
    distinct = max(1, count // dup_factor)
    pool = make_workload(bmap, view, distinct, seed=seed)
    rng = make_rng((seed << 8) ^ 0xD0B1, "bench", "duplicates")
    weights = [1.0 / (rank + 1) for rank in range(len(pool))]
    total = sum(weights)
    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    workload: List[Tuple[str, int]] = []
    for _ in range(count):
        roll = rng.random()
        low, high = 0, len(cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < roll:
                low = mid + 1
            else:
                high = mid
        workload.append(pool[low])
    return workload


def _open_loop_accounting(answers, arrivals, position, done, state) -> None:
    """Fold one wave's answers into the shared open-loop tallies."""
    for offset, answer in enumerate(answers):
        if answer.note.startswith("shed"):
            state["shed"] += 1
            continue
        if answer.degraded:
            state["degraded"] += 1
        state["accepted"] += 1
        state["latencies"].append(done - arrivals[position + offset])


def bench_async_frontend(
    frontend,
    workload: List[Tuple[str, int]],
    arrivals: List[float],
) -> Dict[str, Any]:
    """The async twin of :func:`bench_service`: the same open-loop wave
    formation, each wave answered by ``await frontend.batch(wave)`` on
    one event loop, so coalescing and shard pipelining are measured
    under exactly the load shape the synchronous path saw."""
    import asyncio

    assert len(arrivals) == len(workload)
    state: Dict[str, Any] = {
        "accepted": 0, "shed": 0, "degraded": 0, "latencies": [],
    }

    async def drive() -> Tuple[int, float]:
        waves = 0
        busy_seconds = 0.0
        now = 0.0
        position = 0
        while position < len(workload):
            start = max(now, arrivals[position])
            end = position
            while end < len(workload) and arrivals[end] <= start:
                end += 1
            wave = workload[position:end]
            started = perf_clock()
            answers = await frontend.batch(wave)
            elapsed = perf_clock() - started
            busy_seconds += elapsed
            done = start + elapsed
            _open_loop_accounting(answers, arrivals, position, done, state)
            waves += 1
            now = done
            position = end
        return waves, busy_seconds

    waves, busy_seconds = asyncio.run(drive())
    latencies = sorted(state["latencies"])
    return {
        "accepted": state["accepted"],
        "shed": state["shed"],
        "degraded": state["degraded"],
        "waves": waves,
        "p50_ms": 1e3 * _percentile(latencies, 0.50),
        "p99_ms": 1e3 * _percentile(latencies, 0.99),
        "max_ms": 1e3 * (latencies[-1] if latencies else 0.0),
        "service_qps": _qps(state["accepted"], busy_seconds),
    }


@dataclass
class AsyncBenchSummary:
    """The coalescing-front-end outcome (``BENCH_async.json``): the
    async front end raced against the synchronous ``batch()`` path on
    the same duplicate-heavy open-loop workload, answers asserted
    byte-identical before any timing."""

    scenario: str
    seed: Optional[int]
    shards: int
    requests: int
    dup_factor: int
    distinct: int
    wave_size: int
    max_waves_per_shard: int
    offered_qps: float
    vps: int
    map_stats: Dict[str, int] = field(default_factory=dict)
    sync_qps: float = 0.0
    async_qps: float = 0.0
    sync_p50_ms: float = 0.0
    sync_p99_ms: float = 0.0
    async_p50_ms: float = 0.0
    async_p99_ms: float = 0.0
    sync_waves: int = 0
    async_waves: int = 0
    coalesce_rate: float = 0.0
    answers_identical: bool = True

    @property
    def speedup(self) -> float:
        return self.async_qps / self.sync_qps if self.sync_qps else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench": "async",
            "schema": BENCH_SCHEMA,
            "config": {
                "scenario": self.scenario,
                "seed": self.seed,
                "shards": self.shards,
                "requests": self.requests,
                "dup_factor": self.dup_factor,
                "distinct": self.distinct,
                "wave_size": self.wave_size,
                "max_waves_per_shard": self.max_waves_per_shard,
                "offered_qps": round(self.offered_qps, 1),
                "vps": self.vps,
            },
            "map": dict(self.map_stats),
            "metrics": {
                "sync_qps": round(self.sync_qps, 1),
                "async_qps": round(self.async_qps, 1),
                "speedup": round(self.speedup, 2),
                "sync_p50_ms": round(self.sync_p50_ms, 3),
                "sync_p99_ms": round(self.sync_p99_ms, 3),
                "async_p50_ms": round(self.async_p50_ms, 3),
                "async_p99_ms": round(self.async_p99_ms, 3),
                "sync_waves": self.sync_waves,
                "async_waves": self.async_waves,
                "coalesce_rate": round(self.coalesce_rate, 4),
                "answers_identical": self.answers_identical,
            },
        }

    def write_json(self, target: Union[str, IO[str]]) -> None:
        payload = json.dumps(self.to_dict(), indent=1)
        if hasattr(target, "write"):
            target.write(payload)
            return
        with open(target, "w") as handle:
            handle.write(payload)

    def text(self) -> str:
        return "\n".join(
            [
                "async front-end benchmark: %s, %d shards, %d requests "
                "(~%dx duplicated, %d distinct), open-loop %.0f q/s"
                % (self.scenario, self.shards, self.requests,
                   self.dup_factor, self.distinct, self.offered_qps),
                "  map: %s"
                % ", ".join("%s=%d" % (k, v)
                            for k, v in sorted(self.map_stats.items())),
                "  sync  batch %10.0f q/s  p50 %8.3f ms  p99 %8.3f ms "
                "(%d waves)"
                % (self.sync_qps, self.sync_p50_ms, self.sync_p99_ms,
                   self.sync_waves),
                "  async coalesced %6.0f q/s  p50 %8.3f ms  p99 %8.3f ms "
                "(%d waves, %.1f%% coalesced)"
                % (self.async_qps, self.async_p50_ms, self.async_p99_ms,
                   self.async_waves, 100 * self.coalesce_rate),
                "  speedup %.2fx (answers %s)"
                % (self.speedup,
                   "byte-identical" if self.answers_identical
                   else "DIVERGED"),
            ]
        )


def run_async_benchmark(
    scenario_name: str = "mini",
    seed: Optional[int] = None,
    requests: int = 4000,
    dup_factor: int = 8,
    shards: int = 3,
    wave_size: int = 64,
    max_waves_per_shard: int = 8,
    offered_qps: float = 200000.0,
    repeats: int = 3,
    workdir: Optional[str] = None,
    build: Optional[Callable] = None,
) -> AsyncBenchSummary:
    """Race the async coalescing front end against the synchronous
    ``ShardedBorderServer.batch`` path.

    One in-process sharded server serves both paths (so worker caches
    are equally warm on both sides), loaded with the same open-loop
    arrival schedule over the same duplicate-heavy workload.  The
    offered rate must saturate the server: coalescing only merges
    duplicates that coexist in a wave, so an under-offered schedule
    (waves of ~1 request) measures pure front-end overhead instead.
    Before any timing, both paths answer the full workload and the
    answer sequences are asserted equal — the race refuses to time
    paths that disagree.  Timed passes alternate sync/async, each side
    keeping its best, so transient host noise cannot land on one side
    only.
    """
    import os
    import tempfile

    from .. import build_data_bundle
    from ..core.orchestrator import MultiVPOrchestrator
    from ..io import save_border_map
    from .bordermap import compile_border_map
    from .frontend import make_async_frontend
    from .server import make_local_server

    build = build or _default_build
    scenario = build(scenario_name, seed)
    data = build_data_bundle(scenario)
    run = MultiVPOrchestrator(scenario, data=data).run()
    bmap = compile_border_map(
        run.results, view=data.view, rels=data.rels, epoch=1,
        source="async-bench %s" % scenario_name,
    )
    workload = make_duplicate_workload(
        bmap, data.view, requests, seed=seed or 0, dup_factor=dup_factor
    )
    distinct = len(set(workload))
    rng = make_rng(seed or 0, "bench", "async-arrivals")
    arrivals: List[float] = []
    clock_s = 0.0
    for _ in range(requests):
        clock_s += rng.expovariate(offered_qps)
        arrivals.append(clock_s)

    cleanup = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="bdrmap-bench-")
        workdir = cleanup.name
    try:
        artifact_path = os.path.join(workdir, "map.json")
        save_border_map(bmap, artifact_path)
        # max_inflight admits the largest possible wave on the sync
        # path: the race measures dispatch, not admission control.
        server, _ = make_local_server(
            artifact_path, epoch=1, shards=shards,
            cache_size=4 * requests + 64, max_inflight=requests,
        )
        frontend = make_async_frontend(
            server, wave_size=wave_size,
            max_waves_per_shard=max_waves_per_shard,
        )
        try:
            # Byte-identity before timing (doubles as cache warm-up).
            sync_answers = server.batch(workload)
            async_answers = frontend.batch_sync(workload)
            if sync_answers != async_answers:
                raise AssertionError(
                    "sync and async answer sequences diverged; "
                    "refusing to time paths that disagree"
                )
            sync_best: Optional[Dict[str, Any]] = None
            async_best: Optional[Dict[str, Any]] = None
            for _ in range(max(1, repeats)):
                measured = bench_service(server, workload, arrivals)
                if (sync_best is None
                        or measured["service_qps"]
                        > sync_best["service_qps"]):
                    sync_best = measured
                measured = bench_async_frontend(
                    frontend, workload, arrivals
                )
                if (async_best is None
                        or measured["service_qps"]
                        > async_best["service_qps"]):
                    async_best = measured
            coalesce_rate = frontend.coalesce_rate
        finally:
            frontend.close()
            server.close()
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return AsyncBenchSummary(
        scenario=scenario_name,
        seed=seed,
        shards=shards,
        requests=requests,
        dup_factor=dup_factor,
        distinct=distinct,
        wave_size=wave_size,
        max_waves_per_shard=max_waves_per_shard,
        offered_qps=offered_qps,
        vps=len(run.results),
        map_stats=bmap.stats(),
        sync_qps=sync_best["service_qps"],
        async_qps=async_best["service_qps"],
        sync_p50_ms=sync_best["p50_ms"],
        sync_p99_ms=sync_best["p99_ms"],
        async_p50_ms=async_best["p50_ms"],
        async_p99_ms=async_best["p99_ms"],
        sync_waves=sync_best["waves"],
        async_waves=async_best["waves"],
        coalesce_rate=coalesce_rate,
        answers_identical=True,
    )


def run_serving_benchmark(
    scenario_name: str = "mini",
    seed: Optional[int] = None,
    queries: int = 2000,
    repeats: int = 5,
    batch_size: int = 64,
    build: Optional[Callable] = None,
    metrics=None,
    tracer=None,
) -> ServingBenchSummary:
    """Infer on ``scenario_name``, compile a BorderMap, and measure the
    serving paths end to end."""
    from .. import build_data_bundle
    from ..core.orchestrator import MultiVPOrchestrator
    from ..obs.trace import NULL_TRACER
    from .bordermap import compile_border_map

    if tracer is None:
        tracer = NULL_TRACER
    build = build or _default_build
    scenario = build(scenario_name, seed)
    data = build_data_bundle(scenario)
    with tracer.span("bench.infer", scenario=scenario_name):
        run = MultiVPOrchestrator(
            scenario, data=data, metrics=metrics, tracer=tracer
        ).run()
    with tracer.span("bench.compile"):
        bmap = compile_border_map(
            run.results, view=data.view, rels=data.rels, epoch=1,
            source="serve-bench %s" % scenario_name,
        )
    workload = make_workload(bmap, data.view, queries, seed=seed or 0)
    measured = bench_paths(
        run.results, bmap, data.view, workload,
        repeats=repeats, batch_size=batch_size,
        metrics=metrics, tracer=tracer,
    )
    return ServingBenchSummary(
        scenario=scenario_name,
        seed=seed,
        queries=len(workload),
        repeats=repeats,
        batch_size=batch_size,
        vps=len(run.results),
        map_stats=bmap.stats(),
        **measured,
    )
