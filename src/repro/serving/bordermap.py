"""The compiled BorderMap artifact — bdrmap's output as a served product.

A bdrmap run answers "where are my network's borders?" once; the deployed
system (§4, §6) must answer it *per query*: which AS owns this interface,
where is the border on the path to this destination, who is the far-side
neighbor.  :func:`compile_border_map` turns one or more per-VP
:class:`~repro.core.report.BdrmapResult`\\ s (plus, optionally, the BGP view
and relationship inferences they were computed from) into an immutable,
versioned :class:`BorderMap`:

* an interned AS table and a global router table (per-VP router ids are
  run-local; the compiler assigns stable global indices),
* an exact interface→router→owner map over every observed alias,
* a longest-prefix-match index over the announced prefixes (reusing
  :class:`repro.trie.PrefixTrie`, the same structure the inference hot
  path uses) for addresses never seen in a trace,
* border-link adjacency with the far-side neighbor AS, the business
  relationship, and the producing heuristic's validated confidence.

The artifact is deliberately *dumb*: every index here is derivable from
the tables, so serialization (``repro.io.serialize``) stores only the
tables and rebuilds the indexes on load — compile→save→load→query is
lossless.  Caching, batching, and counters live one layer up in
:class:`~repro.serving.engine.QueryEngine`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..addr import Prefix
from ..core.report import HEURISTIC_CONFIDENCE, _DEFAULT_CONFIDENCE, BdrmapResult
from ..errors import DataError
from ..trie import PrefixTrie

BORDERMAP_FORMAT = "bdrmap-repro-bordermap/1"


@dataclass(frozen=True)
class CompiledRouter:
    """One row of the global router table."""

    index: int                 # global index (stable across save/load)
    vp_name: str               # the VP whose run inferred this router
    rid: int                   # run-local router id in that VP's graph
    addrs: Tuple[int, ...]     # every alias (observed + never-traced)
    owner: Optional[int]       # owning AS, or None when uninferred
    reason: str                # Table 1 heuristic label ("" when uninferred)
    dsts: Tuple[int, ...]      # target ASes this router carried probes toward


@dataclass(frozen=True)
class BorderLink:
    """One inferred interdomain link, with its far-side context."""

    index: int
    vp_name: str
    near_router: int           # CompiledRouter.index on the VP side
    far_router: Optional[int]  # CompiledRouter.index, None for §5.4.8 links
    neighbor_as: int
    relationship: str          # "customer"|"provider"|"peer"|"sibling"|"unknown"
    reason: str
    via_ixp: bool

    @property
    def confidence(self) -> float:
        """Validated accuracy prior of the heuristic that found this link."""
        return HEURISTIC_CONFIDENCE.get(self.reason, _DEFAULT_CONFIDENCE)


@dataclass(frozen=True)
class Ownership:
    """Answer to ``owner_of``: the AS plus how the map knows it."""

    asn: int
    source: str                # "interface" (observed alias) or "bgp" (LPM)
    router: Optional[int]      # CompiledRouter.index when source=="interface"


@dataclass(frozen=True)
class NeighborInfo:
    """Answer to ``neighbors``: one far-side network's attachment."""

    asn: int
    relationship: str
    links: Tuple[BorderLink, ...]
    best_confidence: float


def next_generation() -> int:
    """Mint a fresh process-unique generation token.

    Draws from the same counter every :class:`BorderMap` (and compiled
    map) uses, so a token minted here — e.g. the serving tier's two-phase
    swap token — can never collide with any map's generation in this
    process.
    """
    return next(BorderMap._generations)


class BorderMap:
    """Immutable, versioned query artifact compiled from bdrmap results.

    All state is fixed at construction; the derived indexes (interface
    map, LPM trie, per-neighbor and per-destination link adjacency) are
    built once here and never mutated, so a map can be shared across
    threads and hot-swapped under a live service without locking.
    """

    FORMAT = BORDERMAP_FORMAT

    # Process-unique generation tokens.  ``epoch`` is caller-assigned and
    # can collide (two maps compiled with the default epoch 0), so cache
    # keys derived from a map use ``generation`` — never reused within a
    # process — to make answers from different map instances
    # indistinguishable-proof.
    _generations = itertools.count(1)

    def __init__(
        self,
        focal_asn: int,
        vp_ases: Iterable[int],
        routers: Sequence[CompiledRouter],
        links: Sequence[BorderLink],
        prefixes: Sequence[Tuple[Prefix, int]],
        epoch: int = 0,
        source: str = "",
    ) -> None:
        self.focal_asn = focal_asn
        self.vp_ases = frozenset(vp_ases)
        self.routers: Tuple[CompiledRouter, ...] = tuple(routers)
        self.links: Tuple[BorderLink, ...] = tuple(links)
        self.prefixes: Tuple[Tuple[Prefix, int], ...] = tuple(prefixes)
        self.epoch = epoch
        self.source = source
        self.generation = next(BorderMap._generations)

        for position, router in enumerate(self.routers):
            if router.index != position:
                raise DataError(
                    "router table out of order: index %d at position %d"
                    % (router.index, position)
                )
        for position, link in enumerate(self.links):
            if link.index != position:
                raise DataError(
                    "link table out of order: index %d at position %d"
                    % (link.index, position)
                )

        # -- derived indexes (rebuilt identically on load) -----------------
        # First owned router wins per address (an alias can appear in
        # several VPs' graphs, not all of which inferred an owner).
        iface: Dict[int, int] = {}
        for router in self.routers:
            for addr in router.addrs:
                existing = iface.get(addr)
                if existing is None or (
                    self.routers[existing].owner is None
                    and router.owner is not None
                ):
                    iface[addr] = router.index
        self._iface: Mapping[int, int] = MappingProxyType(iface)

        trie: PrefixTrie = PrefixTrie()
        for prefix, origin in self.prefixes:
            trie.insert(prefix, origin)
        self._trie = trie

        by_neighbor: Dict[int, List[int]] = {}
        for link in self.links:
            by_neighbor.setdefault(link.neighbor_as, []).append(link.index)
        self._by_neighbor: Mapping[int, Tuple[int, ...]] = MappingProxyType(
            {asn: tuple(ids) for asn, ids in by_neighbor.items()}
        )

        # Which border links carried probes toward each destination AS —
        # the observed crossing point, not a guess from the AS graph.
        toward: Dict[int, List[int]] = {}
        for link in self.links:
            near = self.routers[link.near_router]
            for dst_as in near.dsts:
                if dst_as not in self.vp_ases:
                    toward.setdefault(dst_as, []).append(link.index)
        self._toward: Mapping[int, Tuple[int, ...]] = MappingProxyType(
            {asn: tuple(ids) for asn, ids in toward.items()}
        )

        # The interning universe is an O(entire-map) scan; the map is
        # immutable, so compute it once here instead of on every
        # ``as_table`` access (stats() and the serializer both hit it).
        ases = set(self.vp_ases)
        ases.add(self.focal_asn)
        for router in self.routers:
            if router.owner is not None:
                ases.add(router.owner)
            ases.update(router.dsts)
        for link in self.links:
            ases.add(link.neighbor_as)
        for _, origin in self.prefixes:
            ases.add(origin)
        self._as_table: Tuple[int, ...] = tuple(sorted(ases))

    # -- interned views ----------------------------------------------------

    @property
    def as_table(self) -> Tuple[int, ...]:
        """Every AS the map mentions, sorted — the interning universe the
        serializer references by index."""
        return self._as_table

    def interface_count(self) -> int:
        return len(self._iface)

    def stats(self) -> Dict[str, int]:
        return {
            "routers": len(self.routers),
            "links": len(self.links),
            "interfaces": len(self._iface),
            "prefixes": len(self.prefixes),
            "neighbors": len(self._by_neighbor),
            "ases": len(self.as_table),
        }

    # -- queries (uncached; QueryEngine wraps these) ------------------------

    def owner_of(self, addr: int) -> Optional[Ownership]:
        """Who owns ``addr``: observed interface evidence first, then the
        longest matching announced prefix, else None (unrouted)."""
        router_index = self._iface.get(addr)
        if router_index is not None:
            owner = self.routers[router_index].owner
            if owner is not None:
                return Ownership(asn=owner, source="interface",
                                 router=router_index)
        origin = self._trie.lookup_value(addr)
        if origin is not None:
            return Ownership(asn=origin, source="bgp", router=None)
        return None

    def owner_of_batch(
        self, addrs: Sequence[int]
    ) -> List[Optional[Ownership]]:
        """Batched :meth:`owner_of`: interface map first, then one
        :meth:`~repro.trie.PrefixTrie.lookup_value_batch` walk over every
        address that needs the LPM fallback."""
        iface = self._iface
        routers = self.routers
        answers: List[Optional[Ownership]] = [None] * len(addrs)
        fallback_addrs: List[int] = []
        fallback_positions: List[int] = []
        for position, addr in enumerate(addrs):
            router_index = iface.get(addr)
            if router_index is not None:
                owner = routers[router_index].owner
                if owner is not None:
                    answers[position] = Ownership(
                        asn=owner, source="interface", router=router_index
                    )
                    continue
            fallback_addrs.append(addr)
            fallback_positions.append(position)
        if not fallback_addrs:  # every address answered from the
            return answers      # interface map: skip the trie walk
        origins = self._trie.lookup_value_batch(fallback_addrs)
        for position, origin in zip(fallback_positions, origins):
            if origin is not None:
                answers[position] = Ownership(
                    asn=origin, source="bgp", router=None
                )
        return answers

    def dst_as(self, addr: int) -> Optional[int]:
        """The destination AS of ``addr`` for border lookup: BGP origin of
        the longest matching prefix, falling back to interface evidence."""
        origin = self._trie.lookup_value(addr)
        if origin is not None:
            return origin
        router_index = self._iface.get(addr)
        if router_index is not None:
            return self.routers[router_index].owner
        return None

    def border_for(self, addr: int) -> Tuple[BorderLink, ...]:
        """The border links traffic toward ``addr`` was observed to cross.

        Prefers links whose near router actually carried probes toward the
        destination AS; falls back to any link facing that AS directly.
        Empty when the destination is unrouted or inside the VP network.
        """
        asn = self.dst_as(addr)
        if asn is None or asn in self.vp_ases:
            return ()
        ids = self._toward.get(asn) or self._by_neighbor.get(asn) or ()
        return tuple(self.links[i] for i in ids)

    def neighbor_ases(self) -> Tuple[int, ...]:
        return tuple(sorted(self._by_neighbor))

    def neighbors(self, asn: int) -> Optional[NeighborInfo]:
        """The attachment summary for far-side network ``asn``.

        A neighbor's links can disagree on the relationship (hybrid
        interconnections: e.g. customer on one link, peer on another);
        the summary reports the relationship of the highest-confidence
        link rather than whichever happened to sort first.
        """
        ids = self._by_neighbor.get(asn)
        if not ids:
            return None
        links = tuple(self.links[i] for i in ids)
        best = best_relationship(links)
        return NeighborInfo(
            asn=asn,
            relationship=best.relationship,
            links=links,
            best_confidence=best.confidence,
        )


def best_relationship(links: Sequence[BorderLink]) -> BorderLink:
    """The link whose producing heuristic carries the highest validated
    confidence — the map's best evidence for a neighbor's relationship.
    Ties keep the earliest link (stable, since the link table order is
    deterministic)."""
    return max(links, key=lambda link: link.confidence)


def _relationship_label(rels, focal_asn: int, neighbor: int) -> str:
    if rels is None:
        return "unknown"
    relationship = rels.relationship(focal_asn, neighbor)
    return relationship.value if relationship is not None else "unknown"


def compile_border_map(
    results: Sequence[BdrmapResult],
    view=None,
    rels=None,
    epoch: int = 0,
    source: str = "",
) -> BorderMap:
    """Compile per-VP results into one :class:`BorderMap`.

    ``view`` (a :class:`~repro.bgp.BGPView`) supplies the announced
    prefixes for the LPM fallback index; ``rels`` (an
    :class:`~repro.asgraph.InferredRelationships`) labels each link with
    the neighbor's business relationship.  Both are optional — without
    them the map answers from interface evidence alone, with
    ``relationship == "unknown"``.

    MOAS prefixes are resolved to the lowest origin AS (deterministic).
    """
    if not results:
        raise DataError("cannot compile a BorderMap from zero results")
    focal_asn = results[0].focal_asn
    vp_ases = set()
    for result in results:
        if result.focal_asn != focal_asn:
            raise DataError(
                "results disagree on the focal AS (%d vs %d)"
                % (focal_asn, result.focal_asn)
            )
        vp_ases.update(result.vp_ases)

    routers: List[CompiledRouter] = []
    links: List[BorderLink] = []
    for result in results:
        local_index: Dict[int, int] = {}
        for rid in sorted(result.graph.routers):
            router = result.graph.routers[rid]
            compiled = CompiledRouter(
                index=len(routers),
                vp_name=result.vp_name,
                rid=rid,
                addrs=tuple(sorted(router.all_addrs())),
                owner=router.owner,
                reason=router.reason,
                dsts=tuple(sorted(router.dsts)),
            )
            local_index[rid] = compiled.index
            routers.append(compiled)
        ordered = sorted(
            result.links,
            key=lambda l: (l.neighbor_as, l.near_rid,
                           l.far_rid if l.far_rid is not None else -1,
                           l.reason),
        )
        for link in ordered:
            links.append(
                BorderLink(
                    index=len(links),
                    vp_name=result.vp_name,
                    near_router=local_index[link.near_rid],
                    far_router=(
                        local_index.get(link.far_rid)
                        if link.far_rid is not None
                        else None
                    ),
                    neighbor_as=link.neighbor_as,
                    relationship=_relationship_label(
                        rels, focal_asn, link.neighbor_as
                    ),
                    reason=link.reason,
                    via_ixp=link.via_ixp,
                )
            )

    prefixes: List[Tuple[Prefix, int]] = []
    if view is not None:
        for prefix in view.prefixes():
            origins = view.origins(prefix)
            if origins:
                prefixes.append((prefix, min(origins)))

    return BorderMap(
        focal_asn=focal_asn,
        vp_ases=vp_ases,
        routers=routers,
        links=links,
        prefixes=prefixes,
        epoch=epoch,
        source=source,
    )
