"""The backend protocol both border-map data planes satisfy.

:class:`~repro.serving.bordermap.BorderMap` (dict-and-dataclass object
graph, rebuilt indexes) and
:class:`~repro.serving.compiled.CompiledBorderMap` (flat array tables,
mmap-backed) answer the same queries with byte-identical values; the
engine, service, CLI, and benchmarks program against this protocol so
either backend drops in unchanged.
"""

from __future__ import annotations

from typing import (
    Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable,
)

from .bordermap import BorderLink, NeighborInfo, Ownership


@runtime_checkable
class BorderMapBackend(Protocol):
    """What a served border map must provide.

    ``generation`` is the process-unique token engine caches key on;
    ``epoch`` is the caller-assigned artifact version answers are tagged
    with.  Both backends draw generations from one shared counter, so a
    hot swap between backends is as safe as one within a backend.
    """

    focal_asn: int
    epoch: int
    generation: int
    source: str
    vp_ases: frozenset

    def owner_of(self, addr: int) -> Optional[Ownership]: ...

    def owner_of_batch(
        self, addrs: Sequence[int]
    ) -> List[Optional[Ownership]]: ...

    def dst_as(self, addr: int) -> Optional[int]: ...

    def border_for(self, addr: int) -> Tuple[BorderLink, ...]: ...

    def neighbor_ases(self) -> Tuple[int, ...]: ...

    def neighbors(self, asn: int) -> Optional[NeighborInfo]: ...

    def interface_count(self) -> int: ...

    def stats(self) -> Dict[str, int]: ...


def close_backend(backend: object) -> None:
    """Release a backend's resources, if it holds any.

    The dict backend owns nothing beyond Python objects; the compiled
    backend may hold an mmap and its file handle.  Shard workers call
    this on every retired map (epoch swap, shutdown) so a long-lived
    serving process can't leak mappings across hundreds of swaps.
    """
    close = getattr(backend, "close", None)
    if callable(close):
        close()
