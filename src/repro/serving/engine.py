"""The query engine: cached, counted lookups over one border map.

The engine is the hot path of the serving subsystem.  It wraps one
immutable map backend — the dict
:class:`~repro.serving.bordermap.BorderMap` or the flat
:class:`~repro.serving.compiled.CompiledBorderMap`, anything satisfying
:class:`~repro.serving.backend.BorderMapBackend` — with an LRU result
cache (border queries for popular destinations repeat heavily in any real
workload) and per-operation hit/miss/latency counters, and exposes
batched variants that dedupe keys and amortize clock reads — the shape a
front end feeding it micro-batches wants.

The engine never mutates its map, so many engines may share one map and
a service may drop an engine on the floor mid-request during a hot swap:
in-flight queries finish against the map they started on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.trace import perf_clock
from .backend import BorderMapBackend
from .bordermap import BorderLink, NeighborInfo, Ownership


class LRUCache:
    """A plain ordered-dict LRU: small, dependency-free, O(1) ops."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._store: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """Return ``(found, value)``; a hit refreshes recency."""
        try:
            value = self._store[key]
        except KeyError:
            self.misses += 1
            return False, None
        self._store.move_to_end(key)
        self.hits += 1
        return True, value

    def put(self, key: Hashable, value: Any) -> None:
        store = self._store
        if key in store:
            store.move_to_end(key)
        store[key] = value
        if len(store) > self.capacity:
            store.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class OpStats:
    """Per-operation accounting: a view over registry slots
    (``<prefix>calls`` / ``hits`` / ``misses`` counters and a
    ``<prefix>seconds`` timer).  The field API is unchanged —
    ``stats.calls += 1`` still works."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    @property
    def calls(self) -> int:
        return self._registry.counter(self._prefix + "calls")

    @calls.setter
    def calls(self, value: int) -> None:
        self._registry.set_counter(self._prefix + "calls", value)

    @property
    def hits(self) -> int:
        return self._registry.counter(self._prefix + "hits")

    @hits.setter
    def hits(self, value: int) -> None:
        self._registry.set_counter(self._prefix + "hits", value)

    @property
    def misses(self) -> int:
        return self._registry.counter(self._prefix + "misses")

    @misses.setter
    def misses(self, value: int) -> None:
        self._registry.set_counter(self._prefix + "misses", value)

    @property
    def seconds(self) -> float:
        return self._registry.timer(self._prefix + "seconds")

    @seconds.setter
    def seconds(self, value: float) -> None:
        self._registry.set_timer(self._prefix + "seconds", value)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class EngineStats:
    """Counters the service and benchmarks read.

    Counts live in a :class:`~repro.obs.metrics.MetricsRegistry` under
    ``serving.<op>.*`` — a private one by default, or the run's shared
    registry when one is passed — so ``repro metrics`` sees the same
    hit/miss/latency numbers the benchmark report quotes.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 prefix: str = "serving.") -> None:
        if registry is None or not registry.enabled:
            registry = MetricsRegistry()
        self._registry = registry
        self._prefix = prefix
        self.ops: Dict[str, OpStats] = {}

    def op(self, name: str) -> OpStats:
        stats = self.ops.get(name)
        if stats is None:
            stats = self.ops[name] = OpStats(
                self._registry, "%s%s." % (self._prefix, name)
            )
        return stats

    @property
    def calls(self) -> int:
        return sum(s.calls for s in self.ops.values())

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.ops.values())

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self.ops.values())

    @property
    def seconds(self) -> float:
        return sum(s.seconds for s in self.ops.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def summary(self) -> str:
        lines = [
            "engine: %d calls, %.1f%% cache hits, %.3f ms total"
            % (self.calls, 100 * self.hit_rate, 1e3 * self.seconds)
        ]
        for name in sorted(self.ops):
            stats = self.ops[name]
            lines.append(
                "  %-10s calls=%-7d hits=%-7d misses=%-7d %.3f ms"
                % (name, stats.calls, stats.hits, stats.misses,
                   1e3 * stats.seconds)
            )
        return "\n".join(lines)


class QueryEngine:
    """Cached query front end over one immutable border map (either
    backend: dict or compiled)."""

    def __init__(self, border_map: BorderMapBackend, cache_size: int = 4096,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.map = border_map
        self.cache = LRUCache(cache_size)
        self.metrics = metrics
        self.stats = EngineStats(metrics)
        # Cache keys carry the map's process-unique generation token, so
        # an entry can never answer for a different map instance — even
        # if an engine (or its cache) outlives a hot swap, or two maps
        # share an epoch number.  ``epoch`` alone is caller-assigned and
        # collides across independently compiled maps.
        self._gen = getattr(border_map, "generation", id(border_map))

    @property
    def epoch(self) -> int:
        return self.map.epoch

    @property
    def generation(self) -> int:
        """The served map's process-unique generation token (the value
        cache keys carry, and the token the sharded tier's two-phase
        swap compares across replicas)."""
        return self._gen

    # -- single-key queries -------------------------------------------------

    def _cached(self, op: str, key: Hashable,
                compute: Callable[[Any], Any]) -> Any:
        started = perf_clock()
        stats = self.stats.op(op)
        stats.calls += 1
        found, value = self.cache.get((self._gen, op, key))
        if found:
            stats.hits += 1
        else:
            stats.misses += 1
            value = compute(key)
            self.cache.put((self._gen, op, key), value)
        stats.seconds += perf_clock() - started
        return value

    def owner_of(self, addr: int) -> Optional[Ownership]:
        return self._cached("owner", addr, self.map.owner_of)

    def border_for(self, addr: int) -> Tuple[BorderLink, ...]:
        return self._cached("border", addr, self.map.border_for)

    def neighbors(self, asn: int) -> Optional[NeighborInfo]:
        return self._cached("neighbors", asn, self.map.neighbors)

    # -- batched variants ---------------------------------------------------

    def _batched(
        self,
        op: str,
        keys: Sequence[Hashable],
        compute: Callable[[Any], Any],
        compute_batch: Optional[Callable[[Sequence[Any]], List[Any]]] = None,
    ) -> List[Any]:
        """One timed pass over a batch.

        Duplicate keys inside the batch cost one computation, the clock
        is read twice per batch instead of twice per key, and — when the
        map has a bulk path (``compute_batch``) — every cache miss is
        resolved in a single call.
        """
        started = perf_clock()
        stats = self.stats.op(op)
        stats.calls += len(keys)
        cache = self.cache
        answers: List[Any] = [None] * len(keys)
        miss_keys: List[Hashable] = []
        miss_positions: Dict[Hashable, List[int]] = {}
        for position, key in enumerate(keys):
            positions = miss_positions.get(key)
            if positions is not None:  # duplicate of an earlier miss
                stats.hits += 1
                positions.append(position)
                continue
            found, value = cache.get((self._gen, op, key))
            if found:
                stats.hits += 1
                answers[position] = value
            else:
                stats.misses += 1
                miss_keys.append(key)
                miss_positions[key] = [position]
        if miss_keys:
            if compute_batch is not None:
                values = compute_batch(miss_keys)
            else:
                values = [compute(key) for key in miss_keys]
            for key, value in zip(miss_keys, values):
                cache.put((self._gen, op, key), value)
                for position in miss_positions[key]:
                    answers[position] = value
        stats.seconds += perf_clock() - started
        return answers

    def owner_of_batch(self, addrs: Sequence[int]) -> List[Optional[Ownership]]:
        return self._batched(
            "owner", addrs, self.map.owner_of, self.map.owner_of_batch
        )

    def border_for_batch(
        self, addrs: Sequence[int]
    ) -> List[Tuple[BorderLink, ...]]:
        return self._batched("border", addrs, self.map.border_for)

    def neighbors_batch(
        self, asns: Sequence[int]
    ) -> List[Optional[NeighborInfo]]:
        return self._batched("neighbors", asns, self.map.neighbors)
