"""The naive baseline: answer queries from raw results, per query.

This is what downstream consumers did before the BorderMap existed —
rescan every :class:`~repro.core.report.BdrmapResult` (and the BGP view)
on *every* lookup.  It exists to (a) anchor the serving benchmark's
speedup claim against a real alternative and (b) cross-check the
compiled map's answers in tests: for any address, compiled and naive
must agree.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.report import BdrmapResult, InferredLink
from .bordermap import Ownership


def naive_owner_of(
    results: Sequence[BdrmapResult], addr: int, view=None
) -> Optional[Ownership]:
    """Scan every router of every result for ``addr``; fall back to the
    BGP view's longest-prefix match.  O(routers) per query."""
    for result in results:
        for rid in sorted(result.graph.routers):
            router = result.graph.routers[rid]
            if addr in router.addrs or addr in router.extra_addrs:
                if router.owner is not None:
                    return Ownership(asn=router.owner, source="interface",
                                     router=None)
    if view is not None:
        origins = view.origins_of_addr(addr)
        if origins:
            return Ownership(asn=min(origins), source="bgp", router=None)
    return None


def naive_border_for(
    results: Sequence[BdrmapResult], addr: int, view=None
) -> List[Tuple[str, InferredLink]]:
    """Recompute the border crossing toward ``addr`` from scratch:
    re-derive the destination AS, then rescan every result's links and
    near routers.  Returns ``(vp_name, link)`` pairs."""
    dst_as: Optional[int] = None
    if view is not None:
        origins = view.origins_of_addr(addr)
        if origins:
            dst_as = min(origins)
    if dst_as is None:
        owner = naive_owner_of(results, addr)
        dst_as = owner.asn if owner is not None else None
    if dst_as is None:
        return []
    for result in results:
        if dst_as in result.vp_ases:
            return []
    toward: List[Tuple[str, InferredLink]] = []
    facing: List[Tuple[str, InferredLink]] = []
    for result in results:
        for link in result.links:
            near = result.graph.routers.get(link.near_rid)
            if near is not None and dst_as in near.dsts:
                toward.append((result.vp_name, link))
            if link.neighbor_as == dst_as:
                facing.append((result.vp_name, link))
    return toward or facing
