"""Shard supervision: heartbeats, circuit breakers, backoff restarts.

A replica process can die at any moment — OOM kill, a poisoned query, a
chaos test's ``kill()``.  The supervisor turns that from an outage into
a bounded degradation:

* a per-shard **circuit breaker** stops the front end from burning its
  deadline budget on a shard that just failed (closed → open on
  ``failure_threshold`` consecutive failures; open → half-open after
  ``reset_timeout_s`` on the supervisor's clock; one probe request
  closes or re-opens it);
* **restart with exponential backoff + full jitter** rebuilds the
  transport from the last *committed* artifact path, so a shard that
  died mid-swap comes back already converged to the committed epoch —
  it can never resurrect a stale one;
* **heartbeats** (the shard protocol's ``ping``) detect silent deaths
  between queries and report each replica's served epoch token, which
  is how the tier notices a replica lagging an epoch swap.

Time here is a caller-supplied clock callable — the chaos tests hand in
a virtual clock, so breaker timeouts and backoff schedules reproduce
exactly under a seed; nothing in this module reads the wall clock.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import DataError, MeasurementError
from ..obs.metrics import MetricsRegistry
from ..rng import make_rng
from .shard import ShardChannel

#: Circuit breaker states, in escalation order.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a clocked half-open probe."""

    def __init__(self, failure_threshold: int = 3,
                 reset_timeout_s: float = 30.0) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.state = CLOSED
        self.failures = 0           # consecutive, resets on success
        self.opened_at = 0.0
        self.trips = 0              # lifetime closed→open transitions

    def allow(self, now: float) -> bool:
        """May a request be sent now?  An expired open breaker moves to
        half-open and admits exactly the probe request."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at >= self.reset_timeout_s:
                self.state = HALF_OPEN
                return True
            return False
        return True  # half-open: the probe is in flight

    def record_success(self) -> None:
        self.state = CLOSED
        self.failures = 0

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.failure_threshold:
            if self.state != OPEN:
                self.trips += 1
            self.state = OPEN
            self.opened_at = now


class RestartPolicy:
    """Exponential backoff with full jitter for shard restarts.

    Delay before restart k (1-based) is a uniform draw from
    ``[0, min(max_backoff_s, base_s * 2**(k-1))]`` — jittered so N
    shards felled by one event don't all reload the artifact in the
    same instant.  Draws come from ``repro.rng`` under ``seed``, so a
    chaos run's restart timeline replays exactly.
    """

    def __init__(self, base_s: float = 0.5, max_backoff_s: float = 30.0,
                 seed: int = 0) -> None:
        self.base_s = base_s
        self.max_backoff_s = max_backoff_s
        self._rng = make_rng(seed, "supervisor", "restart")

    def delay(self, restart_number: int) -> float:
        if self.base_s <= 0:
            return 0.0
        cap = min(self.max_backoff_s,
                  self.base_s * 2 ** (max(restart_number, 1) - 1))
        return self._rng.uniform(0.0, cap)


class SupervisedShard:
    """One shard's supervision record: channel, breaker, restart state."""

    def __init__(self, channel: ShardChannel, breaker: CircuitBreaker) -> None:
        self.channel = channel
        self.breaker = breaker
        self.restarts = 0
        self.restart_due_at: Optional[float] = None  # pending restart time
        self.last_seen_epoch = -1
        self.last_seen_token = -1

    @property
    def shard_id(self) -> int:
        return self.channel.shard_id


class ShardSupervisor:
    """Keeps N shard replicas answering.

    The front end reports request outcomes (:meth:`record_success` /
    :meth:`record_failure`); :meth:`tick` is the supervision pass —
    heartbeat live shards, schedule restarts for dead ones whose
    backoff is due, and restart them from ``committed_path`` (updated by
    the server on every committed epoch swap).  All timing runs on the
    supplied ``clock`` callable.
    """

    def __init__(
        self,
        channels: List[ShardChannel],
        committed_path: str,
        clock: Callable[[], float],
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        restart_policy: Optional[RestartPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if metrics is None or not metrics.enabled:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self.clock = clock
        self.committed_path = committed_path
        # The swap token of the committed epoch (0 until the first
        # committed swap).  Restarted shards are handed this token so a
        # replica reborn from the committed artifact starts converged.
        self.committed_token = 0
        self.restart_policy = restart_policy or RestartPolicy()
        self.shards = [
            SupervisedShard(
                channel,
                CircuitBreaker(failure_threshold=failure_threshold,
                               reset_timeout_s=reset_timeout_s),
            )
            for channel in channels
        ]
        self._gauge_states()

    # -- outcome reporting --------------------------------------------------

    def record_success(self, shard: SupervisedShard) -> None:
        shard.breaker.record_success()
        self._gauge_states()

    def record_failure(self, shard: SupervisedShard) -> None:
        now = self.clock()
        was_open = shard.breaker.state == OPEN
        shard.breaker.record_failure(now)
        if shard.breaker.state == OPEN and not was_open:
            self.metrics.inc("serving.supervisor.breaker_trips")
        self.metrics.inc("serving.supervisor.failures")
        # A dead transport needs a restart; a live one that merely
        # erred does not.
        if not shard.channel.alive and shard.restart_due_at is None:
            self._schedule_restart(shard, now)
        self._gauge_states()

    def _schedule_restart(self, shard: SupervisedShard, now: float) -> None:
        shard.restarts += 1
        delay = self.restart_policy.delay(shard.restarts)
        shard.restart_due_at = now + delay
        self.metrics.inc("serving.supervisor.restarts_scheduled")

    # -- the supervision pass ------------------------------------------------

    def tick(self) -> Dict[int, str]:
        """One supervision pass; returns {shard_id: action} for the log.

        Restarts whose backoff has elapsed run now; live shards get a
        heartbeat ping (through the channel, so injected faults apply
        to heartbeats exactly as to queries), and a failed heartbeat is
        recorded like any failed request.
        """
        actions: Dict[int, str] = {}
        now = self.clock()
        for shard in self.shards:
            if shard.restart_due_at is not None:
                if now < shard.restart_due_at:
                    actions[shard.shard_id] = "backoff"
                    continue
                shard.restart_due_at = None
                try:
                    shard.channel.transport.restart(
                        self.committed_path, self.committed_token
                    )
                except Exception:  # noqa: BLE001 - retried next tick
                    self.metrics.inc("serving.supervisor.restart_failures")
                    self._schedule_restart(shard, now)
                    actions[shard.shard_id] = "restart-failed"
                    continue
                self.metrics.inc("serving.supervisor.restarts")
                shard.breaker.record_success()
                actions[shard.shard_id] = "restarted"
            if not shard.channel.alive:
                if shard.restart_due_at is None:
                    self._schedule_restart(shard, now)
                actions.setdefault(shard.shard_id, "dead")
                continue
            try:
                payload = shard.channel.request("ping")
            except (MeasurementError, DataError):
                self.record_failure(shard)
                actions[shard.shard_id] = "heartbeat-failed"
                continue
            shard.last_seen_epoch = payload.get("epoch", -1)
            shard.last_seen_token = payload.get("token", -1)
            self.record_success(shard)
            actions.setdefault(shard.shard_id, "healthy")
        self._gauge_states()
        return actions

    # -- introspection -------------------------------------------------------

    def healthy(self, shard: SupervisedShard) -> bool:
        return shard.channel.alive and shard.breaker.allow(self.clock())

    def healthy_count(self) -> int:
        return sum(1 for shard in self.shards if self.healthy(shard))

    def converged(self, token: int) -> bool:
        """Has every live shard reported serving swap ``token``?"""
        return all(
            shard.last_seen_token == token
            for shard in self.shards
            if shard.channel.alive
        )

    def _gauge_states(self) -> None:
        for shard in self.shards:
            self.metrics.set_gauge(
                "serving.shard.%d.breaker_open" % shard.shard_id,
                0.0 if shard.breaker.state == CLOSED else 1.0,
            )
            self.metrics.set_gauge(
                "serving.shard.%d.alive" % shard.shard_id,
                1.0 if shard.channel.alive else 0.0,
            )

    def summary(self) -> str:
        lines = ["supervisor: %d/%d shards healthy"
                 % (self.healthy_count(), len(self.shards))]
        for shard in self.shards:
            lines.append(
                "  shard %d: %s breaker=%s restarts=%d epoch=%d token=%d"
                % (
                    shard.shard_id,
                    "alive" if shard.channel.alive else "DOWN",
                    shard.breaker.state,
                    shard.restarts,
                    shard.last_seen_epoch,
                    shard.last_seen_token,
                )
            )
        return "\n".join(lines)
