"""The lookup service: request batching and zero-downtime map swaps.

:class:`BorderMapService` is the front end a deployment would put behind
an RPC endpoint: callers submit ``(op, key)`` requests, the service packs
them into micro-batches against one engine snapshot, and a freshly
compiled :class:`~repro.serving.bordermap.BorderMap` (e.g. after
re-inference on an evolved topology) is swapped in *stale-while-
revalidate*: the old map keeps answering for the entire compile, and the
swap itself is a single reference assignment, so a query observes either
the old map or the new one — never a partially built one.

Every answer is tagged with the epoch of the map that produced it, which
is what the hot-swap tests (and any cache-invalidation layer above) key
on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..errors import DataError
from ..obs.metrics import MetricsRegistry
from .backend import BorderMapBackend
from .engine import QueryEngine

#: Operations the service accepts, mapping to QueryEngine batch methods.
OPS = ("owner", "border", "neighbors")


@dataclass(frozen=True)
class Answer:
    """One answered request, tagged with the producing map's epoch.

    ``degraded`` marks an answer the serving tier could not produce at
    full fidelity — shed under overload, or served from a shard that had
    not yet converged to the committed epoch.  The value may be ``None``
    (shed) or stale-but-honest; ``note`` says which.  Degradation is
    always explicit: the tier never silently drops a request or passes a
    stale answer off as fresh.
    """

    op: str
    key: int
    value: Any
    epoch: int
    degraded: bool = False
    note: str = ""


class BorderMapService:
    """Batching, hot-swappable lookup service over a border map (either
    backend: dict or compiled).

    ``batch_size`` bounds the micro-batch: :meth:`submit` queues a
    request and flushes automatically once the batch fills;
    :meth:`flush` drains a partial batch.  Each batch is answered by one
    engine snapshot, so a swap can never split a batch across maps.
    """

    def __init__(
        self,
        border_map: BorderMapBackend,
        cache_size: int = 4096,
        batch_size: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        # Request counters live in a registry (a private one unless the
        # deployment hands us its shared registry), like the engine's.
        if metrics is None or not metrics.enabled:
            self._metrics = MetricsRegistry()
            self.metrics = metrics
        else:
            self._metrics = metrics
            self.metrics = metrics
        self._engine = QueryEngine(
            border_map, cache_size=cache_size, metrics=self.metrics
        )
        self.cache_size = cache_size
        self.batch_size = batch_size
        self._pending: List[Tuple[str, int]] = []
        self._swap_lock = threading.Lock()

    @property
    def requests(self) -> int:
        return self._metrics.counter("serving.service.requests")

    @requests.setter
    def requests(self, value: int) -> None:
        self._metrics.set_counter("serving.service.requests", value)

    @property
    def batches(self) -> int:
        return self._metrics.counter("serving.service.batches")

    @batches.setter
    def batches(self, value: int) -> None:
        self._metrics.set_counter("serving.service.batches", value)

    @property
    def swaps(self) -> int:
        return self._metrics.counter("serving.service.swaps")

    @swaps.setter
    def swaps(self, value: int) -> None:
        self._metrics.set_counter("serving.service.swaps", value)

    @property
    def refresh_failures(self) -> int:
        return self._metrics.counter("serving.service.refresh_failures")

    @refresh_failures.setter
    def refresh_failures(self, value: int) -> None:
        self._metrics.set_counter(
            "serving.service.refresh_failures", value
        )

    # -- the served map -----------------------------------------------------

    @property
    def engine(self) -> QueryEngine:
        """The current engine snapshot.  Readers grab this once per
        batch; the reference is replaced atomically on swap."""
        return self._engine

    @property
    def map(self) -> BorderMapBackend:
        return self._engine.map

    @property
    def epoch(self) -> int:
        return self._engine.map.epoch

    # -- querying -----------------------------------------------------------

    def query(self, op: str, key: int) -> Answer:
        """Answer one request immediately (no batching)."""
        return self._answer_batch([(op, key)])[0]

    def submit(self, op: str, key: int) -> List[Answer]:
        """Queue a request; returns the flushed answers when this request
        filled the batch, else an empty list."""
        if op not in OPS:
            raise DataError("unknown query op %r (want one of %s)"
                            % (op, "/".join(OPS)))
        self._pending.append((op, key))
        if len(self._pending) >= self.batch_size:
            return self.flush()
        return []

    def flush(self) -> List[Answer]:
        """Answer and clear the pending batch (in submission order)."""
        pending, self._pending = self._pending, []
        return self._answer_batch(pending)

    def batch(self, requests: List[Tuple[str, int]]) -> List[Answer]:
        """Answer a caller-assembled batch against one engine snapshot."""
        return self._answer_batch(list(requests))

    def _answer_batch(self, requests: List[Tuple[str, int]]) -> List[Answer]:
        if not requests:
            return []
        engine = self._engine  # one snapshot for the whole batch
        epoch = engine.map.epoch
        self.requests += len(requests)
        self.batches += 1
        # Group per op to use the engine's batched path, then restore
        # submission order.
        answers: List[Optional[Answer]] = [None] * len(requests)
        for op, method in (
            ("owner", engine.owner_of_batch),
            ("border", engine.border_for_batch),
            ("neighbors", engine.neighbors_batch),
        ):
            positions = [i for i, (o, _) in enumerate(requests) if o == op]
            if not positions:
                continue
            values = method([requests[i][1] for i in positions])
            for position, value in zip(positions, values):
                answers[position] = Answer(
                    op=op, key=requests[position][1],
                    value=value, epoch=epoch,
                )
        for position, (op, key) in enumerate(requests):
            if answers[position] is None:
                raise DataError("unknown query op %r (want one of %s)"
                                % (op, "/".join(OPS)))
        return answers  # type: ignore[return-value]

    # -- hot swap -----------------------------------------------------------

    def swap(self, new_map: BorderMapBackend) -> int:
        """Serve ``new_map`` from now on; returns the retired epoch.

        The new engine (map indexes, empty cache, fresh counters) is
        fully constructed *before* the single reference assignment that
        publishes it, so concurrent readers see the old engine or the
        new one, never an intermediate state.  Engine caches are
        additionally keyed by the map's process-unique generation token,
        so even a cache that outlived a swap could never serve a
        previous epoch's answer.
        """
        new_engine = QueryEngine(
            new_map, cache_size=self.cache_size, metrics=self.metrics
        )
        with self._swap_lock:
            retired = self._engine.map.epoch
            self._engine = new_engine
            self.swaps += 1
        return retired

    def refresh(
        self, compile_fn: Callable[[], BorderMapBackend]
    ) -> BorderMapBackend:
        """Stale-while-revalidate: run ``compile_fn`` (re-inference plus
        :func:`~repro.serving.bordermap.compile_border_map`, typically
        minutes of work) while the current map keeps serving, then swap
        the result in.

        Keep-last-good: a ``compile_fn`` that raises (bad input data, a
        broken artifact, an upstream outage) must never take the service
        down — the failure is counted under
        ``serving.service.refresh_failures`` and the old map keeps
        serving.  The return value says which map is live afterwards.
        """
        try:
            new_map = compile_fn()
        except Exception:
            self.refresh_failures += 1
            return self._engine.map
        self.swap(new_map)
        return new_map

    def summary(self) -> str:
        stats = self._engine.stats
        return (
            "service: epoch %d, %d requests in %d batches, %d swaps\n"
            "  map: %s\n"
            "  cache: %.1f%% hits (%d entries)"
            % (
                self.epoch, self.requests, self.batches, self.swaps,
                ", ".join("%s=%d" % (k, v)
                          for k, v in sorted(self.map.stats().items())),
                100 * stats.hit_rate, len(self._engine.cache),
            )
        )
