"""Prometheus text exposition for a :class:`MetricsRegistry`.

Renders the registry's counters, gauges, timers, and histograms in the
`text-based exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ so a
scraper (or a human with curl) can read the serving tier's harvested
metrics without any new dependency.  Output is deterministic: names are
sanitized and emitted in sorted order, histogram buckets are cumulative
with an explicit ``+Inf`` terminal, and floats use ``repr`` so two
registries with equal slots render byte-identically.
"""

from __future__ import annotations

import re
from typing import List

from .metrics import MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus charset.

    Dots (and anything else outside ``[a-zA-Z0-9_:]``) become
    underscores; a leading digit gets a guard underscore.
    """
    cleaned = _NAME_RE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry,
                      namespace: str = "bdrmap") -> str:
    """The whole registry as one exposition document.

    ``namespace`` prefixes every family, Prometheus-style
    (``bdrmap_serving_server_requests``).  Timers render as
    ``*_seconds_total`` counters; histograms as the standard
    ``_bucket``/``_sum``/``_count`` triple.
    """
    prefix = sanitize_name(namespace) + "_" if namespace else ""
    lines: List[str] = []

    for name in sorted(registry.counters):
        family = prefix + sanitize_name(name)
        lines.append("# TYPE %s counter" % family)
        lines.append(
            "%s %s" % (family, _format_value(registry.counters[name]))
        )
    for name in sorted(registry.gauges):
        family = prefix + sanitize_name(name)
        lines.append("# TYPE %s gauge" % family)
        lines.append(
            "%s %s" % (family, _format_value(registry.gauges[name]))
        )
    for name in sorted(registry.timers):
        family = prefix + sanitize_name(name) + "_seconds_total"
        lines.append("# TYPE %s counter" % family)
        lines.append(
            "%s %s" % (family, _format_value(registry.timers[name]))
        )
    for name in sorted(registry.histograms):
        hist = registry.histograms[name]
        family = prefix + sanitize_name(name)
        lines.append("# TYPE %s histogram" % family)
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            lines.append(
                '%s_bucket{le="%s"} %d'
                % (family, _format_value(float(bound)), cumulative)
            )
        lines.append('%s_bucket{le="+Inf"} %d' % (family, hist.count))
        lines.append("%s_sum %s" % (family, _format_value(hist.sum)))
        lines.append("%s_count %d" % (family, hist.count))

    return "\n".join(lines) + ("\n" if lines else "")
