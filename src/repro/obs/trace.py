"""The span tracer: nested context-manager spans, deterministic ids.

Traces must reproduce: two runs with the same seed write byte-identical
JSONL.  Two rules make that true by construction:

* **Ids** are a 64-bit mix of ``(seed, sequence number)`` — never a
  wall-clock read, never ``id(obj)``.
* **Timestamps** come from the tracer's *clock*, which for simulation
  runs is the network's virtual clock (``lambda: network.now``) and
  otherwise an internal monotonically incrementing tick counter.  The
  wall clock never enters a span.

The one sanctioned wall-clock read point in the repo is
:func:`perf_clock` (the serving layer times real throughput with it);
a lint test forbids ``time.time()`` / ``time.perf_counter()`` calls
anywhere else.
"""

from __future__ import annotations

import json
import time
from typing import (
    Any, Callable, Dict, IO, Iterable, List, Optional, Union,
)

from ..errors import DataError

TRACE_FORMAT = "bdrmap-repro-trace/1"

#: The repo's single wall-clock entry point.  Serving benchmarks (host
#: throughput is a property of the machine, not the simulated Internet)
#: and the instrumentation-overhead guard call this; nothing else may
#: read the wall clock directly.
perf_clock = time.perf_counter


def span_id(seed: int, seq: int) -> str:
    """A deterministic 64-bit id from (run seed, span sequence)."""
    x = ((seed & 0xFFFFFFFFFFFFFFFF) * 0x9E3779B97F4A7C15
         + seq * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    return "%016x" % x


class Span:
    """One timed region.  Use via ``with tracer.span(name, **attrs):``."""

    __slots__ = (
        "name", "sid", "parent", "t0", "t1", "attrs", "_tracer", "_remote",
    )

    def __init__(self, tracer: "Tracer", name: str, sid: str,
                 attrs: Dict[str, Any],
                 remote_parent: Optional[str] = None) -> None:
        self._tracer = tracer
        self.name = name
        self.sid = sid
        self.parent: Optional[str] = None
        self.t0 = 0.0
        self.t1 = 0.0
        self.attrs = attrs
        self._remote = remote_parent

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack
        if stack:
            self.parent = stack[-1].sid
        else:
            # A remote parent (the trace context a shard command carried
            # over the wire) only applies to a tree root: a local
            # enclosing span always wins.
            self.parent = self._remote
        self.t0 = tracer._now()
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        self.t1 = tracer._now()
        tracer._stack.pop()
        tracer.spans.append(self)
        return False

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "id": self.sid,
            "parent": self.parent,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Stateless reentrant do-nothing span (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans; clock and ids are both deterministic.

    ``clock`` is any zero-arg float callable — pass
    ``lambda: network.now`` to stamp spans in simulated seconds.  With
    no clock, an internal tick counter increments once per clock read,
    which still orders spans totally and deterministically.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 seed: int = 0) -> None:
        self.seed = seed
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._seq = 0
        self._tick = 0
        self._clock = clock

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        self._tick += 1
        return float(self._tick)

    def span(self, name: str, remote_parent: Optional[str] = None,
             **attrs: Any) -> Span:
        self._seq += 1
        return Span(self, name, span_id(self.seed, self._seq), attrs,
                    remote_parent=remote_parent)

    @property
    def current_id(self) -> Optional[str]:
        """Id of the innermost open span, or None outside any span.

        The serving front end stamps this into shard commands so
        worker-side spans parent under the query span that caused them.
        """
        return self._stack[-1].sid if self._stack else None

    def drain(self) -> List[Span]:
        """Hand over (and forget) every finished span.

        Sequence numbers keep counting, so ids stay unique across
        drains — this is how a shard worker ships its spans home at
        each harvest without re-sending old ones.
        """
        spans, self.spans = self.spans, []
        return spans

    # -- export -------------------------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(span.as_dict(), sort_keys=True) + "\n"
            for span in self.spans
        )

    def write_jsonl(self, target: Union[str, IO[str]]) -> None:
        payload = self.to_jsonl()
        if hasattr(target, "write"):
            target.write(payload)
            return
        # Function-level import: io.serialize imports modules that
        # import this one.
        from ..io.serialize import atomic_write_text
        atomic_write_text(target, payload)

    def profile(self) -> List[Dict[str, Any]]:
        return profile_spans(span.as_dict() for span in self.spans)

    def profile_table(self) -> str:
        return profile_table(self.profile())


class NullTracer(Tracer):
    """No-op tracer: ``span()`` hands back one shared inert span."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, remote_parent: Optional[str] = None,
             **attrs: Any) -> Any:
        return _NULL_SPAN


#: Shared do-nothing instance; the default wherever tracing threads
#: through.  Its null span keeps no state, so sharing is safe.
NULL_TRACER = NullTracer()


def load_trace(source: Union[str, IO[str]]) -> List[Dict[str, Any]]:
    """Read a ``--trace-out`` JSONL file back into span dicts."""
    try:
        if hasattr(source, "read"):
            text = source.read()
        else:
            with open(source) as handle:
                text = handle.read()
    except OSError as exc:
        raise DataError("cannot read trace file: %s" % exc) from exc
    spans = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            span = json.loads(line)
            span["id"], span["name"], span["t0"], span["t1"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise DataError(
                "malformed trace line %d: %s" % (lineno, exc)
            ) from exc
        spans.append(span)
    return spans


def span_tree(spans: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Nest span dicts under their parents; returns the roots.

    A span whose parent id is None — or references a span not present
    in the input — becomes a root.  Input order is preserved among
    siblings, so a deterministically-ordered merged export yields a
    deterministic tree.
    """
    nodes: Dict[str, Dict[str, Any]] = {}
    ordered = []
    for span in spans:
        node = dict(span)
        node["children"] = []
        nodes[node["id"]] = node
        ordered.append(node)
    roots = []
    for node in ordered:
        parent = node.get("parent")
        if parent is not None and parent in nodes and parent != node["id"]:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    return roots


def format_span_tree(spans: Iterable[Dict[str, Any]]) -> str:
    """Indented one-line-per-span rendering of :func:`span_tree`."""
    lines: List[str] = []

    def walk(node: Dict[str, Any], depth: int) -> None:
        attrs = node.get("attrs") or {}
        detail = " ".join(
            "%s=%s" % (key, attrs[key]) for key in sorted(attrs)
        )
        lines.append(
            "%s%-*s %10.3f  %s"
            % ("  " * depth, 36 - 2 * depth, node["name"],
               node["t1"] - node["t0"], detail)
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for root in span_tree(spans):
        walk(root, 0)
    return "\n".join(lines)


def profile_spans(spans: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Aggregate span dicts into a self/total-time profile.

    ``total`` is the summed duration of every span with a given name;
    ``self`` subtracts time covered by each span's *direct* children,
    so nested stages do not double-count.  Sorted by self descending.
    """
    spans = list(spans)
    child_time: Dict[str, float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            child_time[parent] = (
                child_time.get(parent, 0.0) + (span["t1"] - span["t0"])
            )
    rows: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        duration = span["t1"] - span["t0"]
        row = rows.get(span["name"])
        if row is None:
            row = rows[span["name"]] = {
                "name": span["name"], "count": 0,
                "total": 0.0, "self": 0.0,
            }
        row["count"] += 1
        row["total"] += duration
        row["self"] += duration - child_time.get(span["id"], 0.0)
    return sorted(
        rows.values(), key=lambda r: (-r["self"], r["name"])
    )


def profile_table(rows: List[Dict[str, Any]]) -> str:
    lines = ["%-36s %8s %12s %12s" % ("span", "count", "total", "self")]
    for row in rows:
        lines.append(
            "%-36s %8d %12.3f %12.3f"
            % (row["name"], row["count"], row["total"], row["self"])
        )
    return "\n".join(lines)
