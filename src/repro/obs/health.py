"""Health and SLO reports for the sharded serving tier.

A :class:`HealthReport` is a structured snapshot of one
:class:`~repro.serving.server.ShardedBorderServer`: per-shard liveness,
breaker state, restart counts, epoch/token convergence, and query
latency percentiles read from the ``shard.<k>.worker.query.ms``
histograms that :meth:`~repro.serving.server.ShardedBorderServer.\
collect_metrics` harvests into the front-end registry.  The report is
scored against an :class:`SLO` — declared objectives for tail latency,
shed/degraded rates, replica health, and convergence — into named
pass/fail checks and one overall verdict.

Reports round-trip through JSON (``repro health --json`` is the
scripting surface; ``repro top`` renders the table form), and the
registry they read from can also be exposed in Prometheus text form
via :mod:`repro.obs.promtext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import DataError
from .metrics import Histogram, LATENCY_BUCKETS_MS

HEALTH_FORMAT = "bdrmap-repro-health/1"


@dataclass(frozen=True)
class SLO:
    """Declared service-level objectives for the serving tier."""

    p99_ms: float = 250.0            # tier-wide query tail latency
    shed_rate: float = 0.05          # admission-control shed fraction
    degraded_rate: float = 0.05      # explicitly degraded answers
    min_healthy_fraction: float = 0.5  # live, breaker-closed replicas
    require_converged: bool = True   # every shard on the committed epoch

    def to_dict(self) -> Dict[str, Any]:
        return {
            "p99_ms": self.p99_ms,
            "shed_rate": self.shed_rate,
            "degraded_rate": self.degraded_rate,
            "min_healthy_fraction": self.min_healthy_fraction,
            "require_converged": self.require_converged,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SLO":
        try:
            return cls(
                p99_ms=float(payload["p99_ms"]),
                shed_rate=float(payload["shed_rate"]),
                degraded_rate=float(payload["degraded_rate"]),
                min_healthy_fraction=float(payload["min_healthy_fraction"]),
                require_converged=bool(payload["require_converged"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError("malformed SLO payload: %s" % exc) from exc


DEFAULT_SLO = SLO()


@dataclass
class ShardHealth:
    """One replica's health row."""

    shard_id: int
    alive: bool
    breaker: str               # "closed" | "open" | "half_open"
    restarts: int
    epoch: int
    token: int
    queries: int
    p50_ms: float
    p99_ms: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "alive": self.alive,
            "breaker": self.breaker,
            "restarts": self.restarts,
            "epoch": self.epoch,
            "token": self.token,
            "queries": self.queries,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardHealth":
        try:
            return cls(
                shard_id=int(payload["shard_id"]),
                alive=bool(payload["alive"]),
                breaker=str(payload["breaker"]),
                restarts=int(payload["restarts"]),
                epoch=int(payload["epoch"]),
                token=int(payload["token"]),
                queries=int(payload["queries"]),
                p50_ms=float(payload["p50_ms"]),
                p99_ms=float(payload["p99_ms"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError("malformed shard health: %s" % exc) from exc


@dataclass
class HealthReport:
    """The tier-wide health snapshot; see module docs."""

    epoch: int
    token: int
    converged: bool
    healthy: int
    total: int
    requests: int
    shed: int
    shed_rate: float
    degraded: int
    degraded_rate: float
    failovers: int
    p50_ms: float
    p99_ms: float
    coalesced: int = 0
    coalesce_rate: float = 0.0
    shards: List[ShardHealth] = field(default_factory=list)
    slo: SLO = DEFAULT_SLO
    checks: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    ok: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": HEALTH_FORMAT,
            "epoch": self.epoch,
            "token": self.token,
            "converged": self.converged,
            "healthy": self.healthy,
            "total": self.total,
            "requests": self.requests,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "degraded": self.degraded,
            "degraded_rate": self.degraded_rate,
            "failovers": self.failovers,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "coalesced": self.coalesced,
            "coalesce_rate": self.coalesce_rate,
            "shards": [shard.to_dict() for shard in self.shards],
            "slo": self.slo.to_dict(),
            "checks": self.checks,
            "ok": self.ok,
        }

    def table(self) -> str:
        """The ``repro top`` rendering: one tier header, one row per
        shard, one line per SLO check."""
        lines = [
            "tier: epoch %d (token %d)  converged=%s  SLO=%s"
            % (self.epoch, self.token,
               "yes" if self.converged else "NO",
               "PASS" if self.ok else "FAIL"),
            "requests %d  shed %d (%.2f%%)  degraded %d (%.2f%%)  "
            "failovers %d  coalesced %d (%.2f%%)  p50 %.3fms  "
            "p99 %.3fms"
            % (self.requests, self.shed, 100.0 * self.shed_rate,
               self.degraded, 100.0 * self.degraded_rate,
               self.failovers, self.coalesced,
               100.0 * self.coalesce_rate, self.p50_ms, self.p99_ms),
            "%-6s %-6s %-10s %8s %6s %6s %9s %9s %9s"
            % ("shard", "state", "breaker", "restarts", "epoch",
               "token", "queries", "p50ms", "p99ms"),
        ]
        for shard in self.shards:
            lines.append(
                "%-6d %-6s %-10s %8d %6d %6d %9d %9.3f %9.3f"
                % (shard.shard_id,
                   "up" if shard.alive else "DOWN",
                   shard.breaker, shard.restarts, shard.epoch,
                   shard.token, shard.queries, shard.p50_ms,
                   shard.p99_ms)
            )
        for name in sorted(self.checks):
            check = self.checks[name]
            lines.append(
                "check %-20s %-4s actual=%s objective=%s"
                % (name, "ok" if check["ok"] else "FAIL",
                   check["actual"], check["objective"])
            )
        return "\n".join(lines)


def health_from_dict(payload: Dict[str, Any]) -> HealthReport:
    """Rebuild a report from :meth:`HealthReport.to_dict` output."""
    try:
        fmt = payload["format"]
    except (KeyError, TypeError) as exc:
        raise DataError("health payload has no format marker") from exc
    if fmt != HEALTH_FORMAT:
        raise DataError("unsupported health format %r" % (fmt,))
    try:
        return HealthReport(
            epoch=int(payload["epoch"]),
            token=int(payload["token"]),
            converged=bool(payload["converged"]),
            healthy=int(payload["healthy"]),
            total=int(payload["total"]),
            requests=int(payload["requests"]),
            shed=int(payload["shed"]),
            shed_rate=float(payload["shed_rate"]),
            degraded=int(payload["degraded"]),
            degraded_rate=float(payload["degraded_rate"]),
            failovers=int(payload["failovers"]),
            p50_ms=float(payload["p50_ms"]),
            p99_ms=float(payload["p99_ms"]),
            coalesced=int(payload.get("coalesced", 0)),
            coalesce_rate=float(payload.get("coalesce_rate", 0.0)),
            shards=[
                ShardHealth.from_dict(entry)
                for entry in payload.get("shards", ())
            ],
            slo=SLO.from_dict(payload["slo"]),
            checks=dict(payload.get("checks", {})),
            ok=bool(payload["ok"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError("malformed health payload: %s" % exc) from exc


def _merged_latency(registry, shard_ids) -> Histogram:
    """Tier-wide latency: the per-shard ``worker.query.ms`` histograms
    summed bucket-wise (they share LATENCY_BUCKETS_MS bounds)."""
    merged = Histogram(LATENCY_BUCKETS_MS)
    for shard_id in shard_ids:
        hist = registry.histograms.get(
            "shard.%d.worker.query.ms" % shard_id
        )
        if hist is None:
            continue
        merged.count += hist.count
        merged.sum += hist.sum
        for index, count in enumerate(hist.counts):
            if index < len(merged.counts):
                merged.counts[index] += count
    return merged


def build_health_report(server, slo: Optional[SLO] = None,
                        harvest: bool = True) -> HealthReport:
    """Snapshot ``server`` (a :class:`ShardedBorderServer`) into a
    scored :class:`HealthReport`.

    ``harvest=True`` (the default) pulls fresh registry deltas from
    every live shard first, so the latency percentiles and per-shard
    counters reflect work done since the last harvest; pass False to
    score exactly what the front-end registry already holds.
    """
    slo = slo if slo is not None else DEFAULT_SLO
    if harvest:
        server.collect_metrics()
    registry = server.metrics
    supervisor = server.supervisor

    shards: List[ShardHealth] = []
    healthy = 0
    for shard in supervisor.shards:
        alive = shard.channel.alive
        breaker = shard.breaker.state
        if alive and breaker != "open":
            healthy += 1
        prefix = "shard.%d." % shard.shard_id
        hist = registry.histograms.get(prefix + "worker.query.ms")
        shards.append(ShardHealth(
            shard_id=shard.shard_id,
            alive=alive,
            breaker=breaker,
            restarts=shard.restarts,
            epoch=shard.last_seen_epoch,
            token=shard.last_seen_token,
            queries=registry.counter(prefix + "worker.queries"),
            p50_ms=hist.percentile(0.5) if hist is not None else 0.0,
            p99_ms=hist.percentile(0.99) if hist is not None else 0.0,
        ))

    requests = server.requests
    shed = server.shed
    degraded = server.degraded
    shed_rate = shed / requests if requests else 0.0
    degraded_rate = degraded / requests if requests else 0.0
    # Front-end coalescing, when an AsyncBorderFrontEnd shares this
    # registry; zero (and a 0.0 rate) on a plain synchronous tier.
    coalesced = registry.counter("serving.frontend.coalesced")
    frontend_requests = registry.counter("serving.frontend.requests")
    coalesce_rate = (
        coalesced / frontend_requests if frontend_requests else 0.0
    )
    tier_latency = _merged_latency(
        registry, [shard.shard_id for shard in supervisor.shards]
    )
    p50 = tier_latency.percentile(0.5)
    p99 = tier_latency.percentile(0.99)
    converged = server.converged()
    total = len(supervisor.shards)
    healthy_fraction = healthy / total if total else 0.0

    checks = {
        "p99_ms": {
            "objective": slo.p99_ms, "actual": p99,
            "ok": p99 <= slo.p99_ms,
        },
        "shed_rate": {
            "objective": slo.shed_rate, "actual": shed_rate,
            "ok": shed_rate <= slo.shed_rate,
        },
        "degraded_rate": {
            "objective": slo.degraded_rate, "actual": degraded_rate,
            "ok": degraded_rate <= slo.degraded_rate,
        },
        "healthy_fraction": {
            "objective": slo.min_healthy_fraction,
            "actual": healthy_fraction,
            "ok": healthy_fraction >= slo.min_healthy_fraction,
        },
        "converged": {
            "objective": slo.require_converged, "actual": converged,
            "ok": converged or not slo.require_converged,
        },
    }

    return HealthReport(
        epoch=server.committed_epoch,
        token=server.committed_token,
        converged=converged,
        healthy=healthy,
        total=total,
        requests=requests,
        shed=shed,
        shed_rate=shed_rate,
        degraded=degraded,
        degraded_rate=degraded_rate,
        failovers=server.failovers,
        p50_ms=p50,
        p99_ms=p99,
        coalesced=coalesced,
        coalesce_rate=coalesce_rate,
        shards=shards,
        slo=slo,
        checks=checks,
        ok=all(check["ok"] for check in checks.values()),
    )
