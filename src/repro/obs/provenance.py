"""Decision provenance: which pass considered a router, which decided.

bdrmap's ownership heuristics run in paper order (§5.4.1–§5.4.8), and
the *first* pass to claim a router wins — so explaining an inference
means replaying the chain of passes that looked at the router and
naming the one that assigned its owner.  Every consultation appends a
:class:`ProvenanceRecord` to the run's :class:`ProvenanceLog`; the log
rides on ``BdrmapResult.provenance``, round-trips through
``io/serialize``, and backs ``repro explain``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from ..errors import DataError

# Verdicts, in rough order of interest.
CONSIDERED = "considered"      # pass ran, declined to claim
ASSIGNED = "assigned"          # pass assigned this router's owner
CO_ASSIGNED = "co_assigned"    # claimed alongside a primary router
DEGRADED = "degraded"          # pass hit partial evidence and skipped
MERGED = "merged"              # alias collapse absorbed this router
LINKED = "linked"              # silent-neighbor pass attached a link

#: Verdicts that carry an ownership decision.
DECIDING = (ASSIGNED, CO_ASSIGNED, MERGED, LINKED)


@dataclass
class ProvenanceRecord:
    """One ``(router, pass, verdict, evidence)`` tuple."""

    router: int
    pass_name: str
    section: str
    verdict: str
    owner: Optional[int] = None
    reason: Optional[str] = None
    evidence: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "router": self.router,
            "pass": self.pass_name,
            "section": self.section,
            "verdict": self.verdict,
        }
        if self.owner is not None:
            payload["owner"] = self.owner
        if self.reason is not None:
            payload["reason"] = self.reason
        if self.evidence:
            payload["evidence"] = self.evidence
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ProvenanceRecord":
        try:
            return cls(
                router=payload["router"],
                pass_name=payload["pass"],
                section=payload["section"],
                verdict=payload["verdict"],
                owner=payload.get("owner"),
                reason=payload.get("reason"),
                evidence=dict(payload.get("evidence", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(
                "malformed provenance record: %s" % exc
            ) from exc


class ProvenanceLog:
    """Append-only record list with per-router views."""

    def __init__(self) -> None:
        self.records: List[ProvenanceRecord] = []

    def add(
        self,
        router: int,
        pass_name: str,
        section: str,
        verdict: str,
        owner: Optional[int] = None,
        reason: Optional[str] = None,
        evidence: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.records.append(ProvenanceRecord(
            router=router, pass_name=pass_name, section=section,
            verdict=verdict, owner=owner, reason=reason,
            evidence=evidence or {},
        ))

    def for_router(self, rid: int) -> List[ProvenanceRecord]:
        return [r for r in self.records if r.router == rid]

    def deciding(self, rid: int) -> Optional[ProvenanceRecord]:
        """The record that assigned this router's owner, if any."""
        for record in self.records:
            if record.router == rid and record.verdict in DECIDING:
                return record
        return None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ProvenanceRecord]:
        return iter(self.records)


def format_chain(records: List[ProvenanceRecord]) -> List[str]:
    """Human-readable lines for one router's consultation chain."""
    lines = []
    for record in records:
        marker = {
            ASSIGNED: "=>", CO_ASSIGNED: "=>",
            MERGED: "=>", LINKED: "->",
        }.get(record.verdict, "  ")
        bits = ["%s %-10s %s (%s)" % (
            marker, record.verdict, record.pass_name, record.section
        )]
        if record.owner is not None:
            bits.append("owner=AS%d" % record.owner)
        if record.reason:
            bits.append("reason=%r" % record.reason)
        if record.evidence:
            bits.append(
                " ".join("%s=%s" % (k, record.evidence[k])
                         for k in sorted(record.evidence))
            )
        lines.append(" ".join(bits))
    return lines
