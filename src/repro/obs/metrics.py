"""The metrics registry: named counters, gauges, timers, histograms.

Design constraints, in order:

1. **Cheap enough to leave on.**  Counters are plain dict slots bumped
   with integer adds; no locks (the simulator is single-threaded and
   the serving layer tolerates torn reads on monitoring counters), no
   label objects, no per-sample allocation.
2. **Free when off.**  :class:`NullRegistry` overrides every mutator
   with a ``pass`` body, so an uninstrumented hot path pays one no-op
   method call — the :data:`NULL_REGISTRY` singleton is the default
   everywhere instrumentation threads through.
3. **One source of truth.**  Subsystems that used to keep private
   hand-rolled counters (fault stats, retry stats, engine stats) now
   *view* slots in a shared registry, so ``repro metrics`` and the
   RunReport read the same numbers.

Metric names are dotted strings (``"probe.sent"``,
``"pass.5.4.2.claimed"``); the registry imposes no schema beyond that.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Sequence, Union

from ..errors import DataError

METRICS_FORMAT = "bdrmap-repro-metrics/1"

#: Default histogram bounds: powers of four from 1 — wide enough for
#: counts (probes per block, pairs per router) without tuning.
DEFAULT_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096)

#: Latency bounds in milliseconds: sub-millisecond resolution at the
#: bottom (engine lookups are microseconds) up to a multi-second
#: overflow for stalled shards.  Used by the serving tier's
#: ``*.query.ms`` histograms, which the SLO layer reads percentiles
#: from.
LATENCY_BUCKETS_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0,
)


class Histogram:
    """A fixed-bucket histogram: ``len(bounds) + 1`` integer counts.

    Bucket ``i`` counts samples ``<= bounds[i]``; the final bucket is
    the overflow.  Bounds are fixed at creation — no resizing, no
    per-sample allocation.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Deterministic bucket-interpolated quantile, ``0 <= q <= 1``.

        Linear interpolation within the bucket holding the ``q``-th
        sample, taking the previous bound as the bucket's lower edge
        (0 for the first).  Overflow samples clamp to the top bound —
        the histogram records nothing finer.  Pure arithmetic on the
        bucket counts, so two registries with equal counts agree
        exactly.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % (q,))
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.bounds):
            bucket = self.counts[i]
            if bucket:
                if rank <= cumulative + bucket:
                    fraction = (rank - cumulative) / bucket
                    return lower + (bound - lower) * fraction
                cumulative += bucket
            lower = bound
        return float(self.bounds[-1]) if self.bounds else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Named counters, gauges, timers, and histograms in plain dicts."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.timers: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- mutators (every one is a no-op on NullRegistry) --------------------

    def inc(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_counter(self, name: str, value: int) -> None:
        self.counters[name] = value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def set_timer(self, name: str, seconds: float) -> None:
        self.timers[name] = seconds

    def observe(
        self, name: str, value: float,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bounds)
        hist.observe(value)

    # -- readers (always real, even on NullRegistry) ------------------------

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def gauge(self, name: str) -> float:
        return self.gauges.get(name, 0.0)

    def timer(self, name: str) -> float:
        return self.timers.get(name, 0.0)

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        return {
            name: value for name, value in self.counters.items()
            if name.startswith(prefix)
        }

    # -- deltas and merging ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A cheap point-in-time copy of every slot, for :meth:`delta_since`."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": dict(self.timers),
            "histograms": {
                name: (hist.count, hist.sum, tuple(hist.counts))
                for name, hist in self.histograms.items()
            },
        }

    def delta_since(self, snapshot: Dict[str, Any]) -> Dict[str, Any]:
        """What accumulated since ``snapshot`` — the per-VP slice of a
        shared registry, in :meth:`merge_delta` form.  Slots whose value
        did not move are omitted, so a delta of an idle period is empty."""
        # A slot that exists now but not in the snapshot is part of the
        # delta even at zero: merge_delta must re-create it, or a resumed
        # registry would be missing the zero-valued slots a fresh run has
        # (e.g. a scheduler's tasks_failed counter that never fired).
        counters = {}
        for name, value in self.counters.items():
            moved = value - snapshot["counters"].get(name, 0)
            if moved or name not in snapshot["counters"]:
                counters[name] = moved
        timers = {}
        for name, value in self.timers.items():
            moved = value - snapshot["timers"].get(name, 0.0)
            if moved or name not in snapshot["timers"]:
                timers[name] = moved
        # Gauges are level samples, not accumulators: the "delta" is the
        # final value of every gauge written since the snapshot, replayed
        # with last-write-wins semantics by merge_delta.  Without them a
        # resumed run would lose the gauges its checkpointed VPs set.
        gauges = {}
        before_gauges = snapshot.get("gauges", {})
        for name, value in self.gauges.items():
            if name not in before_gauges or before_gauges[name] != value:
                gauges[name] = value
        histograms = {}
        for name, hist in self.histograms.items():
            before = snapshot["histograms"].get(
                name, (0, 0.0, (0,) * len(hist.counts))
            )
            if hist.count == before[0] and name in snapshot["histograms"]:
                continue
            histograms[name] = {
                "bounds": list(hist.bounds),
                "counts": [
                    now - then for now, then in zip(hist.counts, before[2])
                ],
                "count": hist.count - before[0],
                "sum": hist.sum - before[1],
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "timers": timers,
            "histograms": histograms,
        }

    def merge_delta(self, delta: Dict[str, Any], prefix: str = "") -> None:
        """Add a :meth:`delta_since` (or a whole registry's
        :meth:`as_dict`) into this registry.  Addition is commutative per
        slot, so merging per-VP deltas in VP order reproduces the registry
        a single-process run would have built.

        ``prefix`` namespaces every incoming slot — the serving front end
        folds each shard's harvest under ``shard.<k>.`` so replicas never
        collide."""
        for name, value in delta.get("counters", {}).items():
            self.inc(prefix + name, value)
        for name, value in delta.get("timers", {}).items():
            self.time(prefix + name, value)
        for name, entry in delta.get("histograms", {}).items():
            hist = self.histograms.get(prefix + name)
            if hist is None:
                hist = Histogram(entry["bounds"])
                self.histograms[prefix + name] = hist
            hist.count += entry["count"]
            hist.sum += entry["sum"]
            for index, count in enumerate(entry["counts"]):
                if index < len(hist.counts):
                    hist.counts[index] += count
        for name, value in delta.get("gauges", {}).items():
            self.set_gauge(prefix + name, value)

    def merge_registry(self, other: "MetricsRegistry") -> None:
        """Fold another registry's slots into this one (counters, timers,
        and histograms add; gauges overwrite).  The per-worker registries
        of a parallel run are merged this way, in VP order."""
        self.merge_delta(other.as_dict())

    # -- export -------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "format": METRICS_FORMAT,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "timers": {k: self.timers[k] for k in sorted(self.timers)},
            "histograms": {
                k: self.histograms[k].as_dict()
                for k in sorted(self.histograms)
            },
        }

    def write_json(self, target: Union[str, IO[str]]) -> None:
        payload = json.dumps(self.as_dict(), indent=1, sort_keys=True)
        if hasattr(target, "write"):
            target.write(payload)
            return
        # Function-level import: io.serialize pulls in report/provenance
        # modules that import this one.
        from ..io.serialize import atomic_write_text
        atomic_write_text(target, payload)

    def summary(self) -> str:
        lines = []
        for name in sorted(self.counters):
            lines.append("%-44s %12d" % (name, self.counters[name]))
        for name in sorted(self.gauges):
            lines.append("%-44s %12.3f" % (name, self.gauges[name]))
        for name in sorted(self.timers):
            lines.append("%-44s %9.3f ms" % (name, 1e3 * self.timers[name]))
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            lines.append(
                "%-44s n=%-8d mean=%.2f p50=%.2f p99=%.2f"
                % (name, hist.count, hist.mean,
                   hist.percentile(0.5), hist.percentile(0.99))
            )
        return "\n".join(lines)


class NullRegistry(MetricsRegistry):
    """The no-op fallback: every mutator is a ``pass`` body.

    Readers still work (and report zeros/empties), so code may read
    back counters unconditionally.
    """

    enabled = False

    def inc(self, name: str, value: int = 1) -> None:
        pass

    def set_counter(self, name: str, value: int) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def time(self, name: str, seconds: float) -> None:
        pass

    def set_timer(self, name: str, seconds: float) -> None:
        pass

    def observe(
        self, name: str, value: float,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        pass

    def merge_delta(self, delta: Dict[str, Any], prefix: str = "") -> None:
        pass


#: Shared do-nothing instance; the default wherever instrumentation is
#: threaded through.  Never mutated, so sharing one is safe.
NULL_REGISTRY = NullRegistry()


def load_metrics(source: Union[str, IO[str]]) -> Dict[str, Any]:
    """Read a ``--metrics-out`` JSON file back; validates the format."""
    try:
        if hasattr(source, "read"):
            payload = json.load(source)
        else:
            with open(source) as handle:
                payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise DataError("cannot read metrics file: %s" % exc) from exc
    try:
        fmt = payload["format"]
    except (KeyError, TypeError) as exc:
        raise DataError("metrics file has no format marker") from exc
    if fmt != METRICS_FORMAT:
        raise DataError("unsupported metrics format %r" % (fmt,))
    return payload


def registry_from_dict(payload: Dict[str, Any]) -> MetricsRegistry:
    """Rebuild a registry from :meth:`MetricsRegistry.as_dict` output."""
    registry = MetricsRegistry()
    try:
        registry.counters.update(payload.get("counters", {}))
        registry.gauges.update(payload.get("gauges", {}))
        registry.timers.update(payload.get("timers", {}))
        for name, hd in payload.get("histograms", {}).items():
            hist = Histogram(hd["bounds"])
            hist.counts = list(hd["counts"])
            hist.count = hd["count"]
            hist.sum = hd["sum"]
            registry.histograms[name] = hist
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError("malformed metrics payload: %s" % exc) from exc
    return registry
