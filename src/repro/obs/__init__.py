"""Unified observability: metrics registry, span tracer, provenance.

One instrumentation spine every subsystem reports through.  Three
pieces, each usable alone:

* :mod:`~repro.obs.metrics` — named counters / gauges / timers /
  fixed-bucket histograms in plain dicts (no locks on the hot path),
  with a :class:`~repro.obs.metrics.NullRegistry` so uninstrumented
  callers pay one no-op call.
* :mod:`~repro.obs.trace` — context-manager spans with parent/child
  nesting and deterministic ids derived from ``(seed, sequence)``;
  timestamps come from a caller-supplied clock (the simulator's
  virtual clock for runs), never from the wall, so same-seed traces
  are byte-identical.
* :mod:`~repro.obs.provenance` — the ``(router, pass, verdict,
  evidence)`` decision log behind ``repro explain``.
* :mod:`~repro.obs.health` / :mod:`~repro.obs.promtext` — the
  operator surface: SLO-scored :class:`~repro.obs.health.HealthReport`
  snapshots of the sharded serving tier and Prometheus text exposition
  of any registry (``repro top`` / ``repro health``).
"""

from .health import (
    DEFAULT_SLO,
    HEALTH_FORMAT,
    HealthReport,
    SLO,
    ShardHealth,
    build_health_report,
    health_from_dict,
)
from .metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS_MS,
    METRICS_FORMAT,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    load_metrics,
    registry_from_dict,
)
from .promtext import render_prometheus, sanitize_name
from .provenance import (
    ASSIGNED,
    CO_ASSIGNED,
    CONSIDERED,
    DECIDING,
    DEGRADED,
    LINKED,
    MERGED,
    ProvenanceLog,
    ProvenanceRecord,
    format_chain,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_FORMAT,
    Tracer,
    format_span_tree,
    load_trace,
    perf_clock,
    profile_spans,
    profile_table,
    span_id,
    span_tree,
)

__all__ = [
    "ASSIGNED",
    "CO_ASSIGNED",
    "CONSIDERED",
    "DECIDING",
    "DEFAULT_BUCKETS",
    "DEFAULT_SLO",
    "DEGRADED",
    "HEALTH_FORMAT",
    "HealthReport",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "LINKED",
    "MERGED",
    "METRICS_FORMAT",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "ProvenanceLog",
    "ProvenanceRecord",
    "SLO",
    "ShardHealth",
    "Span",
    "TRACE_FORMAT",
    "Tracer",
    "build_health_report",
    "format_chain",
    "format_span_tree",
    "health_from_dict",
    "load_metrics",
    "load_trace",
    "perf_clock",
    "profile_spans",
    "profile_table",
    "registry_from_dict",
    "render_prometheus",
    "sanitize_name",
    "span_id",
    "span_tree",
]
