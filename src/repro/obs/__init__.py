"""Unified observability: metrics registry, span tracer, provenance.

One instrumentation spine every subsystem reports through.  Three
pieces, each usable alone:

* :mod:`~repro.obs.metrics` — named counters / gauges / timers /
  fixed-bucket histograms in plain dicts (no locks on the hot path),
  with a :class:`~repro.obs.metrics.NullRegistry` so uninstrumented
  callers pay one no-op call.
* :mod:`~repro.obs.trace` — context-manager spans with parent/child
  nesting and deterministic ids derived from ``(seed, sequence)``;
  timestamps come from a caller-supplied clock (the simulator's
  virtual clock for runs), never from the wall, so same-seed traces
  are byte-identical.
* :mod:`~repro.obs.provenance` — the ``(router, pass, verdict,
  evidence)`` decision log behind ``repro explain``.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    METRICS_FORMAT,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    load_metrics,
    registry_from_dict,
)
from .provenance import (
    ASSIGNED,
    CO_ASSIGNED,
    CONSIDERED,
    DECIDING,
    DEGRADED,
    LINKED,
    MERGED,
    ProvenanceLog,
    ProvenanceRecord,
    format_chain,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_FORMAT,
    Tracer,
    load_trace,
    perf_clock,
    profile_spans,
    profile_table,
    span_id,
)

__all__ = [
    "ASSIGNED",
    "CO_ASSIGNED",
    "CONSIDERED",
    "DECIDING",
    "DEFAULT_BUCKETS",
    "DEGRADED",
    "Histogram",
    "LINKED",
    "MERGED",
    "METRICS_FORMAT",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "ProvenanceLog",
    "ProvenanceRecord",
    "Span",
    "TRACE_FORMAT",
    "Tracer",
    "format_chain",
    "load_metrics",
    "load_trace",
    "perf_clock",
    "profile_spans",
    "profile_table",
    "registry_from_dict",
    "span_id",
]
