"""Alias-resolution bookkeeping: per-pair evidence, conflict-aware
transitive closure, and the resolver that orchestrates Mercator / Ally /
prefixscan probing over candidate address sets (§5.3)."""

from .evidence import PairEvidence, EvidenceStore
from .unionfind import ConflictUnionFind
from .resolver import AliasResolver

__all__ = ["PairEvidence", "EvidenceStore", "ConflictUnionFind", "AliasResolver"]
