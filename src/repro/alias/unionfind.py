"""Conflict-aware union-find.

bdrmap builds routers by transitive closure over positive alias pairs, but
(§5.3) "only used pairs of IP addresses where none of the measurements
suggested a pair of IP addresses were not aliases".  This structure refuses
a union whenever any member of one component has negative evidence against
any member of the other.
"""

from __future__ import annotations

from typing import Dict, List, Set


class ConflictUnionFind:
    """Union-find over addresses with pairwise conflict constraints."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._members: Dict[int, Set[int]] = {}
        self._conflicts: Dict[int, Set[int]] = {}

    def add(self, addr: int) -> None:
        if addr not in self._parent:
            self._parent[addr] = addr
            self._members[addr] = {addr}

    def find(self, addr: int) -> int:
        self.add(addr)
        root = addr
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[addr] != root:
            self._parent[addr], addr = root, self._parent[addr]
        return root

    def add_conflict(self, a: int, b: int) -> None:
        """Record that a and b are definitely not aliases."""
        self.add(a)
        self.add(b)
        self._conflicts.setdefault(a, set()).add(b)
        self._conflicts.setdefault(b, set()).add(a)

    def conflicted(self, a: int, b: int) -> bool:
        """Would uniting a's and b's components violate any negative pair?"""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        small, large = sorted(
            (self._members[root_a], self._members[root_b]), key=len
        )
        for member in small:
            if self._conflicts.get(member, set()) & large:
                return True
        return False

    def union(self, a: int, b: int) -> bool:
        """Unite a and b unless a conflict forbids it; True on success."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return True
        if self.conflicted(a, b):
            return False
        if len(self._members[root_a]) < len(self._members[root_b]):
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._members[root_a].update(self._members.pop(root_b))
        return True

    def same(self, a: int, b: int) -> bool:
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def component(self, addr: int) -> Set[int]:
        return set(self._members[self.find(addr)])

    def components(self) -> List[Set[int]]:
        return [set(members) for members in self._members.values()]

    def __contains__(self, addr: int) -> bool:
        return addr in self._parent
