"""Alias-resolution orchestration (§5.3).

The resolver drives Mercator and (repeated, hardened) Ally probing over the
addresses and candidate sets the collection stage hands it, accumulates
evidence, and produces conflict-checked alias components for the router
graph build.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, Optional, Set, Tuple

from ..net import Network, ProbeKind
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..probing.ally import AliasVerdict, ally_repeated
from ..probing.mercator import mercator_probe
from ..probing.midar import estimate_velocity, velocities_compatible
from ..probing.ping import ping
from ..probing.retry import RetryPolicy, RetryStats
from ..probing.ttl_limited import TTLLimitedProber
from .evidence import EvidenceStore
from .unionfind import ConflictUnionFind


class AliasResolver:
    """Collects alias evidence and builds routers from it."""

    def __init__(
        self,
        network: Network,
        vp_addr: int,
        ally_rounds: int = 5,
        ally_interval: float = 300.0,
        max_set_pairs: int = 66,
        use_velocity_screen: bool = True,
        retry: Optional[RetryPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.network = network
        self.vp_addr = vp_addr
        self.ally_rounds = ally_rounds
        self.ally_interval = ally_interval
        self.max_set_pairs = max_set_pairs
        self.use_velocity_screen = use_velocity_screen
        self.retry = retry
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.retry_stats = RetryStats()
        self.evidence = EvidenceStore()
        self._mercator_cache: Dict[int, Optional[int]] = {}
        self._velocity_cache: Dict[int, Optional[float]] = {}
        self._ttl_prober = (
            TTLLimitedProber(network, vp_addr) if network is not None else None
        )
        self.pairs_tested = 0
        self.pairs_screened = 0

    # -- trace-derived knowledge ---------------------------------------------

    def learn_from_trace(self, trace) -> None:
        """Harvest (destination, ttl) aims from a traceroute so Ally can
        fall back to in-transit TTL expiry for probe-deaf routers (§5.3)."""
        if self._ttl_prober is not None:
            self._ttl_prober.learn_from_trace(trace)

    def ttl_aim(self, addr: int) -> Optional[Tuple[int, int]]:
        """The (destination, ttl) pair at which a probe is known to expire
        at ``addr``, or None if no trace revealed one."""
        if self._ttl_prober is None:
            return None
        return self._ttl_prober.aim(addr)

    # -- probing -----------------------------------------------------------

    def _mercator_raw(self, addr: int) -> Optional[int]:
        """Override point for remote (§5.8) deployments."""
        return mercator_probe(self.network, self.vp_addr, addr,
                              retry=self.retry,
                              retry_stats=self.retry_stats)

    def _ally_raw(self, a: int, b: int):
        """Override point for remote (§5.8) deployments."""
        return ally_repeated(
            self.network, self.vp_addr, a, b,
            rounds=self.ally_rounds, interval=self.ally_interval,
            ttl_prober=self._ttl_prober,
            retry=self.retry, retry_stats=self.retry_stats,
        )

    def mercator(self, addr: int) -> Optional[int]:
        """Mercator-probe ``addr`` (cached); record direct alias evidence
        when the response source differs from the probed address."""
        if addr in self._mercator_cache:
            return self._mercator_cache[addr]
        source = self._mercator_raw(addr)
        self._mercator_cache[addr] = source
        if source is not None and source != addr:
            self.evidence.record_for(addr, source, "mercator")
            self.metrics.inc("alias.mercator.merged")
        return source

    def mercator_sweep(self, addrs: Iterable[int]) -> None:
        for addr in sorted(set(addrs)):
            self.mercator(addr)

    def test_pair(self, a: int, b: int) -> AliasVerdict:
        """Full pair test: Mercator source comparison, then hardened Ally."""
        if a == b:
            return AliasVerdict.ALIAS
        existing = self.evidence.get(a, b)
        if existing.negative:
            return AliasVerdict.NOT_ALIAS
        if existing.positive:
            return AliasVerdict.ALIAS
        self.pairs_tested += 1
        metrics = self.metrics
        metrics.inc("alias.pairs_tested")
        source_a = self.mercator(a)
        source_b = self.mercator(b)
        if source_a is not None and source_b is not None:
            if source_a == source_b:
                self.evidence.record_for(a, b, "mercator")
                metrics.inc("alias.mercator.pairs_merged")
                return AliasVerdict.ALIAS
            self.evidence.record_against(a, b, "mercator")
            metrics.inc("alias.mercator.pairs_rejected")
            return AliasVerdict.NOT_ALIAS
        result = self._ally_raw(a, b)
        if result.verdict is AliasVerdict.ALIAS:
            self.evidence.record_for(a, b, "ally")
            metrics.inc("alias.ally.pairs_merged")
        elif result.verdict is AliasVerdict.NOT_ALIAS:
            self.evidence.record_against(a, b, "ally")
            metrics.inc("alias.ally.pairs_rejected")
        return result.verdict

    def _velocity_raw(self, addr: int) -> Optional[float]:
        """Three spaced probes → velocity estimate.  Override point for
        remote (§5.8) deployments."""
        samples = []
        for index in range(3):
            if index:
                self.network.advance(2.0)
            response = ping(self.network, self.vp_addr, addr,
                            kind=ProbeKind.ICMP_ECHO, retry=self.retry,
                            retry_stats=self.retry_stats)
            if response is not None:
                samples.append((self.network.now, response.ipid))
        return estimate_velocity(samples)

    def velocity(self, addr: int) -> Optional[float]:
        """Estimate ``addr``'s IP-ID velocity (cached)."""
        if addr in self._velocity_cache:
            return self._velocity_cache[addr]
        estimate = self._velocity_raw(addr)
        self._velocity_cache[addr] = estimate
        return estimate

    def resolve_candidate_set(self, candidates: Set[int]) -> None:
        """Pairwise-test a candidate alias set (bounded).

        MIDAR's scaling step [21]: estimate each address's counter velocity
        first, and only run the expensive pairwise test for pairs whose
        velocities could belong to one counter.
        """
        ordered = sorted(candidates)
        pairs = list(combinations(ordered, 2))
        if len(pairs) > self.max_set_pairs:
            pairs = pairs[: self.max_set_pairs]
        for a, b in pairs:
            if self.use_velocity_screen:
                if not velocities_compatible(self.velocity(a), self.velocity(b)):
                    self.pairs_screened += 1
                    self.metrics.inc("alias.velocity.screened")
                    continue
            self.test_pair(a, b)

    # -- closure -------------------------------------------------------------

    def components(self, universe: Iterable[int]) -> ConflictUnionFind:
        """Conflict-checked transitive closure over all positive pairs."""
        closure = ConflictUnionFind()
        for addr in universe:
            closure.add(addr)
        for a, b in self.evidence.negative_pairs():
            closure.add_conflict(a, b)
        for a, b in sorted(self.evidence.positive_pairs()):
            closure.union(a, b)
        return closure
