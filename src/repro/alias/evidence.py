"""Per-pair alias evidence.

Every alias method can vote for or against a pair; §5.3's "limit false
aliases" rule means a single credible *against* vote vetoes the pair when
building routers, no matter how many methods voted for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Set, Tuple


@dataclass
class PairEvidence:
    """Accumulated evidence for one unordered address pair."""

    for_methods: Set[str] = field(default_factory=set)
    against_methods: Set[str] = field(default_factory=set)

    @property
    def positive(self) -> bool:
        return bool(self.for_methods) and not self.against_methods

    @property
    def negative(self) -> bool:
        return bool(self.against_methods)


class EvidenceStore:
    """All pairwise evidence collected during a run."""

    def __init__(self) -> None:
        self._pairs: Dict[FrozenSet[int], PairEvidence] = {}

    @staticmethod
    def _key(a: int, b: int) -> FrozenSet[int]:
        return frozenset((a, b))

    def record_for(self, a: int, b: int, method: str) -> None:
        if a == b:
            return
        self._pairs.setdefault(self._key(a, b), PairEvidence()).for_methods.add(method)

    def record_against(self, a: int, b: int, method: str) -> None:
        if a == b:
            return
        self._pairs.setdefault(self._key(a, b), PairEvidence()).against_methods.add(method)

    def get(self, a: int, b: int) -> PairEvidence:
        return self._pairs.get(self._key(a, b), PairEvidence())

    def tested(self, a: int, b: int) -> bool:
        return self._key(a, b) in self._pairs

    def positive_pairs(self) -> Iterator[Tuple[int, int]]:
        for key, evidence in self._pairs.items():
            if evidence.positive:
                a, b = sorted(key)
                yield a, b

    def negative_pairs(self) -> Iterator[Tuple[int, int]]:
        for key, evidence in self._pairs.items():
            if evidence.negative:
                a, b = sorted(key)
                yield a, b

    def __len__(self) -> int:
        return len(self._pairs)
