"""Binary radix (Patricia-style) trie keyed by IPv4 prefixes.

The canonical IP→AS mapping step (§4) is a longest-prefix match against the
set of BGP-announced prefixes; bdrmap performs that match for every address
in every traceroute, so this structure sits on the hottest path of the whole
system.  The trie is a plain binary trie with path-free internal nodes —
simple, allocation-light, and adequate for a few hundred thousand prefixes.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

from .addr import Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("zero", "one", "value", "has_value")

    def __init__(self) -> None:
        self.zero: Optional["_Node[V]"] = None
        self.one: Optional["_Node[V]"] = None
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Map from :class:`Prefix` to arbitrary values with LPM lookup."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at ``prefix``."""
        node = self._root
        for bit_index in range(prefix.plen):
            bit = (prefix.addr >> (31 - bit_index)) & 1
            if bit:
                if node.one is None:
                    node.one = _Node()
                node = node.one
            else:
                if node.zero is None:
                    node.zero = _Node()
                node = node.zero
        if not node.has_value:
            self._len += 1
        node.value = value
        node.has_value = True

    def remove(self, prefix: Prefix) -> bool:
        """Remove ``prefix``; return True if it was present.

        Leaves empty internal nodes in place — removal is rare (used only by
        tests and incremental dataset updates), so we do not prune.
        """
        node: Optional[_Node[V]] = self._root
        for bit_index in range(prefix.plen):
            if node is None:
                return False
            bit = (prefix.addr >> (31 - bit_index)) & 1
            node = node.one if bit else node.zero
        if node is None or not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._len -= 1
        return True

    def exact(self, prefix: Prefix) -> Optional[V]:
        """Return the value stored exactly at ``prefix``, or None."""
        node: Optional[_Node[V]] = self._root
        for bit_index in range(prefix.plen):
            if node is None:
                return None
            bit = (prefix.addr >> (31 - bit_index)) & 1
            node = node.one if bit else node.zero
        if node is not None and node.has_value:
            return node.value
        return None

    def __contains__(self, prefix: Prefix) -> bool:
        return self.exact(prefix) is not None

    def lookup(self, addr: int) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix match for ``addr``.

        Returns the (prefix, value) of the most specific stored prefix
        covering ``addr``, or None if nothing covers it.
        """
        node: Optional[_Node[V]] = self._root
        best: Optional[Tuple[int, V]] = None
        depth = 0
        while node is not None:
            if node.has_value:
                best = (depth, node.value)  # type: ignore[arg-type]
            if depth == 32:
                break
            bit = (addr >> (31 - depth)) & 1
            node = node.one if bit else node.zero
            depth += 1
        if best is None:
            return None
        plen, value = best
        return Prefix.of(addr, plen), value

    def lookup_value(self, addr: int) -> Optional[V]:
        """Longest-prefix match returning only the stored value."""
        found = self.lookup(addr)
        return found[1] if found is not None else None

    def lookup_value_batch(self, addrs: Iterable[int]) -> List[Optional[V]]:
        """Longest-prefix match for many addresses at once.

        The serving layer's batched queries land here; inlining the walk
        (no per-address Prefix construction, locals bound once) makes the
        batch path measurably cheaper than N ``lookup_value`` calls.
        """
        root = self._root
        answers: List[Optional[V]] = []
        append = answers.append
        for addr in addrs:
            node: Optional[_Node[V]] = root
            best: Optional[V] = None
            depth = 0
            while node is not None:
                if node.has_value:
                    best = node.value
                if depth == 32:
                    break
                node = node.one if (addr >> (31 - depth)) & 1 else node.zero
                depth += 1
            append(best)
        return answers

    def lookup_all(self, addr: int) -> List[Tuple[Prefix, V]]:
        """All stored prefixes covering ``addr``, least specific first."""
        matches: List[Tuple[Prefix, V]] = []
        node: Optional[_Node[V]] = self._root
        depth = 0
        while node is not None:
            if node.has_value:
                matches.append((Prefix.of(addr, depth), node.value))  # type: ignore[arg-type]
            if depth == 32:
                break
            bit = (addr >> (31 - depth)) & 1
            node = node.one if bit else node.zero
            depth += 1
        return matches

    def covered(self, prefix: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Iterate stored (prefix, value) pairs at or below ``prefix``."""
        node: Optional[_Node[V]] = self._root
        for bit_index in range(prefix.plen):
            if node is None:
                return
            bit = (prefix.addr >> (31 - bit_index)) & 1
            node = node.one if bit else node.zero
        if node is None:
            return
        stack: List[Tuple[_Node[V], int, int]] = [(node, prefix.addr, prefix.plen)]
        while stack:
            current, addr, plen = stack.pop()
            if current.has_value:
                yield Prefix(addr, plen), current.value  # type: ignore[misc]
            if plen == 32:
                continue
            if current.one is not None:
                stack.append((current.one, addr | (1 << (31 - plen)), plen + 1))
            if current.zero is not None:
                stack.append((current.zero, addr, plen + 1))

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Iterate all stored (prefix, value) pairs (unordered)."""
        yield from self.covered(Prefix(0, 0))

    def keys(self) -> Iterator[Prefix]:
        for prefix, _ in self.items():
            yield prefix
