"""Simulated public route collectors (Route Views / RIPE RIS).

A sample of ASes peer with the collectors and export their *best* path per
prefix — exactly the partial view the paper works from: peer-peer links low
in the hierarchy are typically invisible unless a collector peer sits in
the customer cone of one side, which is what produces the "hidden peer"
links of Table 1's trace column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..net.routing import RoutingOracle
from ..rng import make_rng
from ..topology.model import ASKind, Internet
from .table import BGPView, RibEntry

_MAX_PATH = 32


@dataclass
class CollectorConfig:
    n_peers: int = 12
    seed: int = 0
    include_focal_providers: bool = True
    # Route Views peers with hundreds of networks, including customers of
    # large access networks; a couple of those make the focal network's
    # upstream and peering adjacencies publicly visible (as they are for
    # the paper's networks).
    include_focal_customers: int = 2


def _as_path(oracle: RoutingOracle, peer: int, key) -> Optional[Tuple[int, ...]]:
    """The AS path exported by ``peer`` for the routing class ``key``."""
    routes = oracle.class_routes(key)
    path: List[int] = [peer]
    current = peer
    for _ in range(_MAX_PATH):
        if current in key[0]:
            return tuple(path)
        next_as = routes.next_as(current)
        if next_as is None:
            return None
        if next_as == current:
            return tuple(path)
        path.append(next_as)
        current = next_as
    return None


def collect_public_view(
    internet: Internet,
    oracle: RoutingOracle,
    config: Optional[CollectorConfig] = None,
    focal_asn: Optional[int] = None,
) -> BGPView:
    """Assemble the public BGP view from a sample of collector peers."""
    if config is None:
        config = CollectorConfig()
    rng = make_rng(internet.seed, "collectors", str(config.seed))

    tier1s = sorted(
        node.asn for node in internet.ases.values() if node.kind is ASKind.TIER1
    )
    transits = sorted(
        node.asn for node in internet.ases.values() if node.kind is ASKind.TRANSIT
    )
    others = sorted(
        node.asn
        for node in internet.ases.values()
        if node.kind in (ASKind.ACCESS, ASKind.RESEARCH, ASKind.CONTENT)
    )
    peers: List[int] = list(tier1s)
    pool = transits + others
    rng.shuffle(pool)
    for asn in pool:
        if len(peers) >= config.n_peers:
            break
        if asn not in peers and asn != focal_asn:
            peers.append(asn)
    if config.include_focal_providers and focal_asn is not None:
        for provider in internet.graph.providers(focal_asn):
            if provider not in peers:
                peers.append(provider)
    if config.include_focal_customers and focal_asn is not None:
        customers = sorted(internet.graph.customers(focal_asn))
        rng.shuffle(customers)
        # Prefer single-homed customers: they see the focal network's full
        # export (multihomed ones route around it for many prefixes).
        customers.sort(
            key=lambda asn: len(internet.graph.providers(asn)) > 1
        )
        for customer in customers[: config.include_focal_customers]:
            if customer not in peers:
                peers.append(customer)

    view = BGPView()
    for prefix in sorted(internet.prefix_policies):
        policy = internet.prefix_policies[prefix]
        if not policy.announced:
            continue
        key = oracle.class_key(policy)
        for peer in peers:
            path = _as_path(oracle, peer, key)
            if path is None:
                continue
            view.add(RibEntry(peer_asn=peer, prefix=prefix, path=path))
    return view
