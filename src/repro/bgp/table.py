"""The public BGP view: RIB entries, prefix→origin mapping, AS paths.

bdrmap's canonical IP→AS mapping (§5.2) looks up the origin ASes of the
longest matching *publicly announced* prefix of at least /8 and no smaller
than /24.  The view also carries the AS-path corpus used for relationship
inference and the per-AS neighbor sets used by Table 1's coverage analysis.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..addr import Prefix
from ..trie import PrefixTrie


@dataclass(frozen=True)
class RibEntry:
    """One path observed at one collector peer."""

    peer_asn: int
    prefix: Prefix
    path: Tuple[int, ...]  # first element = peer, last element = origin

    @property
    def origin(self) -> int:
        return self.path[-1]


class BGPView:
    """An assembled public routing view."""

    MIN_PLEN = 8
    MAX_PLEN = 24

    def __init__(self) -> None:
        self.entries: List[RibEntry] = []
        self._origins: Dict[Prefix, Set[int]] = defaultdict(set)
        self._trie: Optional[PrefixTrie] = None
        self._neighbors: Optional[Dict[int, Set[int]]] = None

    def add(self, entry: RibEntry) -> None:
        plen = entry.prefix.plen
        if plen < self.MIN_PLEN or plen > self.MAX_PLEN:
            return  # mirror the paper's /8../24 filter
        self.entries.append(entry)
        self._origins[entry.prefix].add(entry.origin)
        self._trie = None
        self._neighbors = None

    # -- prefix → origin -------------------------------------------------------

    def prefixes(self) -> List[Prefix]:
        return sorted(self._origins)

    def origins(self, prefix: Prefix) -> FrozenSet[int]:
        return frozenset(self._origins.get(prefix, ()))

    def _origin_trie(self) -> PrefixTrie:
        if self._trie is None:
            trie: PrefixTrie = PrefixTrie()
            for prefix, origins in self._origins.items():
                trie.insert(prefix, tuple(sorted(origins)))
            self._trie = trie
        return self._trie

    def origins_of_addr(self, addr: int) -> Tuple[int, ...]:
        """Origin ASes of the longest matching announced prefix (may be
        empty — the address is unrouted; may have several — MOAS)."""
        found = self._origin_trie().lookup_value(addr)
        return found if found is not None else ()

    def lookup(self, addr: int) -> Optional[Tuple[Prefix, Tuple[int, ...]]]:
        return self._origin_trie().lookup(addr)

    # -- AS paths and adjacency ---------------------------------------------------

    def paths(self) -> List[Tuple[int, ...]]:
        return [entry.path for entry in self.entries]

    def neighbor_map(self) -> Dict[int, Set[int]]:
        """AS adjacency observed anywhere in the public paths."""
        if self._neighbors is None:
            neighbors: Dict[int, Set[int]] = defaultdict(set)
            for entry in self.entries:
                path = entry.path
                for left, right in zip(path, path[1:]):
                    if left != right:
                        neighbors[left].add(right)
                        neighbors[right].add(left)
            self._neighbors = neighbors
        return self._neighbors

    def neighbors_of(self, asn: int) -> Set[int]:
        return set(self.neighbor_map().get(asn, ()))

    def neighbors_of_group(self, asns: Iterable[int]) -> Set[int]:
        """BGP-observed neighbors of a sibling group (excluding the group)."""
        group = set(asns)
        found: Set[int] = set()
        for asn in group:
            found.update(self.neighbor_map().get(asn, ()))
        return found - group

    def prefixes_originated_by(self, asns: Iterable[int]) -> List[Prefix]:
        group = set(asns)
        return sorted(
            prefix
            for prefix, origins in self._origins.items()
            if origins & group
        )
