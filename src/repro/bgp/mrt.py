"""Text serialization of the public BGP view.

Route Views and RIS publish RIB snapshots; researchers consume them via
``bgpdump``, whose one-line format is the lingua franca::

    TABLE_DUMP2|1452985200|B|<peer-ip>|<peer-asn>|<prefix>|<as-path>|IGP

bdrmap's §5.2 inputs are files; this module lets the simulated view be
written and re-read the same way (and makes archived views diffable).
"""

from __future__ import annotations

from typing import List

from ..addr import Prefix, ntoa
from ..errors import DataError
from .table import BGPView, RibEntry

_SNAPSHOT_TIME = 1452985200  # January 2016, the paper's data epoch


def dump_rib(view: BGPView) -> str:
    """Serialize a view in bgpdump's TABLE_DUMP2 one-line format."""
    lines: List[str] = []
    for entry in sorted(
        view.entries, key=lambda e: (e.prefix, e.peer_asn, e.path)
    ):
        # Peer IP is synthesized from the peer ASN (collectors record the
        # session address; our simulated sessions do not have one).
        peer_ip = ntoa(0xC0000000 | (entry.peer_asn & 0xFFFF))
        lines.append(
            "TABLE_DUMP2|%d|B|%s|%d|%s|%s|IGP"
            % (
                _SNAPSHOT_TIME,
                peer_ip,
                entry.peer_asn,
                entry.prefix,
                " ".join(str(asn) for asn in entry.path),
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_rib(text: str) -> BGPView:
    """Parse TABLE_DUMP2 text back into a :class:`BGPView`.

    AS-path prepending is preserved as-is (the relationship inference
    collapses it); ``{asn,asn}`` AS-sets terminate parsing of a path the
    way most consumers treat them (drop the set, keep the sequence).
    """
    view = BGPView()
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) < 7 or fields[0] != "TABLE_DUMP2":
            raise DataError("bad TABLE_DUMP2 row at line %d" % line_no)
        prefix_text = fields[5]
        path_text = fields[6]
        try:
            prefix = Prefix.parse(prefix_text)
        except Exception as exc:
            raise DataError(
                "bad prefix %r at line %d" % (prefix_text, line_no)
            ) from exc
        path: List[int] = []
        for token in path_text.split():
            if token.startswith("{"):
                break  # AS-set: stop here, sequence before it stands
            if not token.isdigit():
                raise DataError(
                    "bad AS path token %r at line %d" % (token, line_no)
                )
            path.append(int(token))
        if not path:
            continue
        if not fields[4].isdigit():
            raise DataError("bad peer ASN at line %d" % line_no)
        view.add(
            RibEntry(peer_asn=int(fields[4]), prefix=prefix, path=tuple(path))
        )
    return view
