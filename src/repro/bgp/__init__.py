"""Public BGP view substrate: simulated Route Views / RIPE RIS collectors
and the prefix→origin mapping bdrmap derives from them (§5.2)."""

from .table import BGPView, RibEntry
from .collectors import CollectorConfig, collect_public_view
from .mrt import dump_rib, parse_rib

__all__ = [
    "BGPView",
    "RibEntry",
    "CollectorConfig",
    "collect_public_view",
    "dump_rib",
    "parse_rib",
]
