"""Incremental epoch pipeline: delta-driven re-inference (§4 longitudinal).

The deployed bdrmap re-runs continuously because interconnection changes
— but real churn is sparse and localized, so paying a full re-probe,
full heuristic re-run, and full compile every epoch scales cost with
world size instead of churn.  This module is the delta path:

* :class:`TopologyDelta` — the structured mutation events recorded by
  :mod:`repro.topology.evolve` since the previous epoch.
* :class:`EpochCollector` / :class:`EpochAliasResolver` — a collection
  engine that caches every *raw probing unit* (per-target traceroute
  batches, Mercator, Ally, velocity, prefixscan) together with a
  forwarding signature of everything the unit's behaviour depends on.
  A unit whose signature is unchanged is replayed from cache without
  sending a probe; everything else re-probes.  Crucially the full and
  delta modes share one canonical probing discipline (sorted targets,
  ``network.reset()`` before every probing unit), so a replayed unit's
  bytes are exactly what a fresh run would have produced.
* :func:`run_incremental_inference` — dirty-tracking over the heuristic
  pass registry: per-router pass applications from the previous epoch
  are recorded as replayable :class:`ApplicationEvent`\\ s (consult
  trail + deciding pass + full attempted assignment list + the AS set
  whose relationship annotations the decision could have read); a
  router re-runs its passes live only when its inputs changed.
* :class:`EpochRunner` — drives collection → inference → compile per
  epoch, patches the compiled map in place
  (:func:`repro.serving.compiled.patch_compiled_map`), and emits an
  :class:`EpochChain` of versioned deltas that
  :func:`repro.analysis.diff.diff_border_maps` can replay and the
  sharded tier can ship as patches.

Correctness bar: every epoch's patched compiled map is byte-identical
to a from-scratch recompute of the mutated world (asserted in tests and
`benchmarks/test_bench_epochs.py`); the win is cost proportional to
churn.

Epoch mode refuses fault plans (probing must be loss-free for replay
soundness) and shared stop sets (cross-target coupling would break
per-unit independence).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..alias import AliasResolver
from ..errors import DataError, TopologyError
from ..net.routing import StepKind
from ..obs.metrics import LATENCY_BUCKETS_MS, MetricsRegistry, NULL_REGISTRY
from ..obs.provenance import ASSIGNED, CO_ASSIGNED, CONSIDERED, DEGRADED
from ..obs.trace import NULL_TRACER, Tracer, perf_clock
from ..rng import make_rng
from ..topology.evolve import (
    LinkAdded,
    MutationEvent,
    add_border_link,
    move_border_link,
    rebuild_network,
    remove_link,
)
from ..topology.model import LinkKind
from .bdrmap import BdrmapConfig, DataBundle, build_data_bundle
from .collection import Collection, CollectionConfig, Collector, TargetKey
from .heuristics import (
    GraphHeuristicPass,
    _apply_passes_to_router,
    _assemble_links,
    _PARTIAL_EVIDENCE_ERRORS,
    build_context,
    build_passes,
)
from .report import BdrmapResult
from .routergraph import build_router_graph
from .targets import TargetBlock, group_by_origin

try:
    from ..net.network import _MAX_HOPS
except ImportError:  # pragma: no cover - defensive fallback
    _MAX_HOPS = 64

# A forwarding signature is a nested tuple; a router's stable identity
# across epochs is its sorted address tuple (addresses are unique to one
# router within a collection, so keys never collide).
Sig = Tuple
RouterKey = Tuple[int, ...]


class EpochError(DataError):
    """Epoch-mode precondition or chain-consistency violation."""


# ---------------------------------------------------------------- topology delta


@dataclass(frozen=True)
class TopologyDelta:
    """The mutation events applied since the previous epoch."""

    events: Tuple[MutationEvent, ...] = ()

    @property
    def touched_addrs(self) -> FrozenSet[int]:
        found: Set[int] = set()
        for event in self.events:
            found.update(event.touched_addrs)
        return frozenset(found)

    def to_list(self) -> List[dict]:
        return [event.to_dict() for event in self.events]

    def __bool__(self) -> bool:
        return bool(self.events)


# ---------------------------------------------------------------- forward signatures


class SigCache:
    """Memoized forwarding signatures for one (network, VP) pair.

    ``signature(dst)`` captures everything that determines the wire
    behaviour of probing ``dst`` from the VP: the oracle walk (router,
    link, interface addresses, border crossings), each hop router's
    reply selection inputs (next-AS toward the destination, the reply
    step back toward the VP, the router's full address set), and the
    terminal fate (arrival / host liveness / unreachable).  Two epochs
    whose signatures for a destination are equal produce byte-identical
    probe exchanges for it — the replay soundness contract.
    """

    def __init__(self, network, vp_addr: int, first_router: int) -> None:
        self.network = network
        self.vp_addr = vp_addr
        self.first_router = first_router
        self._memo: Dict[int, Sig] = {}
        self._reply_memo: Dict[int, Sig] = {}

    def _reply_sig(self, router_id: int) -> Sig:
        cached = self._reply_memo.get(router_id)
        if cached is not None:
            return cached
        step = self.network.oracle.step(router_id, self.vp_addr)
        sig = (step.kind.value, step.out_addr, step.link_id)
        self._reply_memo[router_id] = sig
        return sig

    def signature(self, dst: int) -> Sig:
        cached = self._memo.get(dst)
        if cached is not None:
            return cached
        oracle = self.network.oracle
        internet = self.network.internet
        router_id = self.first_router
        hops: List[Sig] = []
        for _ in range(_MAX_HOPS):
            step = oracle.step(router_id, dst)
            router = internet.routers[router_id]
            addrs = tuple(sorted(router.addresses()))
            if step.kind is StepKind.ARRIVE:
                hops.append(("arrive", router_id, self._reply_sig(router_id),
                             addrs))
                break
            if step.kind is StepKind.HOST:
                live = (
                    step.policy is not None
                    and dst in step.policy.live_hosts
                )
                hops.append(("host", router_id, live, addrs))
                break
            if step.kind is StepKind.UNREACHABLE:
                hops.append(("unreachable", router_id, addrs))
                break
            hops.append((
                router_id,
                step.link_id,
                step.out_addr,
                step.in_addr,
                step.crosses_border,
                oracle.next_as_of(router.asn, dst),
                self._reply_sig(router_id),
                addrs,
            ))
            router_id = step.next_router
        else:
            hops.append(("cap",))
        sig = tuple(hops)
        self._memo[dst] = sig
        return sig


class ProbeMeter:
    """Counts probes actually sent across the per-unit network resets.

    ``network.reset()`` zeroes ``probes_sent``, so the canonical
    discipline (reset before every probing unit) needs an accumulator:
    call :meth:`unit_reset` before each unit and :meth:`settle` once at
    the end."""

    def __init__(self, network) -> None:
        self.network = network
        self.total = 0

    def begin(self) -> None:
        self.network.reset()
        self.total = 0

    def unit_reset(self) -> None:
        self.total += self.network.probes_sent
        self.network.reset()

    def settle(self) -> int:
        self.total += self.network.probes_sent
        self.network.probes_sent = 0
        return self.total


# ---------------------------------------------------------------- raw unit caches


@dataclass
class TargetRecord:
    """One target AS's cached traceroute unit."""

    blocks_sig: Tuple
    candidate_sigs: Tuple[Tuple[int, Sig], ...]
    external: Tuple[Tuple[int, bool], ...]   # observed addr -> was external
    traces: List = field(default_factory=list)


@dataclass
class RawUnits:
    """Cross-epoch cache of raw alias-probing unit results, each stored
    with the forwarding signatures it depends on."""

    mercator: Dict[int, Tuple[object, Sig]] = field(default_factory=dict)
    velocity: Dict[int, Tuple[object, Sig]] = field(default_factory=dict)
    ally: Dict[Tuple[int, int], Tuple[object, Tuple]] = field(
        default_factory=dict
    )
    prefixscan: Dict[Tuple[int, int], Tuple[object, Tuple]] = field(
        default_factory=dict
    )


@dataclass
class EpochCollectStats:
    probes: int = 0
    targets_replayed: int = 0
    targets_probed: int = 0
    traces_replayed: int = 0
    traces_probed: int = 0
    units_reused: int = 0
    units_probed: int = 0


class EpochAliasResolver(AliasResolver):
    """An :class:`AliasResolver` whose raw probing units are memoized
    across epochs.  The resolver logic (evidence, caches, candidate-set
    screening) runs normally every epoch — only the wire exchanges are
    replayed, so the evidence store is rebuilt identically by
    construction."""

    def __init__(
        self,
        network,
        vp_addr: int,
        units: RawUnits,
        sigs: SigCache,
        meter: ProbeMeter,
        stats: EpochCollectStats,
        **kwargs,
    ) -> None:
        super().__init__(network, vp_addr, **kwargs)
        self._units = units
        self._sigs = sigs
        self._meter = meter
        self._stats = stats

    def _mercator_raw(self, addr):
        record = self._units.mercator.get(addr)
        sig = self._sigs.signature(addr)
        if record is not None and record[1] == sig:
            self._stats.units_reused += 1
            return record[0]
        self._meter.unit_reset()
        result = super()._mercator_raw(addr)
        self._units.mercator[addr] = (result, sig)
        self._stats.units_probed += 1
        return result

    def _velocity_raw(self, addr):
        record = self._units.velocity.get(addr)
        sig = self._sigs.signature(addr)
        if record is not None and record[1] == sig:
            self._stats.units_reused += 1
            return record[0]
        self._meter.unit_reset()
        result = super()._velocity_raw(addr)
        self._units.velocity[addr] = (result, sig)
        self._stats.units_probed += 1
        return result

    def _ally_deps(self, a: int, b: int) -> Tuple:
        deps: List = [self._sigs.signature(a), self._sigs.signature(b)]
        for endpoint in (a, b):
            aim = (
                self._ttl_prober.aim(endpoint)
                if self._ttl_prober is not None
                else None
            )
            deps.append(aim)
            if aim is not None:
                deps.append(self._sigs.signature(aim[0]))
        return tuple(deps)

    def _ally_raw(self, a: int, b: int):
        deps = self._ally_deps(a, b)
        record = self._units.ally.get((a, b))
        if record is not None and record[1] == deps:
            self._stats.units_reused += 1
            return record[0]
        self._meter.unit_reset()
        result = super()._ally_raw(a, b)
        self._units.ally[(a, b)] = (result, deps)
        self._stats.units_probed += 1
        return result


class EpochCollector(Collector):
    """The §5.3 collection under the canonical epoch discipline.

    Targets run sequentially in sorted order with a ``network.reset()``
    before every probing unit, in *both* full and delta modes — a unit's
    bytes then depend only on its own forwarding signatures, never on
    what ran before it, which is what makes cross-epoch replay sound.
    A target is replayed from cache when its block list, every candidate
    destination's forwarding signature, and the externality of every
    previously observed hop address are unchanged.
    """

    def __init__(
        self,
        network,
        vp,
        view,
        vp_ases,
        units: RawUnits,
        targets: Dict[TargetKey, TargetRecord],
        config: Optional[CollectionConfig] = None,
        metrics=None,
        label: str = "vp",
    ) -> None:
        config = config or CollectionConfig()
        if config.share_stop_sets:
            raise EpochError(
                "epoch mode requires share_stop_sets=False: shared stop "
                "sets couple targets across probing units"
            )
        if network.faults is not None:
            raise EpochError(
                "epoch mode requires a fault-free network: lossy probing "
                "is not replayable"
            )
        self.stats = EpochCollectStats()
        self.meter = ProbeMeter(network)
        self.sigs = SigCache(network, vp.addr, vp.first_router)
        self._prev_targets = targets
        self._next_targets: Dict[TargetKey, TargetRecord] = {}
        resolver = EpochAliasResolver(
            network,
            vp.addr,
            units=units,
            sigs=self.sigs,
            meter=self.meter,
            stats=self.stats,
            ally_rounds=config.ally_rounds,
            ally_interval=config.ally_interval,
            retry=config.retry,
            metrics=metrics,
        )
        super().__init__(
            network,
            vp.addr,
            view,
            vp_ases,
            config=config,
            resolver=resolver,
            metrics=metrics,
            label=label,
        )
        self._units = units

    # -- traceroute phase ---------------------------------------------------

    @staticmethod
    def _blocks_sig(blocks: List[TargetBlock]) -> Tuple:
        return tuple(
            (block.block.first, block.block.last, tuple(block.origins))
            for block in blocks
        )

    def _candidate_sigs(
        self, blocks: List[TargetBlock]
    ) -> Tuple[Tuple[int, Sig], ...]:
        found: List[Tuple[int, Sig]] = []
        for block in blocks:
            for addr in block.candidate_addrs(self.config.max_addrs_per_block):
                found.append((addr, self.sigs.signature(addr)))
        return tuple(found)

    def _target_clean(
        self, record: TargetRecord, blocks: List[TargetBlock],
        candidate_sigs: Tuple,
    ) -> bool:
        if record.blocks_sig != self._blocks_sig(blocks):
            return False
        if record.candidate_sigs != candidate_sigs:
            return False
        for addr, was_external in record.external:
            if self._is_external(addr) != was_external:
                return False
        return True

    def _observed_external(self, traces) -> Tuple:
        seen: Dict[int, bool] = {}
        for trace in traces:
            for hop in trace.hops:
                if hop.addr is not None and hop.addr not in seen:
                    seen[hop.addr] = self._is_external(hop.addr)
        return tuple(sorted(seen.items()))

    def _replay_target(self, key: TargetKey, record: TargetRecord) -> None:
        stop = (
            self.collection.stop_set.for_target(key)
            if self.config.use_stop_set
            else None
        )
        for trace in record.traces:
            if self.metrics.enabled:
                self.metrics.observe("trace.hops", len(trace.hops))
            self.collection.traces.append(trace)
            self.collection.trace_keys.append(key)
            self.collection.per_target.setdefault(key, []).append(trace)
            self.collection.traces_run += 1
            first_external = self._first_external(trace)
            if first_external is not None and stop is not None:
                stop.add(first_external)
        self.stats.targets_replayed += 1
        self.stats.traces_replayed += len(record.traces)

    def _probe_target(self, key: TargetKey, blocks: List[TargetBlock]) -> None:
        self.meter.unit_reset()
        before = len(self.collection.traces)
        for _ in self._target_task(key, blocks):
            pass
        fresh = self.collection.traces[before:]
        self.stats.targets_probed += 1
        self.stats.traces_probed += len(fresh)

    def run_traceroutes(self) -> None:
        groups = group_by_origin(
            TargetBlock(block=t.block, origins=t.origins)
            for t in self._targets()
        )
        for key in sorted(groups):
            blocks = groups[key]
            candidate_sigs = self._candidate_sigs(blocks)
            record = self._prev_targets.get(key)
            if record is not None and self._target_clean(
                record, blocks, candidate_sigs
            ):
                self._replay_target(key, record)
                self._next_targets[key] = record
                continue
            self._probe_target(key, blocks)
            self._next_targets[key] = TargetRecord(
                blocks_sig=self._blocks_sig(blocks),
                candidate_sigs=candidate_sigs,
                external=self._observed_external(
                    self.collection.per_target.get(key, ())
                ),
                traces=list(self.collection.per_target.get(key, ())),
            )

    # -- alias phase --------------------------------------------------------

    def _prefixscan_deps(self, prev: int, nxt: int) -> Tuple:
        from ..topology.addressing import p2p_mate

        addrs = [prev, nxt]
        for plen in (31, 30):
            mate = p2p_mate(nxt, plen)
            if mate is not None and mate not in addrs:
                addrs.append(mate)
        return tuple(
            (addr, self.sigs.signature(addr)) for addr in addrs
        )

    def _prefixscan(self, prev: int, nxt: int):
        deps = self._prefixscan_deps(prev, nxt)
        record = self._units.prefixscan.get((prev, nxt))
        if record is not None and record[1] == deps:
            self.stats.units_reused += 1
            return record[0]
        self.meter.unit_reset()
        result = super()._prefixscan(prev, nxt)
        self._units.prefixscan[(prev, nxt)] = (result, deps)
        self.stats.units_probed += 1
        return result

    # -- entry point --------------------------------------------------------

    def run(self) -> Collection:
        self.meter.begin()
        self.run_traceroutes()
        self.run_alias_resolution()
        self.stats.probes = self.meter.settle()
        self.collection.probes_used = self.stats.probes
        # Swap in the refreshed target cache only after a complete run.
        self._prev_targets.clear()
        self._prev_targets.update(self._next_targets)
        return self.collection


# ---------------------------------------------------------------- inference events


@dataclass(frozen=True)
class ApplicationEvent:
    """A replayable record of one router's trip through the router-level
    pass sequence: the consult trail (pass, verdict, error type), the
    deciding pass, its *full* attempted assignment list (applied
    only-if-unowned at replay, exactly like the live loop), and the AS
    set whose relationship annotations the decision could have read."""

    trail: Tuple[Tuple[str, str, Optional[str]], ...]
    deciding: Optional[str]
    assignments: Tuple[Tuple[RouterKey, Optional[int], Optional[str]], ...]
    as_deps: FrozenSet[int]


@dataclass
class InferenceSnapshot:
    """Everything the dirty computation compares across epochs."""

    rows: Dict[RouterKey, Tuple] = field(default_factory=dict)
    addr_info: Dict[int, Tuple] = field(default_factory=dict)
    path_sigs: Dict[Tuple, Tuple] = field(default_factory=dict)
    rels_fps: Dict[int, Tuple] = field(default_factory=dict)


@dataclass
class InferenceCache:
    """Per-VP cross-epoch inference state."""

    snapshot: Optional[InferenceSnapshot] = None
    events: Dict[RouterKey, ApplicationEvent] = field(default_factory=dict)
    config_fp: Optional[str] = None


@dataclass
class EpochInferStats:
    routers_live: int = 0
    routers_replayed: int = 0
    dirty_routers: int = 0


def _router_key(router) -> RouterKey:
    return tuple(sorted(router.all_addrs()))


def _router_row(ctx, router) -> Tuple:
    return (
        tuple(sorted(router.addrs)),
        tuple(sorted(router.extra_addrs)),
        router.min_dist,
        tuple(sorted(router.dsts)),
        tuple(sorted(router.last_hop_for)),
        tuple(sorted(_router_key(n) for n in ctx.succ_routers(router))),
        tuple(sorted(_router_key(n) for n in ctx.pred_routers(router))),
    )


def _path_sig(path, keys_by_rid) -> Tuple:
    return (
        tuple(keys_by_rid.get(rid, ()) for rid in path.routers),
        tuple(path.had_gap_before),
        path.final_kind.value if path.final_kind is not None else None,
        path.final_src,
        path.reached,
    )


def _rels_fingerprints(rels) -> Dict[int, Tuple]:
    c2p_by_as: Dict[int, List] = {}
    for customer, provider in rels.c2p:
        c2p_by_as.setdefault(customer, []).append((customer, provider))
        c2p_by_as.setdefault(provider, []).append((customer, provider))
    p2p_by_as: Dict[int, List] = {}
    for pair in rels.p2p:
        canon = tuple(sorted(pair))
        for asn in pair:
            p2p_by_as.setdefault(asn, []).append(canon)
    ases = set(c2p_by_as) | set(p2p_by_as) | set(rels.siblings)
    return {
        asn: (
            tuple(sorted(c2p_by_as.get(asn, ()))),
            tuple(sorted(p2p_by_as.get(asn, ()))),
            tuple(sorted(rels.siblings.get(asn, frozenset()))),
        )
        for asn in ases
    }


def _capture_snapshot(ctx) -> InferenceSnapshot:
    snap = InferenceSnapshot()
    keys_by_rid: Dict[int, RouterKey] = {}
    for rid, router in ctx.graph.routers.items():
        keys_by_rid[rid] = _router_key(router)
    for rid, router in ctx.graph.routers.items():
        snap.rows[keys_by_rid[rid]] = _router_row(ctx, router)
    for addr, cls in ctx.addr_class.items():
        snap.addr_info[addr] = (cls, tuple(ctx.addr_origins.get(addr, ())))
    for path in ctx.graph.paths:
        key = (tuple(path.key), path.dst)
        sig = _path_sig(path, keys_by_rid)
        existing = snap.path_sigs.get(key, ())
        snap.path_sigs[key] = existing + (sig,)
    snap.rels_fps = _rels_fingerprints(ctx.rels)
    return snap


def _as_deps(ctx, router, paths_by_rid) -> FrozenSet[int]:
    """The conservative AS-dependency cone of one router's decision:
    every AS whose relationship annotations any router-level pass could
    have consulted while deciding this router (tie-breaks, providers_of
    votes over destination and on-path external ASes, sibling collapse)."""
    deps: Set[int] = {ctx.focal_asn}
    deps.update(ctx.vp_ases)
    cone = {router.rid}
    for hop in (ctx.succ_routers(router) + ctx.pred_routers(router)):
        cone.add(hop.rid)
        for hop2 in (ctx.succ_routers(hop) + ctx.pred_routers(hop)):
            cone.add(hop2.rid)
    for rid in cone:
        near = ctx.graph.routers.get(rid)
        if near is None:
            continue
        deps.update(near.dsts)
        deps.update(near.last_hop_for)
        for addr in near.all_addrs():
            deps.update(ctx.addr_origins.get(addr, ()))
    for path in paths_by_rid.get(router.rid, ()):
        for rid in path.routers:
            on_path = ctx.graph.routers.get(rid)
            if on_path is None:
                continue
            for addr in on_path.all_addrs():
                deps.update(ctx.addr_origins.get(addr, ()))
    return frozenset(deps)


def _dirty_keys(
    snap: InferenceSnapshot, cache: InferenceCache
) -> Set[RouterKey]:
    prev = cache.snapshot
    assert prev is not None
    changed: Set[RouterKey] = set()
    key_of_addr: Dict[int, RouterKey] = {}
    for key in snap.rows:
        for addr in key:
            key_of_addr[addr] = key
    for key, row in snap.rows.items():
        if prev.rows.get(key) != row:
            changed.add(key)
    for addr, info in snap.addr_info.items():
        if addr in prev.addr_info and prev.addr_info[addr] != info:
            owner = key_of_addr.get(addr)
            if owner is not None:
                changed.add(owner)

    adjacency: Dict[RouterKey, Set[RouterKey]] = {}
    for key, row in snap.rows.items():
        neighbors = set(row[5]) | set(row[6])
        adjacency.setdefault(key, set()).update(neighbors)
        for neighbor in neighbors:
            adjacency.setdefault(neighbor, set()).add(key)

    dirty = set(changed)
    frontier = set(changed)
    for _ in range(2):
        frontier = {
            neighbor
            for key in frontier
            for neighbor in adjacency.get(key, ())
        } - dirty
        dirty |= frontier

    def path_routers(sigs) -> Set[RouterKey]:
        keys: Set[RouterKey] = set()
        for sig in sigs:
            keys.update(k for k in sig[0] if k)
        return keys

    for pkey, sigs in snap.path_sigs.items():
        on_path = path_routers(sigs)
        if prev.path_sigs.get(pkey) != sigs or (on_path & changed):
            dirty |= on_path
            old = prev.path_sigs.get(pkey)
            if old is not None:
                dirty |= {k for k in path_routers(old) if k in snap.rows}
    for pkey in set(prev.path_sigs) - set(snap.path_sigs):
        dirty |= {
            k for k in path_routers(prev.path_sigs[pkey]) if k in snap.rows
        }

    changed_ases = {
        asn
        for asn in set(prev.rels_fps) | set(snap.rels_fps)
        if prev.rels_fps.get(asn) != snap.rels_fps.get(asn)
    }
    if changed_ases:
        for key, event in cache.events.items():
            if event.as_deps & changed_ases:
                dirty.add(key)
    return dirty


def _replay_event(ctx, router, event: ApplicationEvent, pass_map) -> bool:
    """Re-emit a recorded pass application against the current graph.

    Resolves everything first and returns False (no side effects) when
    the record no longer maps onto the graph — the caller then runs the
    passes live."""
    targets = []
    for key, owner, reason in event.assignments:
        if not key:
            return False
        rid = ctx.graph.by_addr.get(key[0])
        target = ctx.graph.routers.get(rid) if rid is not None else None
        if target is None or _router_key(target) != key:
            return False
        targets.append((target, owner, reason))
    if event.deciding is not None and event.deciding not in pass_map:
        return False
    for name, _, _ in event.trail:
        if name not in pass_map:
            return False

    provenance = ctx.provenance
    for name, verdict, error in event.trail:
        section = pass_map[name].section
        if verdict == DEGRADED:
            ctx.degrade(name)
            provenance.add(
                router.rid, name, section, DEGRADED,
                evidence={"error": error},
            )
        else:
            provenance.add(router.rid, name, section, CONSIDERED)
    if event.deciding is not None:
        deciding = pass_map[event.deciding]
        for target, owner, reason in targets:
            if target.owner is None:
                target.owner = owner
                target.reason = reason
                ctx.record(deciding.name, reason)
                if target.rid == router.rid:
                    provenance.add(
                        router.rid, deciding.name, deciding.section,
                        ASSIGNED, owner=owner, reason=reason,
                    )
                else:
                    provenance.add(
                        target.rid, deciding.name, deciding.section,
                        CO_ASSIGNED, owner=owner, reason=reason,
                        evidence={"via_router": router.rid},
                    )
    return True


def _config_fingerprint(config: BdrmapConfig) -> str:
    return repr((config.collection, config.heuristics))


def run_incremental_inference(
    ctx,
    cache: InferenceCache,
    config_fp: str,
    stats: Optional[EpochInferStats] = None,
    force_full: bool = False,
):
    """:func:`repro.core.heuristics.run_inference`, with the router-level
    pass loop replayed from the previous epoch's events wherever the
    dirty computation proves the inputs unchanged.  Graph-level passes,
    link assembly, and (when enabled) refinement always run live —
    they read ownership state, which is cheap to recompute and unsafe
    to replay."""
    stats = stats if stats is not None else EpochInferStats()
    passes = build_passes(ctx.config)
    router_passes = [
        p for p in passes if not isinstance(p, GraphHeuristicPass)
    ]
    pre_assembly = [
        p
        for p in passes
        if isinstance(p, GraphHeuristicPass) and not p.after_link_assembly
    ]
    post_assembly = [
        p
        for p in passes
        if isinstance(p, GraphHeuristicPass) and p.after_link_assembly
    ]
    pass_map = {p.name: p for p in router_passes}
    tracer = ctx.tracer
    with tracer.span("inference.prepare"):
        ctx.prepare()
    snap = _capture_snapshot(ctx)
    full = (
        force_full
        or cache.snapshot is None
        or cache.config_fp != config_fp
        or ctx.config.use_refinement
    )
    dirty: Set[RouterKey] = set()
    if not full:
        dirty = _dirty_keys(snap, cache)
    stats.dirty_routers = len(dirty)

    paths_by_rid: Dict[int, List] = {}
    for path in ctx.graph.paths:
        for rid in path.routers:
            paths_by_rid.setdefault(rid, []).append(path)

    events: Dict[RouterKey, ApplicationEvent] = {}

    def observer(router, trail, deciding, attempted):
        events[_router_key(router)] = ApplicationEvent(
            trail=tuple(trail),
            deciding=deciding,
            assignments=tuple(
                (_router_key(a.router), a.owner, a.reason)
                for a in attempted
            ),
            as_deps=_as_deps(ctx, router, paths_by_rid),
        )

    with tracer.span("inference.router_passes"):
        for router in ctx.graph.by_distance():
            if router.owner is not None:
                continue
            key = _router_key(router)
            event = None if full else cache.events.get(key)
            if (
                event is not None
                and key not in dirty
                and _replay_event(ctx, router, event, pass_map)
            ):
                events[key] = event
                stats.routers_replayed += 1
            else:
                _apply_passes_to_router(
                    ctx, router, router_passes, observer=observer
                )
                stats.routers_live += 1
    for heuristic in pre_assembly:
        with tracer.span("pass.%s" % heuristic.name):
            try:
                heuristic.apply_graph(ctx)
            except _PARTIAL_EVIDENCE_ERRORS:
                ctx.degrade(heuristic.name)
    if ctx.config.use_refinement:
        from .refine import refine_ownership

        with tracer.span("inference.refine"):
            refine_ownership(ctx.graph, ctx.rels, ctx.vp_ases, ctx.focal_asn)
    with tracer.span("inference.link_assembly"):
        _assemble_links(ctx)
    for heuristic in post_assembly:
        with tracer.span("pass.%s" % heuristic.name):
            try:
                heuristic.apply_graph(ctx)
            except _PARTIAL_EVIDENCE_ERRORS:
                ctx.degrade(heuristic.name)

    cache.snapshot = snap
    cache.events = events
    cache.config_fp = config_fp
    return ctx.links


# ---------------------------------------------------------------- epoch chain


@dataclass
class EpochCost:
    """What one epoch actually cost, the quantities the ≥3x delta-vs-full
    bench floors are asserted over."""

    probes: int = 0
    traces_probed: int = 0
    traces_replayed: int = 0
    targets_probed: int = 0
    targets_replayed: int = 0
    units_probed: int = 0
    units_reused: int = 0
    routers_live: int = 0
    routers_replayed: int = 0
    compile_seconds: float = 0.0
    sections_patched: int = 0
    sections_reused: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class EpochRecord:
    """One link of the epoch chain."""

    epoch: int
    mode: str                      # "full" | "delta"
    events: List[dict]
    cost: EpochCost
    diff: Optional[dict]
    map_path: Optional[str] = None
    patch_path: Optional[str] = None
    section_crcs: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "mode": self.mode,
            "events": self.events,
            "cost": self.cost.to_dict(),
            "diff": self.diff,
            "map_path": self.map_path,
            "patch_path": self.patch_path,
            "section_crcs": dict(self.section_crcs),
        }


@dataclass
class EpochChain:
    """The versioned delta sequence for one longitudinal run."""

    records: List[EpochRecord] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "format": "bdrmap-repro-epoch-chain/1",
            "records": [record.to_dict() for record in self.records],
        }

    def save(self, path: str) -> None:
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")

    @staticmethod
    def load(path: str) -> dict:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)


class EpochRunner:
    """Drive collection → inference → compile per epoch, incrementally.

    One runner owns one scenario's longitudinal state: per-VP raw-unit
    and inference caches, the previous compiled map, and the chain of
    :class:`EpochRecord`\\ s.  ``force_full=True`` disables every cache
    (the from-scratch baseline the byte-identity bar is measured
    against)."""

    def __init__(
        self,
        scenario,
        config: Optional[BdrmapConfig] = None,
        out_dir: Optional[str] = None,
        source: str = "epochs",
        first_epoch: int = 0,
        force_full: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.scenario = scenario
        self.config = config or BdrmapConfig()
        self.out_dir = out_dir
        self.source = source
        self.force_full = force_full
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.chain = EpochChain()
        self._epoch = first_epoch
        self._mutation_cursor = len(scenario.mutations)
        self._units: Dict[str, RawUnits] = {}
        self._targets: Dict[str, Dict[TargetKey, TargetRecord]] = {}
        self._infer: Dict[str, InferenceCache] = {}
        self._prev_bmap = None
        self._prev_compiled = None
        self._prev_map_path: Optional[str] = None
        #: The dict BorderMap of each completed epoch, in order (tests
        #: compare these against from-scratch recomputes).
        self.result_maps: List = []
        if out_dir is not None:
            os.makedirs(out_dir, exist_ok=True)

    # -- helpers ------------------------------------------------------------

    def _consume_delta(self) -> TopologyDelta:
        events = tuple(self.scenario.mutations[self._mutation_cursor:])
        self._mutation_cursor = len(self.scenario.mutations)
        return TopologyDelta(events=events)

    def _run_vp(self, vp, data: DataBundle, cost: EpochCost) -> BdrmapResult:
        name = vp.name
        if self.force_full:
            units: RawUnits = RawUnits()
            targets: Dict[TargetKey, TargetRecord] = {}
            infer_cache = InferenceCache()
        else:
            units = self._units.setdefault(name, RawUnits())
            targets = self._targets.setdefault(name, {})
            infer_cache = self._infer.setdefault(name, InferenceCache())
        with self.tracer.span("epoch.collect", vp=name):
            collector = EpochCollector(
                self.scenario.network,
                vp,
                data.view,
                data.vp_ases,
                units=units,
                targets=targets,
                config=self.config.collection,
                metrics=self.metrics,
                label=name,
            )
            collection = collector.run()
        with self.tracer.span("epoch.infer", vp=name):
            graph = build_router_graph(collection)
            ctx = build_context(
                graph=graph,
                collection=collection,
                data=data,
                config=self.config.heuristics,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            infer_stats = EpochInferStats()
            links = run_incremental_inference(
                ctx,
                infer_cache,
                _config_fingerprint(self.config),
                stats=infer_stats,
                force_full=self.force_full,
            )
        stats = collector.stats
        cost.probes += stats.probes
        cost.traces_probed += stats.traces_probed
        cost.traces_replayed += stats.traces_replayed
        cost.targets_probed += stats.targets_probed
        cost.targets_replayed += stats.targets_replayed
        cost.units_probed += stats.units_probed
        cost.units_reused += stats.units_reused
        cost.routers_live += infer_stats.routers_live
        cost.routers_replayed += infer_stats.routers_replayed
        return BdrmapResult(
            vp_name=vp.name,
            vp_addr=vp.addr,
            focal_asn=data.focal_asn,
            vp_ases=set(data.vp_ases),
            graph=graph,
            links=links,
            probes_used=collection.probes_used,
            traces_run=collection.traces_run,
            runtime_virtual_seconds=0.0,
            provenance=list(ctx.provenance.records),
        )

    # -- the epoch ----------------------------------------------------------

    def run_epoch(self) -> EpochRecord:
        """Measure the world as it stands now: one epoch of the chain."""
        from ..analysis.diff import diff_border_maps
        from ..serving.bordermap import compile_border_map
        from ..serving.compiled import (
            compile_map,
            patch_compiled_map,
            save_compiled_map,
            save_map_patch,
        )

        scenario = self.scenario
        scenario.ensure_forwarding_current()
        if scenario.network.faults is not None:
            raise EpochError(
                "epoch mode requires a fault-free network: lossy probing "
                "is not replayable"
            )
        epoch = self._epoch
        delta = self._consume_delta()
        cost = EpochCost()
        with self.tracer.span("epoch", index=epoch):
            data = build_data_bundle(scenario)
            results = [
                self._run_vp(vp, data, cost) for vp in scenario.vps
            ]
            with self.tracer.span("epoch.compile"):
                started = perf_clock()
                bmap = compile_border_map(
                    results,
                    view=data.view,
                    rels=data.rels,
                    epoch=epoch,
                    source=self.source,
                )
                patch = None
                if self._prev_compiled is None or self.force_full:
                    compiled = compile_map(bmap)
                else:
                    compiled, patch = patch_compiled_map(
                        self._prev_compiled, bmap
                    )
                    cost.sections_patched = len(patch.changed)
                    cost.sections_reused = (
                        len(patch.base_crcs) - len(patch.changed)
                    )
                cost.compile_seconds = perf_clock() - started
        diff_summary = None
        if self._prev_bmap is not None:
            diff_summary = diff_border_maps(self._prev_bmap, bmap).to_dict()

        map_path = patch_path = None
        sections = compiled.sections()
        if self.out_dir is not None:
            map_path = os.path.join(
                self.out_dir, "epoch_%03d.bdrm" % epoch
            )
            save_compiled_map(compiled, map_path)
            if patch is not None:
                patch_path = os.path.join(
                    self.out_dir, "epoch_%03d.patch.bdrm" % epoch
                )
                save_map_patch(patch, patch_path)

        record = EpochRecord(
            epoch=epoch,
            mode="full" if (
                self._prev_compiled is None or self.force_full
            ) else "delta",
            events=delta.to_list(),
            cost=cost,
            diff=diff_summary,
            map_path=map_path,
            patch_path=patch_path,
            section_crcs={
                name: zlib.crc32(bytes(payload))
                for name, payload in sections.items()
            },
        )
        self.chain.records.append(record)
        if self.metrics.enabled:
            self.metrics.inc("epoch.runs")
            self.metrics.inc("epoch.probes", cost.probes)
            self.metrics.inc("epoch.traces.probed", cost.traces_probed)
            self.metrics.inc("epoch.traces.replayed", cost.traces_replayed)
            self.metrics.inc("epoch.routers.live", cost.routers_live)
            self.metrics.inc(
                "epoch.routers.replayed", cost.routers_replayed
            )
            self.metrics.inc("epoch.units.probed", cost.units_probed)
            self.metrics.inc("epoch.units.reused", cost.units_reused)
            self.metrics.time("epoch.compile.seconds", cost.compile_seconds)
            # Per-epoch distributions, in the same histogram shapes the
            # serving tier harvests: compile latency feeds the p50/p99
            # SLO surface, probe counts show churn spread across epochs.
            self.metrics.observe(
                "epoch.compile.ms", 1e3 * cost.compile_seconds,
                bounds=LATENCY_BUCKETS_MS,
            )
            self.metrics.observe("epoch.probes.per_epoch", cost.probes)
            self.metrics.set_gauge("epoch.last", float(epoch))
        self._prev_bmap = bmap
        self._prev_compiled = compiled
        self._prev_map_path = map_path
        self._epoch = epoch + 1
        self.result_maps.append(bmap)
        return record

    def save_chain(self, path: Optional[str] = None) -> Optional[str]:
        if path is None:
            if self.out_dir is None:
                return None
            path = os.path.join(self.out_dir, "chain.json")
        self.chain.save(path)
        return path


# ---------------------------------------------------------------- chain replay


def replay_chain(chain_path: str) -> List[str]:
    """Verify a saved epoch chain end to end: apply each epoch's patch to
    the previous epoch's artifact and assert the result is byte-identical
    to the epoch's own artifact.  Returns the verified artifact paths."""
    from ..serving.compiled import apply_map_patch

    payload = EpochChain.load(chain_path)
    records = payload.get("records", [])
    verified: List[str] = []
    prev_path: Optional[str] = None
    for record in records:
        map_path = record.get("map_path")
        patch_path = record.get("patch_path")
        if map_path is None:
            raise EpochError(
                "epoch %s has no saved artifact to verify"
                % record.get("epoch")
            )
        if patch_path is not None:
            if prev_path is None:
                raise EpochError(
                    "epoch %s carries a patch but has no predecessor"
                    % record.get("epoch")
                )
            rebuilt = map_path + ".replayed"
            apply_map_patch(prev_path, patch_path, rebuilt)
            with open(rebuilt, "rb") as fh_a, open(map_path, "rb") as fh_b:
                if fh_a.read() != fh_b.read():
                    raise EpochError(
                        "epoch %s replay mismatch: patch over %s does not "
                        "reproduce %s"
                        % (record.get("epoch"), prev_path, map_path)
                    )
            os.unlink(rebuilt)
        verified.append(map_path)
        prev_path = map_path
    return verified


# ---------------------------------------------------------------- seeded churn


def apply_seeded_churn(
    scenario,
    seed: int,
    epoch: int,
    fraction: float = 0.08,
) -> List[MutationEvent]:
    """Apply a deterministic, bounded mutation batch to ``scenario``.

    The batch touches at most ``fraction`` of the interdomain links
    (adds, removes of previously added links, border re-homings), all
    incident to the focal network so every epoch actually moves borders
    the heuristics must re-infer.  Deterministic in ``(seed, epoch)``
    and the scenario state, so two same-seed worlds evolve identically —
    which is how the full-recompute baseline stays comparable.  Calls
    :func:`rebuild_network` before returning.
    """
    internet = scenario.internet
    focal = scenario.focal_asn
    rng = make_rng(seed, "epoch-churn", str(epoch))
    inter = [
        link
        for link in internet.links.values()
        if link.kind is LinkKind.INTERDOMAIN
    ]
    budget = max(1, int(len(inter) * fraction))

    def _supplier_ok(asn_a: int, asn_b: int) -> bool:
        from ..asgraph import Rel
        from ..topology.addressing import SubnetPool

        rel = internet.graph.relationship(asn_a, asn_b)
        if rel is Rel.CUSTOMER:
            supplier = asn_a
        elif rel is Rel.PROVIDER:
            supplier = asn_b
        else:
            supplier = asn_a
        return isinstance(scenario.state.pools.get(supplier), SubnetPool)

    neighbors = [
        asn
        for asn in sorted(internet.graph.neighbors(focal))
        if _supplier_ok(focal, asn)
    ]
    added = {
        event.link_id
        for event in scenario.mutations
        if isinstance(event, LinkAdded)
    }
    removed = {
        event.link_id
        for event in scenario.mutations
        if event.kind == "link_removed"
    }
    recyclable = sorted(
        link_id
        for link_id in (added - removed)
        if link_id in internet.links
    )
    focal_routers = sorted(internet.ases[focal].router_ids)

    events: List[MutationEvent] = []
    for _ in range(budget):
        op = rng.choice(("add", "add", "remove", "move"))
        if op == "remove" and recyclable:
            link_id = rng.choice(recyclable)
            recyclable.remove(link_id)
            events.append(remove_link(scenario, link_id))
        elif op == "move" and recyclable:
            link_id = rng.choice(recyclable)
            link = internet.links[link_id]
            current = next(
                (
                    iface.router_id
                    for iface in link.interfaces
                    if internet.routers[iface.router_id].asn == focal
                ),
                None,
            )
            choices = [rid for rid in focal_routers if rid != current]
            if current is None or not choices:
                continue
            events.append(
                move_border_link(scenario, link_id, rng.choice(choices))
            )
        elif neighbors:
            event = add_border_link(scenario, focal, rng.choice(neighbors))
            recyclable.append(event.link_id)
            recyclable.sort()
            events.append(event)
    if not events:
        raise TopologyError(
            "seeded churn produced no mutations for epoch %d" % epoch
        )
    rebuild_network(scenario)
    return events
