"""Multi-VP coordination.

The paper's deployment (§5.8, §6) runs many VPs in one network, driven by
one central system.  Aliases are a property of routers, not vantage
points, so the controller can share the alias-evidence store across VPs:
the first VP pays the full Ally cost, later VPs reuse verdicts and only
test pairs they alone observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..alias import AliasResolver
from .bdrmap import Bdrmap, BdrmapConfig, DataBundle, build_data_bundle
from .report import BdrmapResult


@dataclass
class MultiVPRun:
    results: List[BdrmapResult]
    shared_resolver: Optional[AliasResolver]

    def total_probes(self) -> int:
        return sum(result.probes_used for result in self.results)

    def all_links(self):
        """Union of inferred links across VPs (deduplicated per VP only —
        cross-VP identity needs ground truth or address comparison)."""
        return [link for result in self.results for link in result.links]


def run_all_vps(
    scenario,
    data: Optional[DataBundle] = None,
    config: Optional[BdrmapConfig] = None,
    share_alias_evidence: bool = True,
) -> MultiVPRun:
    """Run bdrmap from every VP of a scenario.

    With ``share_alias_evidence`` (the central-system behaviour), one
    resolver accumulates Mercator/Ally/prefixscan verdicts across VPs.
    Stop sets are *never* shared: they encode per-VP forward paths, and
    §6's analyses depend on each VP observing its own egresses.
    """
    if data is None:
        data = build_data_bundle(scenario)
    config = config or BdrmapConfig()
    resolver: Optional[AliasResolver] = None
    if share_alias_evidence and scenario.vps:
        resolver = AliasResolver(
            scenario.network,
            scenario.vps[0].addr,
            ally_rounds=config.collection.ally_rounds,
            ally_interval=config.collection.ally_interval,
        )
    results = []
    for vp in scenario.vps:
        driver = Bdrmap(scenario.network, vp, data, config, resolver=resolver)
        results.append(driver.run())
    return MultiVPRun(results=results, shared_resolver=resolver)
