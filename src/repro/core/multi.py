"""Multi-VP coordination (legacy surface).

The paper's deployment (§5.8, §6) runs many VPs in one network, driven by
one central system.  Aliases are a property of routers, not vantage
points, so the controller can share the alias-evidence store across VPs:
the first VP pays the full Ally cost, later VPs reuse verdicts and only
test pairs they alone observed.

This module keeps the original one-call surface; the machinery now lives
in :class:`repro.core.orchestrator.MultiVPOrchestrator`, which adds
interleaved collection and per-pass reporting on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..alias import AliasResolver
from .bdrmap import BdrmapConfig, DataBundle
from .orchestrator import MultiVPOrchestrator, RunReport
from .report import BdrmapResult


@dataclass
class MultiVPRun:
    results: List[BdrmapResult]
    shared_resolver: Optional[AliasResolver]
    report: Optional[RunReport] = None

    def total_probes(self) -> int:
        return sum(result.probes_used for result in self.results)

    def all_links(self):
        """Union of inferred links across VPs (deduplicated per VP only —
        cross-VP identity needs ground truth or address comparison)."""
        return [link for result in self.results for link in result.links]


def run_all_vps(
    scenario,
    data: Optional[DataBundle] = None,
    config: Optional[BdrmapConfig] = None,
    share_alias_evidence: bool = True,
) -> MultiVPRun:
    """Run bdrmap from every VP of a scenario, one VP after another.

    With ``share_alias_evidence`` (the central-system behaviour), one
    resolver accumulates Mercator/Ally/prefixscan verdicts across VPs.
    Stop sets are *never* shared: they encode per-VP forward paths, and
    §6's analyses depend on each VP observing its own egresses.

    Sequential semantics are kept for reproducibility of archived runs;
    use :class:`~repro.core.orchestrator.MultiVPOrchestrator` directly for
    interleaved (concurrent-in-virtual-time) collection.
    """
    orchestrated = MultiVPOrchestrator(
        scenario,
        data=data,
        config=config,
        share_alias_evidence=share_alias_evidence,
        interleave=False,
    ).run()
    return MultiVPRun(
        results=orchestrated.results,
        shared_resolver=orchestrated.shared_resolver,
        report=orchestrated.report,
    )
