"""Data collection (§5.3): traceroutes with stop sets, then alias probing.

The collector probes each target AS one block at a time (multiple ASes
interleaved via the round-robin scheduler), records the first external
address per trace into the target's stop set, retries further addresses in
a block (up to five) when a trace shows no external address other than the
probed one, and finally drives Mercator / prefixscan / Ally alias probing
over what was observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..alias import AliasResolver
from ..bgp import BGPView
from ..net import Network
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..probing import StopSet, paris_traceroute
from ..probing.prefixscan import PrefixscanResult, prefixscan
from ..probing.retry import RetryPolicy, RetryStats
from ..probing.scheduler import RoundRobinScheduler
from ..probing.traceroute import TraceResult
from .targets import TargetBlock, group_by_origin

TargetKey = Tuple[int, ...]


@dataclass
class CollectionConfig:
    max_addrs_per_block: int = 5
    max_ttl: int = 32
    gap_limit: int = 5
    attempts: int = 2
    parallelism: int = 8
    use_stop_set: bool = True          # ablation: doubletree on/off
    # Cross-target stop-set sharing: a first-external address learned for
    # one target AS also stops traces toward every other target.  Cuts
    # redundant crossings of the VP network's own borders at some cost in
    # per-target egress fidelity, hence off by default.
    share_stop_sets: bool = False
    use_alias_resolution: bool = True  # ablation: Fig 13 effect
    use_prefixscan: bool = True
    ally_rounds: int = 5
    ally_interval: float = 300.0
    max_candidate_fanout: int = 12
    # Loss-tolerant probing: when set, every probe (traceroute hops, pings,
    # Ally samples, Mercator) runs under this exponential-backoff budget
    # instead of the flat `attempts` loop.  None keeps the legacy behaviour
    # byte-identical.
    retry: Optional[RetryPolicy] = None


@dataclass
class Collection:
    """Everything the inference stage consumes."""

    traces: List[TraceResult] = field(default_factory=list)
    trace_keys: List[TargetKey] = field(default_factory=list)  # parallel to traces
    per_target: Dict[TargetKey, List[TraceResult]] = field(default_factory=dict)
    stop_set: StopSet = field(default_factory=StopSet)
    resolver: Optional[AliasResolver] = None
    prefixscans: Dict[Tuple[int, int], PrefixscanResult] = field(default_factory=dict)
    probes_used: int = 0
    traces_run: int = 0
    # Traceroute-phase retry accounting (per-trace detail lives on each
    # TraceResult; this aggregates the same events for the run report).
    retry_stats: RetryStats = field(default_factory=RetryStats)

    def total_retries(self) -> int:
        """Retries spent by this collection's traceroutes.  The resolver
        keeps separate stats (it may be shared across VPs)."""
        return self.retry_stats.retries

    def observed_ttl_expired_addrs(self) -> Set[int]:
        """TTL-expired source addresses, excluding those equal to the probed
        destination (whose interface placement is ambiguous, §4)."""
        found: Set[int] = set()
        for trace in self.traces:
            for hop in trace.hops:
                if (
                    hop.addr is not None
                    and hop.is_ttl_expired
                    and hop.addr != trace.dst
                ):
                    found.add(hop.addr)
        return found


class Collector:
    """Runs the §5.3 collection for one VP."""

    def __init__(
        self,
        network: Network,
        vp_addr: int,
        view: BGPView,
        vp_ases: Set[int],
        config: Optional[CollectionConfig] = None,
        resolver: Optional[AliasResolver] = None,
        metrics: Optional[MetricsRegistry] = None,
        label: str = "vp",
    ) -> None:
        self.network = network
        self.vp_addr = vp_addr
        self.view = view
        self.vp_ases = set(vp_ases)
        self.config = config or CollectionConfig()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.label = label
        self.collection = Collection()
        self.collection.stop_set.shared = self.config.share_stop_sets
        # Retry counters become views over the shared registry, under a
        # per-VP prefix so concurrent collections stay distinguishable.
        self.collection.retry_stats.bind(
            self.metrics, "retry.%s." % label
        )
        # A shared resolver lets the central system (§5.8) reuse alias
        # evidence across the VPs it drives: aliases are a property of the
        # routers, not of the vantage point.
        self.collection.resolver = resolver or AliasResolver(
            network,
            vp_addr,
            ally_rounds=self.config.ally_rounds,
            ally_interval=self.config.ally_interval,
            retry=self.config.retry,
            metrics=self.metrics,
        )
        if self.collection.resolver is not None:
            self.collection.resolver.retry_stats.bind(
                self.metrics, "retry.alias."
            )

    # -- helpers ------------------------------------------------------------

    def _is_external(self, addr: int) -> bool:
        origins = self.view.origins_of_addr(addr)
        return bool(origins) and not (set(origins) & self.vp_ases)

    def _first_external(self, trace: TraceResult) -> Optional[int]:
        for hop in trace.hops:
            if hop.addr is None or not hop.is_ttl_expired:
                continue
            if self._is_external(hop.addr):
                return hop.addr
        return None

    def _saw_external_router(self, trace: TraceResult, probed: int) -> bool:
        """Did the trace reveal any external address besides the probed
        destination itself?  (§5.3: retry other addresses otherwise, to
        avoid interpreting third-party addresses as neighbors.)"""
        for hop in trace.hops:
            if hop.addr is None or hop.addr == probed:
                continue
            if self._is_external(hop.addr):
                return True
        return False

    # -- phase 1: traceroute ----------------------------------------------------

    def _trace(self, dst: int, stop: Optional[Set[int]]) -> TraceResult:
        """One traceroute; remote deployments override this to dispatch the
        command to the on-device prober (§5.8)."""
        return paris_traceroute(
            self.network,
            self.vp_addr,
            dst,
            max_ttl=self.config.max_ttl,
            attempts=self.config.attempts,
            gap_limit=self.config.gap_limit,
            stop_set=stop,
            retry=self.config.retry,
            retry_stats=self.collection.retry_stats,
        )

    def _prefixscan(self, prev: int, nxt: int) -> PrefixscanResult:
        """One prefixscan; override point for remote deployments."""
        return prefixscan(self.network, self.vp_addr, prev, nxt)

    def _target_task(self, key: TargetKey, blocks: List[TargetBlock]) -> Iterator[None]:
        stop = (
            self.collection.stop_set.for_target(key)
            if self.config.use_stop_set
            else None
        )
        for block in blocks:
            for addr in block.candidate_addrs(self.config.max_addrs_per_block):
                trace = self._trace(addr, stop)
                if self.metrics.enabled:
                    self.metrics.observe("trace.hops", len(trace.hops))
                self.collection.traces.append(trace)
                self.collection.trace_keys.append(key)
                self.collection.per_target.setdefault(key, []).append(trace)
                self.collection.traces_run += 1
                first_external = self._first_external(trace)
                if first_external is not None and stop is not None:
                    stop.add(first_external)
                yield
                if self._saw_external_router(trace, addr):
                    break  # this block is done; next block

    def traceroute_tasks(self) -> List[Iterator[None]]:
        """The per-target probing generators, ready for a scheduler.

        Exposed so a multi-VP orchestrator can interleave several VPs'
        collection through one :class:`RoundRobinScheduler` — N VPs then
        probe concurrently in virtual time (§5.8).
        """
        groups = group_by_origin(
            TargetBlock(block=t.block, origins=t.origins)
            for t in self._targets()
        )
        return [self._target_task(key, groups[key]) for key in sorted(groups)]

    def run_traceroutes(self) -> None:
        scheduler = RoundRobinScheduler(
            parallelism=self.config.parallelism,
            metrics=self.metrics,
            label="traceroute.%s" % self.label,
        )
        scheduler.add_all(self.traceroute_tasks())
        scheduler.run()

    def _targets(self) -> List[TargetBlock]:
        from .targets import build_targets

        return build_targets(self.view, self.vp_ases)

    # -- phase 2: alias resolution ---------------------------------------------------

    def _adjacent_pairs(self) -> List[Tuple[int, int]]:
        """Consecutive responsive TTL-expired hop pairs across all traces."""
        pairs: Set[Tuple[int, int]] = set()
        for trace in self.collection.traces:
            hops = trace.hops
            for left, right in zip(hops, hops[1:]):
                if (
                    left.addr is not None
                    and right.addr is not None
                    and left.is_ttl_expired
                    and right.is_ttl_expired
                    and left.addr != right.addr
                ):
                    pairs.add((left.addr, right.addr))
        return sorted(pairs)

    def run_alias_resolution(self) -> None:
        if not self.config.use_alias_resolution:
            return
        resolver = self.collection.resolver
        assert resolver is not None
        observed = self.collection.observed_ttl_expired_addrs()
        # Teach the TTL-limited prober where each address was seen, so Ally
        # can fall back to in-transit expiry for probe-deaf routers (§5.3).
        for trace in self.collection.traces:
            resolver.learn_from_trace(trace)
        resolver.mercator_sweep(observed)

        pairs = self._adjacent_pairs()
        successors: Dict[int, Set[int]] = {}
        predecessors: Dict[int, Set[int]] = {}
        for prev, nxt in pairs:
            successors.setdefault(prev, set()).add(nxt)
            predecessors.setdefault(nxt, set()).add(prev)

        # Prefixscan on hop pairs that cross into external address space:
        # confirms the inbound interface and finds near-side aliases (§5.3).
        if self.config.use_prefixscan:
            for prev, nxt in pairs:
                origins_next = self.view.origins_of_addr(nxt)
                if origins_next and not self._is_external(nxt):
                    continue  # internal hop: not an interdomain candidate
                result = self._prefixscan(prev, nxt)
                self.collection.prefixscans[(prev, nxt)] = result
                if result.confirmed and result.mate is not None:
                    resolver.evidence.record_for(result.mate, prev, "prefixscan")
                    if result.mate != prev:
                        # Confirm through the hardened pairwise test too.
                        resolver.test_pair(result.mate, prev)

        # Candidate alias sets: addresses sharing a common predecessor or
        # successor might be interfaces of one router (virtual routers,
        # per-destination response addresses — Fig 13).
        for _, members in sorted(successors.items()):
            if 2 <= len(members) <= self.config.max_candidate_fanout:
                resolver.resolve_candidate_set(members)
        for _, members in sorted(predecessors.items()):
            if 2 <= len(members) <= self.config.max_candidate_fanout:
                resolver.resolve_candidate_set(members)

    # -- entry point ---------------------------------------------------------------

    def run(self) -> Collection:
        before = self.network.probes_sent
        self.run_traceroutes()
        self.run_alias_resolution()
        self.collection.probes_used = self.network.probes_sent - before
        return self.collection

    def retry_total(self) -> int:
        """All retries this collector caused: traceroute hops plus the
        resolver's alias probing (which keeps its own stats because the
        resolver may be shared across VPs)."""
        total = self.collection.total_retries()
        resolver = self.collection.resolver
        if resolver is not None:
            total += resolver.retry_stats.retries
        return total
