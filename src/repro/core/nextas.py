"""The *nextas* candidate owner (§5.4, final paragraph).

For each router, *nextas* is the most common provider AS among all the
destination ASes probed through that router — the AS most plausibly
providing transit to whatever lies beyond.  Steps 1–3 use it as a fallback
owner when no stronger constraint exists.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Set

from ..asgraph import InferredRelationships
from .routergraph import InferredRouter


def compute_nextas(
    router: InferredRouter,
    rels: InferredRelationships,
    vp_ases: Set[int],
) -> Optional[int]:
    """nextas for one router, or None when undefined.

    Only defined when the router appears on paths to multiple destination
    ASes; ties break toward the lowest ASN for determinism.
    """
    dsts = router.dsts - vp_ases
    if len(dsts) < 2:
        return None
    votes: Counter = Counter()
    for dst_as in dsts:
        for provider in rels.providers_of(dst_as):
            votes[provider] += 1
    if not votes:
        return None
    best = max(votes.items(), key=lambda item: (item[1], -item[0]))
    return best[0]


def compute_all_nextas(
    routers,
    rels: InferredRelationships,
    vp_ases: Set[int],
) -> Dict[int, Optional[int]]:
    return {
        router.rid: compute_nextas(router, rels, vp_ases) for router in routers
    }
