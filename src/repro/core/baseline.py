"""The canonical IP-AS baseline bdrmap improves on.

§1/§4: "the canonical approach of mapping an IP address observed in
traceroute to the organization that announces the longest matching prefix
... may be incorrect for at least seven reasons.  Yet, lack of a better
method leaves researchers using simple but error-prone IP-AS mappings."

This module implements that canonical method — infer an interdomain link
wherever consecutive traceroute hops map to different ASes, owner = origin
of the longest matching prefix — so the evaluation can quantify exactly
how much the bdrmap heuristics buy (the paper cites 71% for the best prior
router-ownership heuristic [17]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..bgp import BGPView
from .collection import Collection


@dataclass(frozen=True)
class NaiveLink:
    """A border inferred by plain IP-AS transition."""

    near_addr: int
    far_addr: int
    neighbor_as: int


def naive_borders(
    collection: Collection,
    view: BGPView,
    vp_ases: Set[int],
) -> List[NaiveLink]:
    """The canonical inference: a link exists wherever a VP-mapped hop is
    followed by an externally-mapped hop; the neighbor is the external
    hop's LPM origin.  No alias resolution, no relationship reasoning, no
    third-party handling — exactly the error-prone method of [44].
    """
    found: Set[NaiveLink] = set()
    for trace in collection.traces:
        hops = [
            hop
            for hop in trace.hops
            if hop.addr is not None and hop.is_ttl_expired
        ]
        for left, right in zip(hops, hops[1:]):
            left_origins = set(view.origins_of_addr(left.addr))
            right_origins = set(view.origins_of_addr(right.addr))
            if not left_origins or not right_origins:
                continue
            if left_origins & vp_ases and not (right_origins & vp_ases):
                found.add(
                    NaiveLink(
                        near_addr=left.addr,
                        far_addr=right.addr,
                        neighbor_as=min(right_origins),
                    )
                )
    return sorted(found, key=lambda l: (l.near_addr, l.far_addr))


def naive_owner(view: BGPView, addr: int) -> Optional[int]:
    """Canonical router-ownership: the LPM origin of the address."""
    origins = view.origins_of_addr(addr)
    return min(origins) if origins else None
