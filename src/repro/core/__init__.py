"""bdrmap — the paper's contribution.

Pipeline (Fig 2): assemble input data (§5.2) → targeted traceroute with
stop sets (§5.3) → alias resolution → router-level graph → ordered
ownership heuristics (§5.4) → border routers and interdomain links.
"""

from .targets import TargetBlock, build_targets
from .collection import CollectionConfig, Collection, Collector
from .routergraph import InferredRouter, RouterGraph, build_router_graph
from .nextas import compute_nextas
from .heuristics import (
    HeuristicConfig,
    HeuristicPass,
    InferenceEngine,
    PASS_REGISTRY,
    build_passes,
    table1_row_order,
)
from .pipeline import (
    CollectionStage,
    GraphBuildStage,
    InferenceContext,
    InferenceStage,
    Pipeline,
    PipelineStage,
    PipelineState,
    StageTiming,
    default_stages,
)
from .report import InferredLink, BdrmapResult
from .bdrmap import (
    Bdrmap,
    BdrmapConfig,
    DataBundle,
    build_data_bundle,
    infer_from_collection,
    run_bdrmap,
)
from .orchestrator import (
    MultiVPOrchestrator,
    OrchestratedRun,
    RunReport,
    VPReport,
    orchestrate,
)

__all__ = [
    "TargetBlock",
    "build_targets",
    "CollectionConfig",
    "Collection",
    "Collector",
    "InferredRouter",
    "RouterGraph",
    "build_router_graph",
    "compute_nextas",
    "HeuristicConfig",
    "HeuristicPass",
    "InferenceEngine",
    "PASS_REGISTRY",
    "build_passes",
    "table1_row_order",
    "CollectionStage",
    "GraphBuildStage",
    "InferenceContext",
    "InferenceStage",
    "Pipeline",
    "PipelineStage",
    "PipelineState",
    "StageTiming",
    "default_stages",
    "InferredLink",
    "BdrmapResult",
    "Bdrmap",
    "BdrmapConfig",
    "DataBundle",
    "build_data_bundle",
    "infer_from_collection",
    "run_bdrmap",
    "MultiVPOrchestrator",
    "OrchestratedRun",
    "RunReport",
    "VPReport",
    "orchestrate",
]
