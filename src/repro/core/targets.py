"""Target list generation (§5.3, "Generate list of address blocks to probe").

For every announced prefix in the public BGP view we build the address
blocks it exclusively covers — the prefix minus any announced
more-specifics (which belong to whoever announces them).  Blocks originated
by the VP network or its siblings are excluded: bdrmap maps *interdomain*
connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..addr import AddressBlock, block_of, subtract_blocks
from ..bgp import BGPView


@dataclass(frozen=True)
class TargetBlock:
    """One probing target: a block and the origin(s) of its covering
    prefix."""

    block: AddressBlock
    origins: Tuple[int, ...]

    def candidate_addrs(self, limit: int = 5) -> List[int]:
        """Addresses to try inside the block, ``.1`` first (§5.3)."""
        first = self.block.first
        start = first + 1 if first & 0xFF == 0 else first
        return [
            addr for addr in range(start, start + limit) if addr in self.block
        ]


def build_targets(view: BGPView, vp_ases: Iterable[int]) -> List[TargetBlock]:
    """All target blocks, ordered by address."""
    vp_set = set(vp_ases)
    prefixes = view.prefixes()
    targets: List[TargetBlock] = []
    for prefix in prefixes:
        origins = tuple(sorted(view.origins(prefix)))
        if not origins or set(origins) & vp_set:
            continue
        more_specifics = [
            block_of(other)
            for other in prefixes
            if other != prefix and prefix.contains_prefix(other)
        ]
        for block in subtract_blocks(block_of(prefix), more_specifics):
            targets.append(TargetBlock(block=block, origins=origins))
    targets.sort(key=lambda t: (t.block.first, t.block.last))
    return targets


def group_by_origin(targets: Iterable[TargetBlock]) -> Dict[Tuple[int, ...], List[TargetBlock]]:
    """Group targets by origin tuple — bdrmap probes one block per target AS
    at a time, target ASes in parallel (§5.3)."""
    groups: Dict[Tuple[int, ...], List[TargetBlock]] = {}
    for target in targets:
        groups.setdefault(target.origins, []).append(target)
    return groups
