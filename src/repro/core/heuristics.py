"""The ordered ownership heuristics of §5.4.

Routers are visited in order of observed hop distance from the VP; for each
router the engine applies the first matching heuristic:

1. (§5.4.1) routers operated by the VP network, with the multihomed-
   neighbor exception, and RIR-based attribution of unannounced VP space;
2. (§5.4.2) neighbor edge routers behind firewalls;
3. (§5.4.3) neighbor routers using unrouted addresses;
4. (§5.4.4) plain IP-AS mapping when two consecutive hops agree (onenet);
5. (§5.4.5) relationship-guided inference, including third-party detection;
6. (§5.4.6) IP-AS mapping in ambiguous multi-AS neighborhoods;
7. (§5.4.7) analytical alias collapse of near-side border routers;
8. (§5.4.8) neighbors that never send TTL-expired messages.

Reasons are recorded with the labels Table 1 uses so the coverage analysis
can reproduce the table's rows.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..asgraph import InferredRelationships, Rel
from ..bgp import BGPView
from ..datasets import IXPDataset, RIRDelegations
from ..net import ResponseKind
from ..topology.addressing import p2p_mate
from .collection import Collection
from .nextas import compute_nextas
from .report import InferredLink
from .routergraph import InferredRouter, RouterGraph

VP = "vp"
EXT = "ext"
IXP_CLASS = "ixp"
UNROUTED = "unrouted"


@dataclass
class HeuristicConfig:
    """Ablation switches for the inference engine."""

    use_third_party: bool = True   # §5.4.5 third-party detection
    use_relationships: bool = True # §5.4.5 relationship steps
    use_step7: bool = True
    use_step8: bool = True
    use_rir: bool = True           # §5.4.1 unannounced-VP-space attribution
    # Extension (off by default — the paper stops at the first border):
    # bdrmapIT-style neighbor-constraint refinement of deep annotations.
    use_refinement: bool = False


class InferenceEngine:
    """Runs the §5.4 heuristics over one VP's router graph."""

    def __init__(
        self,
        graph: RouterGraph,
        collection: Collection,
        view: BGPView,
        rels: InferredRelationships,
        vp_ases: Set[int],
        focal_asn: int,
        ixp_data: Optional[IXPDataset] = None,
        rir: Optional[RIRDelegations] = None,
        config: Optional[HeuristicConfig] = None,
    ) -> None:
        self.graph = graph
        self.collection = collection
        self.view = view
        self.rels = rels
        self.vp_ases = set(vp_ases)
        self.focal_asn = focal_asn
        self.ixp_data = ixp_data
        self.rir = rir
        self.config = config or HeuristicConfig()
        self.addr_class: Dict[int, str] = {}
        self.addr_origins: Dict[int, Tuple[int, ...]] = {}
        self.links: List[InferredLink] = []
        self._nextas_cache: Dict[int, Optional[int]] = {}

    # ------------------------------------------------------------------ setup

    def _classify_addr(self, addr: int) -> str:
        if self.ixp_data is not None and self.ixp_data.is_ixp_addr(addr):
            self.addr_origins[addr] = ()
            return IXP_CLASS
        origins = self.view.origins_of_addr(addr)
        self.addr_origins[addr] = origins
        if not origins:
            return UNROUTED
        if set(origins) & self.vp_ases:
            return VP
        return EXT

    def _prepare(self) -> None:
        for addr in self.graph.by_addr:
            self.addr_class[addr] = self._classify_addr(addr)
        if self.config.use_rir and self.rir is not None:
            self._extend_vp_space()

    def _extend_vp_space(self) -> None:
        """§5.4.1: addresses before a VP-originated address in a trace are
        assumed delegated to the VP network; the RIR files identify the
        enclosing blocks, which we then treat as VP space."""
        vp_opaque_ids: Set[str] = set()
        for trace in self.collection.traces:
            addrs = [
                hop.addr
                for hop in trace.hops
                if hop.addr is not None and hop.is_ttl_expired
            ]
            last_vp = -1
            for index, addr in enumerate(addrs):
                if self.addr_class.get(addr) == VP:
                    last_vp = index
            for addr in addrs[:last_vp]:
                if self.addr_class.get(addr) == UNROUTED:
                    opaque = self.rir.opaque_id_of(addr)
                    if opaque is not None:
                        vp_opaque_ids.add(opaque)
        if not vp_opaque_ids:
            return
        for addr, cls in list(self.addr_class.items()):
            if cls == UNROUTED and self.rir.opaque_id_of(addr) in vp_opaque_ids:
                self.addr_class[addr] = VP

    # -------------------------------------------------------------- router views

    def _classes(self, router: InferredRouter) -> Set[str]:
        return {self.addr_class[a] for a in router.addrs if a in self.addr_class}

    def _ext_ases(self, router: InferredRouter) -> Set[int]:
        """External ASes that the router's addresses map to."""
        found: Set[int] = set()
        for addr in router.addrs:
            if self.addr_class.get(addr) == EXT:
                found.update(self.addr_origins.get(addr, ()))
        return found - self.vp_ases

    def _single_ext_as(self, router: InferredRouter) -> Optional[int]:
        """The single external AS all of the router's addresses map to, or
        None if the mapping is absent or ambiguous."""
        ases: Optional[Set[int]] = None
        for addr in router.addrs:
            if self.addr_class.get(addr) != EXT:
                return None
            origins = set(self.addr_origins.get(addr, ())) - self.vp_ases
            if not origins:
                return None
            ases = origins if ases is None else (ases & origins)
        if ases and len(ases) == 1:
            return next(iter(ases))
        if ases and len(ases) > 1:
            return min(ases)  # MOAS: deterministic choice
        return None

    def _succ_routers(self, router: InferredRouter) -> List[InferredRouter]:
        return [
            self.graph.routers[rid]
            for rid in sorted(self.graph.successors(router.rid))
            if rid in self.graph.routers
        ]

    def _pred_routers(self, router: InferredRouter) -> List[InferredRouter]:
        return [
            self.graph.routers[rid]
            for rid in sorted(self.graph.predecessors(router.rid))
            if rid in self.graph.routers
        ]

    def _adjacent_ext_addr_counts(self, router: InferredRouter) -> Counter:
        """Per-external-AS count of addresses on successor routers."""
        counts: Counter = Counter()
        for successor in self._succ_routers(router):
            for addr in successor.addrs:
                if self.addr_class.get(addr) == EXT:
                    for asn in self.addr_origins.get(addr, ()):
                        if asn not in self.vp_ases:
                            counts[asn] += 1
        return counts

    def _nextas(self, router: InferredRouter) -> Optional[int]:
        if router.rid not in self._nextas_cache:
            self._nextas_cache[router.rid] = compute_nextas(
                router, self.rels, self.vp_ases
            )
        return self._nextas_cache[router.rid]

    def _dst_sibling_collapse(self, dsts: Set[int]) -> Set[int]:
        """Collapse a destination-AS set by inferred siblinghood: {B, B's
        sibling} counts as one destination network."""
        remaining = set(dsts)
        representatives: Set[int] = set()
        while remaining:
            asn = min(remaining)
            family = (self.rels.siblings.get(asn) or frozenset((asn,))) & remaining
            remaining -= family or {asn}
            representatives.add(asn)
        return representatives

    # ---------------------------------------------------------------- heuristics

    def _step1(self, router: InferredRouter) -> bool:
        """§5.4.1: routers operated by the network hosting the VP."""
        if self._classes(router) - {VP}:
            return False
        successors = self._succ_routers(router)
        vp_successors = [
            s for s in successors if VP in self._classes(s)
        ]
        if not vp_successors:
            # A VP-addressed router whose next hop is an IXP fabric address
            # is the VP network's fabric-facing border: the fabric address
            # belongs to the *member's* router on the far side.
            if any(IXP_CLASS in self._classes(s) for s in successors):
                router.owner = self.focal_asn
                router.reason = "vp"
                return True
            return False
        # Exception 1.1: a neighbor multihomed via adjacent routers.
        adjacent_ext = self._adjacent_ext_addr_counts(router)
        if len(adjacent_ext) == 1:
            neighbor_as = next(iter(adjacent_ext))
            chained = [
                s
                for s in vp_successors
                if self._succ_chain_only_reaches(s, neighbor_as)
            ]
            if chained and self._multihome_guard_ok(router, neighbor_as):
                router.owner = neighbor_as
                router.reason = "1 multihomed"
                for successor in chained:
                    if successor.owner is None:
                        successor.owner = neighbor_as
                        successor.reason = "1 multihomed"
                return True
        router.owner = self.focal_asn
        router.reason = "vp"
        return True

    def _succ_chain_only_reaches(self, router: InferredRouter, asn: int) -> bool:
        """Does this VP-addressed router's own onward path actually lead
        into ``asn``?  (An empty onward view is no evidence of a chain —
        treating it as one made shared aggregation routers look like
        multihomed neighbors.)"""
        if self._classes(router) - {VP}:
            return False
        ext = self._adjacent_ext_addr_counts(router)
        return set(ext) == {asn}

    def _multihome_guard_ok(self, router: InferredRouter, neighbor_as: int) -> bool:
        """§5.4.1's guard: if any would-be owner downstream is a customer of
        the VP network but not a known neighbor of ``neighbor_as``, the
        router belongs to the VP network after all."""
        neighbor_neighbors = self.rels.neighbors(neighbor_as)
        for dst_as in sorted(router.dsts - self.vp_ases):
            if dst_as == neighbor_as:
                continue
            if (
                self.focal_asn in self.rels.providers_of(dst_as)
                and dst_as not in neighbor_neighbors
            ):
                return False
        return True

    def _step2(self, router: InferredRouter) -> bool:
        """§5.4.2: neighbor edge routers behind firewalls."""
        if self._classes(router) - {VP}:
            return False
        if self.graph.successors(router.rid):
            return False
        last_for = self._dst_sibling_collapse(router.last_hop_for - self.vp_ases)
        if len(last_for) == 1:
            router.owner = next(iter(last_for))
            router.reason = "2 firewall"
            return True
        if len(last_for) > 1:
            candidate = self._nextas(router)
            if candidate is not None:
                if candidate in self.vp_ases:
                    router.owner = self.focal_asn
                    router.reason = "vp"
                else:
                    router.owner = candidate
                    router.reason = "2 firewall"
                return True
        return False

    def _step3(self, router: InferredRouter) -> bool:
        """§5.4.3: neighbor routers with unrouted interface addresses."""
        classes = self._classes(router)
        if not classes or classes - {UNROUTED}:
            return False
        first_routed: Set[int] = set()
        for path in self.graph.paths:
            if router.rid not in path.routers:
                continue
            index = path.routers.index(router.rid)
            for rid in path.routers[index + 1:]:
                later = self.graph.routers.get(rid)
                if later is None:
                    continue
                ases = self._ext_ases(later)
                if ases:
                    first_routed.update(ases)
                    break
        first_routed -= self.vp_ases
        if len(first_routed) == 1:
            router.owner = next(iter(first_routed))
            router.reason = "3 unrouted"
            return True
        if len(first_routed) > 1:
            votes: Counter = Counter()
            for asn in first_routed:
                for provider in self.rels.providers_of(asn):
                    votes[provider] += 1
            if votes:
                best = max(votes.items(), key=lambda kv: (kv[1], -kv[0]))
                router.owner = best[0]
                router.reason = "3 unrouted"
                return True
        candidate = self._nextas(router)
        if candidate is not None:
            router.owner = candidate
            router.reason = "3 unrouted"
            return True
        return False

    def _step4(self, router: InferredRouter) -> bool:
        """§5.4.4: onenet — two consecutive hops in the same external AS."""
        single = self._single_ext_as(router)
        if single is not None:
            # 4.1: the router's own addresses and some successor agree.
            for successor in self._succ_routers(router):
                if single in self._ext_ases(successor):
                    router.owner = single
                    router.reason = "4 onenet"
                    return True
            return False
        if self._classes(router) - {VP}:
            return False
        # 4.2: VP-addressed router followed by two consecutive routers in
        # the same external AS.
        for path in self.graph.paths:
            routers = path.routers
            for index, rid in enumerate(routers[:-2]):
                if rid != router.rid:
                    continue
                first = self.graph.routers.get(routers[index + 1])
                second = self.graph.routers.get(routers[index + 2])
                if first is None or second is None:
                    continue
                shared = (
                    self._ext_ases(first) & self._ext_ases(second)
                ) - self.vp_ases
                if len(shared) == 1:
                    router.owner = next(iter(shared))
                    router.reason = "4 onenet"
                    return True
        return False

    # -- §5.4.5 -----------------------------------------------------------------

    def _third_party_shape(self, router: InferredRouter) -> Optional[int]:
        """If this router looks like a third-party responder — single
        external mapping A, observed only on paths toward a single network
        B, with A a provider of B — return B."""
        single = self._single_ext_as(router)
        if single is None:
            return None
        dsts = self._dst_sibling_collapse(router.dsts - self.vp_ases)
        if len(dsts) != 1:
            return None
        dst_as = next(iter(dsts))
        if dst_as == single:
            return None
        if self.rels.is_provider_of(single, dst_as):
            return dst_as
        return None

    def _step5(self, router: InferredRouter) -> bool:
        classes = self._classes(router)
        if classes <= {EXT} and classes:
            # 5.2: the router itself responds with a third-party address.
            if self.config.use_third_party:
                third = self._third_party_shape(router)
                if third is not None:
                    router.owner = third
                    router.reason = "5 thirdparty"
                    return True
            return False
        if classes - {VP}:
            return False
        # The router holds VP-supplied addresses: it is a far-side candidate.
        # 5.1: a successor is a third-party responder.
        if self.config.use_third_party:
            for successor in self._succ_routers(router):
                third = self._third_party_shape(successor)
                if third is not None:
                    router.owner = third
                    router.reason = "5 thirdparty"
                    if successor.owner is None:
                        successor.owner = third
                        successor.reason = "5 thirdparty"
                    return True
        if not self.config.use_relationships:
            return False
        adjacent = self._adjacent_ext_addr_counts(router)
        if len(adjacent) == 1:
            neighbor_as = next(iter(adjacent))
            rel = self.rels.relationship(self.focal_asn, neighbor_as)
            # 5.3: a known peer or customer.
            if rel in (Rel.CUSTOMER, Rel.PEER):
                router.owner = neighbor_as
                router.reason = "5 relationship"
                return True
            # 5.4: a customer of a customer (sibling-induced gaps).
            intermediates = sorted(
                self.rels.providers_of(neighbor_as)
                & self.rels.customers_of(self.focal_asn)
            )
            if intermediates:
                router.owner = intermediates[0]
                router.reason = "5 missing customer"
                return True
            # 5.5: subsequent interfaces in a single AS with no known
            # relationship — a peering link hidden from public BGP.
            router.owner = neighbor_as
            router.reason = "5 hidden peer"
            return True
        return False

    def _step6(self, router: InferredRouter) -> bool:
        classes = self._classes(router)
        # IXP fabric addresses: infer from what follows across the fabric.
        if IXP_CLASS in classes:
            return self._step6_ixp(router)
        adjacent = self._adjacent_ext_addr_counts(router)
        if classes <= {VP} and classes and len(adjacent) >= 2:
            # 6.1: choose the AS with the most adjacent addresses.
            best = self._count_winner(adjacent)
            router.owner = best
            router.reason = "6 count"
            return True
        ext = self._ext_ases(router)
        if ext:
            # 6.2: plain IP-AS mapping of the router's own addresses.
            single = self._single_ext_as(router)
            router.owner = single if single is not None else min(ext)
            router.reason = "6 ipas"
            return True
        return False

    def _count_winner(self, adjacent: Counter) -> int:
        ranked = sorted(
            adjacent.items(), key=lambda kv: (-kv[1], kv[0])
        )
        top_count = ranked[0][1]
        tied = [asn for asn, count in ranked if count == top_count]
        if len(tied) > 1:
            for asn in tied:
                if self.rels.relationship(self.focal_asn, asn) is not None:
                    return asn
        return tied[0]

    def _step6_ixp(self, router: InferredRouter) -> bool:
        """Routers answering with IXP fabric addresses (§4 challenge 6)."""
        adjacent = self._adjacent_ext_addr_counts(router)
        if adjacent:
            router.owner = self._count_winner(adjacent)
            router.reason = "ixp"
            return True
        last_for = self._dst_sibling_collapse(router.last_hop_for - self.vp_ases)
        if len(last_for) == 1:
            router.owner = next(iter(last_for))
            router.reason = "ixp"
            return True
        candidate = self._nextas(router)
        if candidate is not None and candidate not in self.vp_ases:
            router.owner = candidate
            router.reason = "ixp"
            return True
        return False

    # -- §5.4.7 ------------------------------------------------------------------

    def _step7(self) -> None:
        """Collapse single-interface VP routers that share one neighbor
        router reached over point-to-point links (Fig 10)."""
        if not self.config.use_step7:
            return
        resolver = self.collection.resolver
        for neighbor in sorted(self.graph.routers):
            far = self.graph.routers.get(neighbor)
            if far is None or far.owner is None or far.owner in self.vp_ases:
                continue
            if far.owner == self.focal_asn:
                continue
            candidates: List[InferredRouter] = []
            for pred in self._pred_routers(far):
                if pred.owner != self.focal_asn or len(pred.addrs) != 1:
                    continue
                pred_addr = next(iter(pred.addrs))
                if self._p2p_attached(pred_addr, far):
                    candidates.append(pred)
            if len(candidates) < 2:
                continue
            keep = candidates[0]
            for absorb in candidates[1:]:
                if resolver is not None:
                    conflict = any(
                        resolver.evidence.get(a, b).negative
                        for a in keep.addrs
                        for b in absorb.addrs
                    )
                    if conflict:
                        continue
                self.graph.merge(keep.rid, absorb.rid)
                keep.reason = "7 alias"

    def _p2p_attached(self, pred_addr: int, far: InferredRouter) -> bool:
        for addr in far.addrs:
            for plen in (31, 30):
                if p2p_mate(addr, plen) == pred_addr:
                    return True
        for (prev, nxt), result in self.collection.prefixscans.items():
            if prev == pred_addr and nxt in far.addrs and result.confirmed:
                return True
        return False

    # -- §5.4.8 -------------------------------------------------------------------

    def _inferred_neighbor_ases(self) -> Set[int]:
        found: Set[int] = set()
        for router in self.graph.routers.values():
            if router.owner is not None and router.owner not in self.vp_ases:
                found.add(router.owner)
        return found

    def _step8(self) -> None:
        if not self.config.use_step8:
            return
        already = self._inferred_neighbor_ases()
        bgp_neighbors = self.view.neighbors_of_group(self.vp_ases)
        for neighbor_as in sorted(bgp_neighbors - already):
            final_vp_routers: Set[int] = set()
            saw_beyond = False
            icmp_from_neighbor = False
            considered = 0
            for path in self.graph.paths:
                if neighbor_as not in path.key:
                    continue
                considered += 1
                last_vp: Optional[int] = None
                for rid in path.routers:
                    if self.graph.routers[rid].owner == self.focal_asn:
                        last_vp = rid
                if last_vp is None:
                    continue
                final_vp_routers.add(last_vp)
                if path.routers and path.routers[-1] != last_vp:
                    saw_beyond = True
                if path.final_src is not None and path.final_kind in (
                    ResponseKind.ECHO_REPLY,
                    ResponseKind.DEST_UNREACH_ADMIN,
                    ResponseKind.DEST_UNREACH_NET,
                    ResponseKind.DEST_UNREACH_PORT,
                ):
                    src_origins = set(
                        self.view.origins_of_addr(path.final_src)
                    )
                    if neighbor_as in src_origins:
                        icmp_from_neighbor = True
            if considered == 0 or saw_beyond or len(final_vp_routers) != 1:
                continue
            near_rid = next(iter(final_vp_routers))
            reason = "8 other icmp" if icmp_from_neighbor else "8 silent"
            self.links.append(
                InferredLink(
                    near_rid=near_rid,
                    far_rid=None,
                    neighbor_as=neighbor_as,
                    reason=reason,
                    via_ixp=False,
                )
            )

    # -- link assembly ---------------------------------------------------------------

    def _assemble_links(self) -> None:
        seen: Set[Tuple[int, Optional[int], int]] = set()
        for rid in sorted(self.graph.routers):
            far = self.graph.routers[rid]
            if far.owner is None or far.owner == self.focal_asn:
                continue
            if far.owner in self.vp_ases:
                continue
            via_ixp = any(
                self.addr_class.get(addr) == IXP_CLASS for addr in far.addrs
            )
            for pred in self._pred_routers(far):
                if pred.owner != self.focal_asn:
                    continue
                key = (pred.rid, far.rid, far.owner)
                if key in seen:
                    continue
                seen.add(key)
                self.links.append(
                    InferredLink(
                        near_rid=pred.rid,
                        far_rid=far.rid,
                        neighbor_as=far.owner,
                        reason=far.reason,
                        via_ixp=via_ixp,
                    )
                )

    # -- driver --------------------------------------------------------------------

    def run(self) -> List[InferredLink]:
        self._prepare()
        for router in self.graph.by_distance():
            if router.owner is not None:
                continue
            for step in (
                self._step1,
                self._step2,
                self._step3,
                self._step4,
                self._step5,
                self._step6,
            ):
                if step(router):
                    break
        self._step7()
        if self.config.use_refinement:
            from .refine import refine_ownership

            refine_ownership(
                self.graph, self.rels, self.vp_ases, self.focal_asn
            )
        self._assemble_links()
        self._step8()
        return self.links
