"""The ordered ownership heuristics of §5.4, as a registry of passes.

Routers are visited in order of observed hop distance from the VP; for each
router the first matching *router-level* pass assigns an owner.  Two
*graph-level* passes then run: the §5.4.7 analytical alias collapse (before
link assembly) and the §5.4.8 silent-neighbor attachment (after).  Each
pass is one small class with a uniform
``apply(router, ctx) -> Optional[PassOutcome]`` interface reading a shared
:class:`~repro.core.pipeline.InferenceContext`:

========================  ========  ==========================================
pass                      paper     Table 1 labels
========================  ========  ==========================================
``vp_router``             §5.4.1    ``1 multihomed`` (VP routers: ``vp``)
``firewall``              §5.4.2    ``2 firewall``
``unrouted``              §5.4.3    ``3 unrouted``
``onenet``                §5.4.4    ``4 onenet``
``third_party``           §5.4.5    ``5 thirdparty``
``relationship``          §5.4.5    ``5 relationship``, ``5 missing
                                    customer``, ``5 hidden peer``
``ambiguous``             §5.4.6    ``6 count``, ``6 ipas``
``ixp_fabric``            §4 ch.6   ``ixp``
``alias_collapse``        §5.4.7    ``7 alias``
``silent_neighbor``       §5.4.8    ``8 silent``, ``8 other icmp``
========================  ========  ==========================================

Order and ablation are configured through :class:`HeuristicConfig` (the
``passes`` tuple overrides the default order; the legacy boolean switches
drop individual passes), not through if-chains.  Reasons are recorded with
the labels Table 1 uses so the coverage analysis can reproduce the table's
rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Type

from ..asgraph import Rel
from ..errors import InferenceError
from ..net import ResponseKind
from ..obs.provenance import (
    ASSIGNED,
    CO_ASSIGNED,
    CONSIDERED,
    DEGRADED,
    LINKED,
    MERGED,
)
from ..obs.trace import perf_clock
from ..topology.addressing import p2p_mate
from .pipeline import EXT, IXP_CLASS, UNROUTED, VP, InferenceContext
from .report import InferredLink
from .routergraph import InferredRouter

__all__ = [
    "VP",
    "EXT",
    "IXP_CLASS",
    "UNROUTED",
    "Assignment",
    "PassOutcome",
    "HeuristicPass",
    "GraphHeuristicPass",
    "HeuristicConfig",
    "InferenceEngine",
    "PASS_REGISTRY",
    "DEFAULT_PASS_ORDER",
    "build_context",
    "build_passes",
    "run_inference",
    "table1_row_order",
]


@dataclass
class HeuristicConfig:
    """Ablation and ordering switches for the heuristic passes."""

    use_third_party: bool = True   # §5.4.5 third-party detection
    use_relationships: bool = True # §5.4.5 relationship steps
    use_step7: bool = True
    use_step8: bool = True
    use_rir: bool = True           # §5.4.1 unannounced-VP-space attribution
    # Extension (off by default — the paper stops at the first border):
    # bdrmapIT-style neighbor-constraint refinement of deep annotations.
    use_refinement: bool = False
    # Pass order override: names from PASS_REGISTRY, applied in sequence.
    # None means DEFAULT_PASS_ORDER.  Omitting a name ablates that pass.
    passes: Optional[Tuple[str, ...]] = None


# ---------------------------------------------------------------- pass framework


@dataclass(frozen=True)
class Assignment:
    """One router-ownership decision made by a pass."""

    router: InferredRouter
    owner: int
    reason: str


@dataclass
class PassOutcome:
    """What a router-level pass decided: the primary router's assignment
    first, optionally followed by co-assignments (e.g. a multihomed chain
    or a third-party successor)."""

    assignments: List[Assignment] = field(default_factory=list)


class HeuristicPass:
    """A router-level §5.4 heuristic.

    ``apply`` returns None when the pass does not match; otherwise a
    :class:`PassOutcome` whose assignments the driver applies (owners are
    only ever written once) and counts.
    """

    name: str = ""
    section: str = ""
    # Reason labels this pass can emit for *neighbor* routers, in Table 1
    # display order.  ("vp" is not a Table 1 row: it marks VP-owned routers.)
    table1_labels: Tuple[str, ...] = ()

    def enabled(self, config: HeuristicConfig) -> bool:
        return True

    def apply(
        self, router: InferredRouter, ctx: InferenceContext
    ) -> Optional[PassOutcome]:
        raise NotImplementedError


class GraphHeuristicPass(HeuristicPass):
    """A graph-level pass (§5.4.7, §5.4.8): runs once over the whole graph
    instead of per router.  ``after_link_assembly`` orders it relative to
    link assembly."""

    after_link_assembly = False

    def apply(self, router, ctx):  # pragma: no cover - not router-level
        return None

    def apply_graph(self, ctx: InferenceContext) -> None:
        raise NotImplementedError


PASS_REGISTRY: Dict[str, Type[HeuristicPass]] = {}


def register_pass(cls: Type[HeuristicPass]) -> Type[HeuristicPass]:
    PASS_REGISTRY[cls.name] = cls
    return cls


# ---------------------------------------------------------------- router passes


@register_pass
class VPRouterPass(HeuristicPass):
    """§5.4.1: routers operated by the network hosting the VP, with the
    multihomed-neighbor exception (Fig 4)."""

    name = "vp_router"
    section = "§5.4.1"
    table1_labels = ("1 multihomed",)

    def apply(self, router, ctx):
        if ctx.classes(router) - {VP}:
            return None
        successors = ctx.succ_routers(router)
        vp_successors = [s for s in successors if VP in ctx.classes(s)]
        if not vp_successors:
            # A VP-addressed router whose next hop is an IXP fabric address
            # is the VP network's fabric-facing border: the fabric address
            # belongs to the *member's* router on the far side.
            if any(IXP_CLASS in ctx.classes(s) for s in successors):
                return PassOutcome([Assignment(router, ctx.focal_asn, "vp")])
            return None
        # Exception 1.1: a neighbor multihomed via adjacent routers.
        adjacent_ext = ctx.adjacent_ext_addr_counts(router)
        if len(adjacent_ext) == 1:
            neighbor_as = next(iter(adjacent_ext))
            chained = [
                s
                for s in vp_successors
                if self._succ_chain_only_reaches(s, neighbor_as, ctx)
            ]
            if chained and self._multihome_guard_ok(router, neighbor_as, ctx):
                assignments = [Assignment(router, neighbor_as, "1 multihomed")]
                assignments.extend(
                    Assignment(successor, neighbor_as, "1 multihomed")
                    for successor in chained
                )
                return PassOutcome(assignments)
        return PassOutcome([Assignment(router, ctx.focal_asn, "vp")])

    @staticmethod
    def _succ_chain_only_reaches(
        router: InferredRouter, asn: int, ctx: InferenceContext
    ) -> bool:
        """Does this VP-addressed router's own onward path actually lead
        into ``asn``?  (An empty onward view is no evidence of a chain —
        treating it as one made shared aggregation routers look like
        multihomed neighbors.)"""
        if ctx.classes(router) - {VP}:
            return False
        ext = ctx.adjacent_ext_addr_counts(router)
        return set(ext) == {asn}

    @staticmethod
    def _multihome_guard_ok(
        router: InferredRouter, neighbor_as: int, ctx: InferenceContext
    ) -> bool:
        """§5.4.1's guard: if any would-be owner downstream is a customer of
        the VP network but not a known neighbor of ``neighbor_as``, the
        router belongs to the VP network after all."""
        neighbor_neighbors = ctx.rels.neighbors(neighbor_as)
        for dst_as in sorted(router.dsts - ctx.vp_ases):
            if dst_as == neighbor_as:
                continue
            if (
                ctx.focal_asn in ctx.rels.providers_of(dst_as)
                and dst_as not in neighbor_neighbors
            ):
                return False
        return True


@register_pass
class FirewallPass(HeuristicPass):
    """§5.4.2: neighbor edge routers behind firewalls (Fig 5)."""

    name = "firewall"
    section = "§5.4.2"
    table1_labels = ("2 firewall",)

    def apply(self, router, ctx):
        if ctx.classes(router) - {VP}:
            return None
        if ctx.graph.successors(router.rid):
            return None
        last_for = ctx.dst_sibling_collapse(router.last_hop_for - ctx.vp_ases)
        if len(last_for) == 1:
            owner = next(iter(last_for))
            return PassOutcome([Assignment(router, owner, "2 firewall")])
        if len(last_for) > 1:
            candidate = ctx.nextas(router)
            if candidate is not None:
                if candidate in ctx.vp_ases:
                    return PassOutcome(
                        [Assignment(router, ctx.focal_asn, "vp")]
                    )
                return PassOutcome(
                    [Assignment(router, candidate, "2 firewall")]
                )
        return None


@register_pass
class UnroutedPass(HeuristicPass):
    """§5.4.3: neighbor routers with unrouted interface addresses (Fig 6)."""

    name = "unrouted"
    section = "§5.4.3"
    table1_labels = ("3 unrouted",)

    def apply(self, router, ctx):
        classes = ctx.classes(router)
        if not classes or classes - {UNROUTED}:
            return None
        first_routed: Set[int] = set()
        for path in ctx.graph.paths:
            if router.rid not in path.routers:
                continue
            index = path.routers.index(router.rid)
            for rid in path.routers[index + 1:]:
                later = ctx.graph.routers.get(rid)
                if later is None:
                    continue
                ases = ctx.ext_ases(later)
                if ases:
                    first_routed.update(ases)
                    break
        first_routed -= ctx.vp_ases
        if len(first_routed) == 1:
            owner = next(iter(first_routed))
            return PassOutcome([Assignment(router, owner, "3 unrouted")])
        if len(first_routed) > 1:
            votes: Dict[int, int] = {}
            for asn in first_routed:
                for provider in ctx.rels.providers_of(asn):
                    votes[provider] = votes.get(provider, 0) + 1
            if votes:
                best = max(votes.items(), key=lambda kv: (kv[1], -kv[0]))
                return PassOutcome(
                    [Assignment(router, best[0], "3 unrouted")]
                )
        candidate = ctx.nextas(router)
        if candidate is not None:
            return PassOutcome([Assignment(router, candidate, "3 unrouted")])
        return None


@register_pass
class OnenetPass(HeuristicPass):
    """§5.4.4: onenet — two consecutive hops in the same external AS
    (Fig 7)."""

    name = "onenet"
    section = "§5.4.4"
    table1_labels = ("4 onenet",)

    def apply(self, router, ctx):
        single = ctx.single_ext_as(router)
        if single is not None:
            # 4.1: the router's own addresses and some successor agree.
            for successor in ctx.succ_routers(router):
                if single in ctx.ext_ases(successor):
                    return PassOutcome(
                        [Assignment(router, single, "4 onenet")]
                    )
            return None
        if ctx.classes(router) - {VP}:
            return None
        # 4.2: VP-addressed router followed by two consecutive routers in
        # the same external AS.
        for path in ctx.graph.paths:
            routers = path.routers
            for index, rid in enumerate(routers[:-2]):
                if rid != router.rid:
                    continue
                first = ctx.graph.routers.get(routers[index + 1])
                second = ctx.graph.routers.get(routers[index + 2])
                if first is None or second is None:
                    continue
                shared = (
                    ctx.ext_ases(first) & ctx.ext_ases(second)
                ) - ctx.vp_ases
                if len(shared) == 1:
                    owner = next(iter(shared))
                    return PassOutcome(
                        [Assignment(router, owner, "4 onenet")]
                    )
        return None


def _third_party_shape(
    router: InferredRouter, ctx: InferenceContext
) -> Optional[int]:
    """If this router looks like a third-party responder — single external
    mapping A, observed only on paths toward a single network B, with A a
    provider of B — return B (§5.4.5, Fig 8)."""
    single = ctx.single_ext_as(router)
    if single is None:
        return None
    dsts = ctx.dst_sibling_collapse(router.dsts - ctx.vp_ases)
    if len(dsts) != 1:
        return None
    dst_as = next(iter(dsts))
    if dst_as == single:
        return None
    if ctx.rels.is_provider_of(single, dst_as):
        return dst_as
    return None


@register_pass
class ThirdPartyPass(HeuristicPass):
    """§5.4.5 steps 5.1–5.2: third-party responder detection."""

    name = "third_party"
    section = "§5.4.5"
    table1_labels = ("5 thirdparty",)

    def enabled(self, config):
        return config.use_third_party

    def apply(self, router, ctx):
        classes = ctx.classes(router)
        if classes <= {EXT} and classes:
            # 5.2: the router itself responds with a third-party address.
            third = _third_party_shape(router, ctx)
            if third is not None:
                return PassOutcome(
                    [Assignment(router, third, "5 thirdparty")]
                )
            return None
        if classes - {VP}:
            return None
        # 5.1: the router holds VP-supplied addresses (a far-side
        # candidate) and a successor is a third-party responder.
        for successor in ctx.succ_routers(router):
            third = _third_party_shape(successor, ctx)
            if third is not None:
                return PassOutcome(
                    [
                        Assignment(router, third, "5 thirdparty"),
                        Assignment(successor, third, "5 thirdparty"),
                    ]
                )
        return None


@register_pass
class RelationshipPass(HeuristicPass):
    """§5.4.5 steps 5.3–5.5: relationship-guided inference."""

    name = "relationship"
    section = "§5.4.5"
    table1_labels = ("5 relationship", "5 missing customer", "5 hidden peer")

    def enabled(self, config):
        return config.use_relationships

    def apply(self, router, ctx):
        classes = ctx.classes(router)
        if classes - {VP}:
            return None
        adjacent = ctx.adjacent_ext_addr_counts(router)
        if len(adjacent) != 1:
            return None
        neighbor_as = next(iter(adjacent))
        rel = ctx.rels.relationship(ctx.focal_asn, neighbor_as)
        # 5.3: a known peer or customer.
        if rel in (Rel.CUSTOMER, Rel.PEER):
            return PassOutcome(
                [Assignment(router, neighbor_as, "5 relationship")]
            )
        # 5.4: a customer of a customer (sibling-induced gaps).
        intermediates = sorted(
            ctx.rels.providers_of(neighbor_as)
            & ctx.rels.customers_of(ctx.focal_asn)
        )
        if intermediates:
            return PassOutcome(
                [Assignment(router, intermediates[0], "5 missing customer")]
            )
        # 5.5: subsequent interfaces in a single AS with no known
        # relationship — a peering link hidden from public BGP.
        return PassOutcome(
            [Assignment(router, neighbor_as, "5 hidden peer")]
        )


@register_pass
class AmbiguousPass(HeuristicPass):
    """§5.4.6: IP-AS mapping in ambiguous multi-AS neighborhoods (Fig 9)."""

    name = "ambiguous"
    section = "§5.4.6"
    table1_labels = ("6 count", "6 ipas")

    def apply(self, router, ctx):
        classes = ctx.classes(router)
        if IXP_CLASS in classes:
            return None  # fabric addresses are the ixp_fabric pass's job
        adjacent = ctx.adjacent_ext_addr_counts(router)
        if classes <= {VP} and classes and len(adjacent) >= 2:
            # 6.1: choose the AS with the most adjacent addresses.
            return PassOutcome(
                [Assignment(router, ctx.count_winner(adjacent), "6 count")]
            )
        ext = ctx.ext_ases(router)
        if ext:
            # 6.2: plain IP-AS mapping of the router's own addresses.
            single = ctx.single_ext_as(router)
            owner = single if single is not None else min(ext)
            return PassOutcome([Assignment(router, owner, "6 ipas")])
        return None


@register_pass
class IXPFabricPass(HeuristicPass):
    """Routers answering with IXP fabric addresses (§4 challenge 6):
    infer from what follows across the fabric."""

    name = "ixp_fabric"
    section = "§4 ch.6"
    table1_labels = ("ixp",)

    def apply(self, router, ctx):
        if IXP_CLASS not in ctx.classes(router):
            return None
        adjacent = ctx.adjacent_ext_addr_counts(router)
        if adjacent:
            return PassOutcome(
                [Assignment(router, ctx.count_winner(adjacent), "ixp")]
            )
        last_for = ctx.dst_sibling_collapse(router.last_hop_for - ctx.vp_ases)
        if len(last_for) == 1:
            return PassOutcome(
                [Assignment(router, next(iter(last_for)), "ixp")]
            )
        candidate = ctx.nextas(router)
        if candidate is not None and candidate not in ctx.vp_ases:
            return PassOutcome([Assignment(router, candidate, "ixp")])
        return None


# ---------------------------------------------------------------- graph passes


@register_pass
class AliasCollapsePass(GraphHeuristicPass):
    """§5.4.7: collapse single-interface VP routers that share one neighbor
    router reached over point-to-point links (Fig 10)."""

    name = "alias_collapse"
    section = "§5.4.7"
    table1_labels = ("7 alias",)
    after_link_assembly = False

    def enabled(self, config):
        return config.use_step7

    def apply_graph(self, ctx):
        resolver = ctx.collection.resolver
        for neighbor in sorted(ctx.graph.routers):
            far = ctx.graph.routers.get(neighbor)
            if far is None or far.owner is None or far.owner in ctx.vp_ases:
                continue
            if far.owner == ctx.focal_asn:
                continue
            candidates: List[InferredRouter] = []
            for pred in ctx.pred_routers(far):
                if pred.owner != ctx.focal_asn or len(pred.addrs) != 1:
                    continue
                pred_addr = next(iter(pred.addrs))
                if self._p2p_attached(pred_addr, far, ctx):
                    candidates.append(pred)
            if len(candidates) < 2:
                continue
            keep = candidates[0]
            for absorb in candidates[1:]:
                if resolver is not None:
                    conflict = any(
                        resolver.evidence.get(a, b).negative
                        for a in keep.addrs
                        for b in absorb.addrs
                    )
                    if conflict:
                        continue
                ctx.graph.merge(keep.rid, absorb.rid)
                keep.reason = "7 alias"
                ctx.record(self.name, "7 alias")
                ctx.provenance.add(
                    absorb.rid, self.name, self.section, MERGED,
                    owner=far.owner, reason="7 alias",
                    evidence={"into_router": keep.rid,
                              "neighbor_router": far.rid},
                )

    @staticmethod
    def _p2p_attached(
        pred_addr: int, far: InferredRouter, ctx: InferenceContext
    ) -> bool:
        for addr in far.addrs:
            for plen in (31, 30):
                if p2p_mate(addr, plen) == pred_addr:
                    return True
        for (prev, nxt), result in ctx.collection.prefixscans.items():
            if prev == pred_addr and nxt in far.addrs and result.confirmed:
                return True
        return False


@register_pass
class SilentNeighborPass(GraphHeuristicPass):
    """§5.4.8: BGP neighbors that never send TTL-expired messages
    (Fig 11) — attach them at the last VP router their probes reached."""

    name = "silent_neighbor"
    section = "§5.4.8"
    table1_labels = ("8 silent", "8 other icmp")
    after_link_assembly = True

    def enabled(self, config):
        return config.use_step8

    def apply_graph(self, ctx):
        already = self._inferred_neighbor_ases(ctx)
        bgp_neighbors = ctx.view.neighbors_of_group(ctx.vp_ases)
        for neighbor_as in sorted(bgp_neighbors - already):
            final_vp_routers: Set[int] = set()
            saw_beyond = False
            icmp_from_neighbor = False
            considered = 0
            for path in ctx.graph.paths:
                if neighbor_as not in path.key:
                    continue
                considered += 1
                last_vp: Optional[int] = None
                for rid in path.routers:
                    if ctx.graph.routers[rid].owner == ctx.focal_asn:
                        last_vp = rid
                if last_vp is None:
                    continue
                final_vp_routers.add(last_vp)
                if path.routers and path.routers[-1] != last_vp:
                    saw_beyond = True
                if path.final_src is not None and path.final_kind in (
                    ResponseKind.ECHO_REPLY,
                    ResponseKind.DEST_UNREACH_ADMIN,
                    ResponseKind.DEST_UNREACH_NET,
                    ResponseKind.DEST_UNREACH_PORT,
                ):
                    src_origins = set(
                        ctx.view.origins_of_addr(path.final_src)
                    )
                    if neighbor_as in src_origins:
                        icmp_from_neighbor = True
            if considered == 0 or saw_beyond or len(final_vp_routers) != 1:
                continue
            near_rid = next(iter(final_vp_routers))
            reason = "8 other icmp" if icmp_from_neighbor else "8 silent"
            ctx.links.append(
                InferredLink(
                    near_rid=near_rid,
                    far_rid=None,
                    neighbor_as=neighbor_as,
                    reason=reason,
                    via_ixp=False,
                )
            )
            ctx.record(self.name, reason)
            ctx.provenance.add(
                near_rid, self.name, self.section, LINKED,
                owner=neighbor_as, reason=reason,
            )

    @staticmethod
    def _inferred_neighbor_ases(ctx: InferenceContext) -> Set[int]:
        found: Set[int] = set()
        for router in ctx.graph.routers.values():
            if router.owner is not None and router.owner not in ctx.vp_ases:
                found.add(router.owner)
        return found


# The §5.4 application order.  ``ambiguous`` and ``ixp_fabric`` partition
# §5.4.6's routers (fabric-addressed vs not), so their relative order only
# fixes Table 1's row order.
DEFAULT_PASS_ORDER: Tuple[str, ...] = (
    "vp_router",
    "firewall",
    "unrouted",
    "onenet",
    "third_party",
    "relationship",
    "ambiguous",
    "ixp_fabric",
    "alias_collapse",
    "silent_neighbor",
)


def build_passes(config: HeuristicConfig) -> List[HeuristicPass]:
    """Instantiate the configured passes, in order, honoring ablations."""
    order = config.passes if config.passes is not None else DEFAULT_PASS_ORDER
    passes: List[HeuristicPass] = []
    for name in order:
        try:
            cls = PASS_REGISTRY[name]
        except KeyError:
            raise ValueError(
                "unknown heuristic pass %r (known: %s)"
                % (name, ", ".join(sorted(PASS_REGISTRY)))
            ) from None
        instance = cls()
        if instance.enabled(config):
            passes.append(instance)
    return passes


def table1_row_order() -> List[str]:
    """Table 1's heuristic rows, derived from the pass registry order."""
    rows: List[str] = []
    for name in DEFAULT_PASS_ORDER:
        rows.extend(PASS_REGISTRY[name].table1_labels)
    return rows


# ---------------------------------------------------------------- the driver


def build_context(graph, collection, data, config=None,
                  metrics=None, tracer=None) -> InferenceContext:
    """Assemble an :class:`InferenceContext` from a router graph, a
    collection, and the shared §5.2 :class:`~repro.core.bdrmap.DataBundle`."""
    ctx = InferenceContext(
        graph=graph,
        collection=collection,
        view=data.view,
        rels=data.rels,
        vp_ases=frozenset(data.vp_ases),
        focal_asn=data.focal_asn,
        ixp_data=data.ixp,
        rir=data.rir,
        config=config or HeuristicConfig(),
    )
    if metrics is not None:
        ctx.metrics = metrics
    if tracer is not None:
        ctx.tracer = tracer
    return ctx


# Exceptions a heuristic pass can hit on partial or noisy evidence
# (missing hops, empty candidate sets, inconsistent caches).  They are a
# property of the data, not a bug: inference falls through to the next —
# weaker — pass rather than aborting the run.
_PARTIAL_EVIDENCE_ERRORS = (
    InferenceError,
    KeyError,
    IndexError,
    ZeroDivisionError,
)


def _apply_passes_to_router(
    ctx: InferenceContext,
    router: InferredRouter,
    passes: List[HeuristicPass],
    observer=None,
) -> Optional[str]:
    """Run the ordered router-level passes over one unowned router
    (first match wins), with full metrics/tracing/provenance emission.

    Returns the deciding pass name (None when every pass fell through).
    ``observer``, when given, is called once as
    ``observer(router, trail, deciding, attempted)`` where ``trail`` is
    the ``(pass_name, verdict, error_type)`` sequence of the
    non-deciding consults and ``attempted`` is the deciding pass's full
    assignment list — this is the hook the incremental epoch pipeline
    uses to record replayable application events without re-implementing
    the pass loop.
    """
    metrics = ctx.metrics
    timed = metrics.enabled
    provenance = ctx.provenance
    trail: List[Tuple[str, str, Optional[str]]] = []
    deciding: Optional[str] = None
    attempted: List[Assignment] = []
    for heuristic in passes:
        with ctx.tracer.span(
            "pass.%s" % heuristic.name, router=router.rid
        ):
            started = perf_clock() if timed else 0.0
            try:
                outcome = heuristic.apply(router, ctx)
            except _PARTIAL_EVIDENCE_ERRORS as exc:
                ctx.degrade(heuristic.name)
                provenance.add(
                    router.rid, heuristic.name, heuristic.section,
                    DEGRADED,
                    evidence={"error": type(exc).__name__},
                )
                trail.append(
                    (heuristic.name, DEGRADED, type(exc).__name__)
                )
                if timed:
                    metrics.time(
                        "pass.%s.seconds" % heuristic.name,
                        perf_clock() - started,
                    )
                continue
            if timed:
                metrics.time(
                    "pass.%s.seconds" % heuristic.name,
                    perf_clock() - started,
                )
        if outcome is None:
            provenance.add(
                router.rid, heuristic.name, heuristic.section,
                CONSIDERED,
            )
            trail.append((heuristic.name, CONSIDERED, None))
            continue
        deciding = heuristic.name
        attempted = list(outcome.assignments)
        for assignment in outcome.assignments:
            if assignment.router.owner is None:
                assignment.router.owner = assignment.owner
                assignment.router.reason = assignment.reason
                ctx.record(heuristic.name, assignment.reason)
                if assignment.router.rid == router.rid:
                    provenance.add(
                        router.rid, heuristic.name, heuristic.section,
                        ASSIGNED, owner=assignment.owner,
                        reason=assignment.reason,
                    )
                else:
                    provenance.add(
                        assignment.router.rid, heuristic.name,
                        heuristic.section, CO_ASSIGNED,
                        owner=assignment.owner,
                        reason=assignment.reason,
                        evidence={"via_router": router.rid},
                    )
        break
    if observer is not None:
        observer(router, trail, deciding, attempted)
    return deciding


def _apply_router_passes(
    ctx: InferenceContext, passes: List[HeuristicPass]
) -> None:
    for router in ctx.graph.by_distance():
        if router.owner is not None:
            continue
        _apply_passes_to_router(ctx, router, passes)


def _assemble_links(ctx: InferenceContext) -> None:
    seen: Set[Tuple[int, Optional[int], int]] = set()
    for rid in sorted(ctx.graph.routers):
        far = ctx.graph.routers[rid]
        if far.owner is None or far.owner == ctx.focal_asn:
            continue
        if far.owner in ctx.vp_ases:
            continue
        via_ixp = any(
            ctx.addr_class.get(addr) == IXP_CLASS for addr in far.addrs
        )
        for pred in ctx.pred_routers(far):
            if pred.owner != ctx.focal_asn:
                continue
            key = (pred.rid, far.rid, far.owner)
            if key in seen:
                continue
            seen.add(key)
            ctx.links.append(
                InferredLink(
                    near_rid=pred.rid,
                    far_rid=far.rid,
                    neighbor_as=far.owner,
                    reason=far.reason,
                    via_ixp=via_ixp,
                )
            )


def run_inference(ctx: InferenceContext) -> List[InferredLink]:
    """Run the configured passes over ``ctx``'s router graph and return
    the inferred interdomain links."""
    passes = build_passes(ctx.config)
    router_passes = [
        p for p in passes if not isinstance(p, GraphHeuristicPass)
    ]
    pre_assembly = [
        p
        for p in passes
        if isinstance(p, GraphHeuristicPass) and not p.after_link_assembly
    ]
    post_assembly = [
        p
        for p in passes
        if isinstance(p, GraphHeuristicPass) and p.after_link_assembly
    ]
    tracer = ctx.tracer
    with tracer.span("inference.prepare"):
        ctx.prepare()
    with tracer.span("inference.router_passes"):
        _apply_router_passes(ctx, router_passes)
    for heuristic in pre_assembly:
        with tracer.span("pass.%s" % heuristic.name):
            try:
                heuristic.apply_graph(ctx)
            except _PARTIAL_EVIDENCE_ERRORS:
                ctx.degrade(heuristic.name)
    if ctx.config.use_refinement:
        from .refine import refine_ownership

        with tracer.span("inference.refine"):
            refine_ownership(ctx.graph, ctx.rels, ctx.vp_ases, ctx.focal_asn)
    with tracer.span("inference.link_assembly"):
        _assemble_links(ctx)
    for heuristic in post_assembly:
        with tracer.span("pass.%s" % heuristic.name):
            try:
                heuristic.apply_graph(ctx)
            except _PARTIAL_EVIDENCE_ERRORS:
                ctx.degrade(heuristic.name)
    return ctx.links


# ---------------------------------------------------------------- legacy facade


class InferenceEngine:
    """Compatibility facade over the pass registry.

    Historically a 650-line monolith; now it only builds an
    :class:`InferenceContext` and delegates to :func:`run_inference`.
    Kept because its constructor signature is the natural way to run
    inference over hand-built inputs (see ``tests/helpers.py``).
    """

    def __init__(
        self,
        graph,
        collection,
        view,
        rels,
        vp_ases,
        focal_asn,
        ixp_data=None,
        rir=None,
        config=None,
    ) -> None:
        self.config = config or HeuristicConfig()
        self.ctx = InferenceContext(
            graph=graph,
            collection=collection,
            view=view,
            rels=rels,
            vp_ases=frozenset(vp_ases),
            focal_asn=focal_asn,
            ixp_data=ixp_data,
            rir=rir,
            config=self.config,
        )

    @property
    def graph(self):
        return self.ctx.graph

    @property
    def addr_class(self) -> Dict[int, str]:
        return self.ctx.addr_class

    @property
    def addr_origins(self) -> Dict[int, Tuple[int, ...]]:
        return self.ctx.addr_origins

    @property
    def links(self) -> List[InferredLink]:
        return self.ctx.links

    @property
    def pass_counts(self):
        return self.ctx.pass_counts

    def run(self) -> List[InferredLink]:
        return run_inference(self.ctx)
