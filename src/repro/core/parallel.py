"""The parallel multi-VP collection engine (§5.8 at process scale).

The legacy :class:`~repro.core.orchestrator.MultiVPOrchestrator` drives
every VP against **one** shared simulator, so its VPs are coupled through
the virtual clock, the IPID streams, and (optionally) a shared alias
resolver.  That coupling is faithful to one central box driving scamper
on many VPs — but it pins the whole run to one CPU.

This engine trades the coupling for throughput, with a determinism
contract strong enough that the trade is observable only in wall-clock
time:

* **Per-VP isolation.**  Every VP runs against freshly-reset network
  state (:meth:`~repro.net.network.Network.reset`) on a scenario rebuilt
  from the same :class:`ScenarioSpec`, with its own metrics registry and
  its own alias resolver.  A VP's result is therefore a pure function of
  ``(spec, vp, config)`` — independent of which worker ran it, how many
  workers there were, or what ran before it.
* **Deterministic merge.**  Per-VP results, reports, metrics deltas,
  fault counts, and alias evidence are merged **in VP order**, so the
  assembled :class:`~repro.core.orchestrator.OrchestratedRun` (and its
  :func:`~repro.io.serialize.orchestrated_run_to_dict` serialization) is
  byte-identical for ``workers=1`` and ``workers=N``.

Workers are ``spawn``-context processes: each rebuilds the scenario from
the picklable spec once, then runs its share of VPs (stride-sharded)
with a :meth:`Network.reset` between VPs — build cost is amortised
across the shard, and the warm
:class:`~repro.net.routing.RoutingOracle` caches carry over safely
because they are pure functions of the static topology.

Checkpointing mirrors the sequential orchestrator: each worker writes a
partial checkpoint (``<path>.worker<K>``) after every VP, and the parent
merges the partials into the canonical checkpoint at ``<path>`` on join.
``resume=True`` reloads the canonical checkpoint *and* any leftover
partials from a crashed run, skips the completed VPs, and replays their
stored metrics deltas so the resumed registry equals a fresh run's.
"""

from __future__ import annotations

import glob
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..obs.trace import NULL_TRACER, Tracer
from .bdrmap import Bdrmap, BdrmapConfig, build_data_bundle
from .orchestrator import (
    OrchestratedRun,
    RunReport,
    _failed_vp_report,
    _vp_report_from_state,
)


@dataclass(frozen=True)
class ScenarioSpec:
    """A picklable recipe for rebuilding a scenario in a worker process.

    Carries everything a worker needs: the registered factory name, the
    seed, factory keyword overrides, and the fault profile — a built
    ``Scenario`` holds an un-picklable object graph, but its recipe is
    three scalars and a dict.
    """

    name: str
    seed: Optional[int] = None
    factory_kwargs: Tuple[Tuple[str, Any], ...] = ()
    fault_profile: str = "clean"
    fault_seed: int = 0

    @classmethod
    def make(cls, name: str, seed: Optional[int] = None,
             fault_profile: str = "clean", fault_seed: int = 0,
             **kwargs) -> "ScenarioSpec":
        return cls(
            name=name,
            seed=seed,
            factory_kwargs=tuple(sorted(kwargs.items())),
            fault_profile=fault_profile,
            fault_seed=fault_seed,
        )

    def build(self):
        """Rebuild the scenario (with its fault plan, if any)."""
        from ..topology import build_scenario, scenario_config

        scenario = build_scenario(
            scenario_config(
                self.name, seed=self.seed, **dict(self.factory_kwargs)
            )
        )
        if self.fault_profile != "clean":
            from ..net.faults import make_fault_plan

            scenario.network.faults = make_fault_plan(
                self.fault_profile, seed=self.fault_seed
            )
        return scenario


# ---------------------------------------------------------------- worker side


def _run_single_vp(scenario, data, index: int, config: BdrmapConfig,
                   collect_metrics: bool) -> Dict[str, Any]:
    """Run one VP against freshly-reset network state; return a JSON-able
    payload (report/result/metrics/faults/evidence) for the merge step."""
    from ..io.serialize import (
        _vp_report_to_dict,
        evidence_to_list,
        result_to_dict,
    )

    network = scenario.network
    network.reset()
    vp = scenario.vps[index]
    metrics = MetricsRegistry() if collect_metrics else None
    if metrics is not None:
        network.attach_metrics(metrics)
    driver = Bdrmap(
        network, vp, data, config, resolver=None, metrics=metrics
    )
    payload: Dict[str, Any] = {"vp": vp.name, "index": index}
    try:
        result = driver.run()
    except Exception as exc:  # noqa: BLE001 - isolate the VP
        payload["report"] = _vp_report_to_dict(_failed_vp_report(vp, exc))
        return payload
    payload["report"] = _vp_report_to_dict(
        _vp_report_from_state(driver.state, result)
    )
    payload["result"] = result_to_dict(result)
    if metrics is not None:
        payload["metrics"] = metrics.as_dict()
    if network.faults is not None:
        payload["faults"] = {
            name: count
            for name, count in network.faults.stats.as_dict().items()
            if count
        }
    resolver = (
        driver.collection.resolver if driver.collection is not None else None
    )
    if resolver is not None:
        payload["evidence"] = evidence_to_list(resolver.evidence)
    return payload


def _write_partial_checkpoint(path: str,
                              payloads: List[Dict[str, Any]]) -> None:
    """One worker's completed VPs so far, in canonical checkpoint form
    (failed VPs excluded, like the sequential orchestrator)."""
    from ..io.serialize import CHECKPOINT_FORMAT

    entries = []
    for payload in payloads:
        if "result" not in payload:
            continue
        entry = {
            "report": payload["report"],
            "result": payload["result"],
        }
        if "metrics" in payload:
            entry["metrics"] = payload["metrics"]
        entries.append(entry)
    with open(path, "w") as handle:
        json.dump({"format": CHECKPOINT_FORMAT, "vps": entries}, handle,
                  indent=1)


def _worker_run(spec: ScenarioSpec, indices: List[int],
                config: BdrmapConfig, collect_metrics: bool,
                checkpoint_path: Optional[str]) -> List[Dict[str, Any]]:
    """Process entry point: build the scenario once, run a shard of VPs
    with a network reset between them."""
    scenario = spec.build()
    data = build_data_bundle(scenario)
    payloads: List[Dict[str, Any]] = []
    for index in indices:
        payloads.append(
            _run_single_vp(scenario, data, index, config, collect_metrics)
        )
        if checkpoint_path:
            _write_partial_checkpoint(checkpoint_path, payloads)
    return payloads


# ---------------------------------------------------------------- parent side


class ParallelOrchestrator:
    """Shard a scenario's VPs across worker processes and merge the
    results back into one :class:`OrchestratedRun`.

    ``workers <= 1`` runs the same engine inline (no subprocesses) — the
    byte-identity baseline the determinism tests compare against.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        scenario=None,
        data=None,
        config: Optional[BdrmapConfig] = None,
        workers: int = 1,
        checkpoint_path: Optional[str] = None,
        resume: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.scenario = scenario
        self.data = data
        self.config = config or BdrmapConfig()
        self.workers = workers
        self.checkpoint_path = checkpoint_path
        self.resume = resume
        self.resumed_vps: set = set()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- resume ---------------------------------------------------------------

    def _partial_paths(self) -> List[str]:
        assert self.checkpoint_path
        return sorted(glob.glob(self.checkpoint_path + ".worker*"))

    def _load_done_entries(self) -> Dict[str, Dict[str, Any]]:
        """vp_name -> checkpoint entry for every VP completed by a prior
        run — from the canonical checkpoint and any leftover worker
        partials a crash stranded."""
        from ..io.serialize import CHECKPOINT_FORMAT

        if not (self.resume and self.checkpoint_path):
            return {}
        done: Dict[str, Dict[str, Any]] = {}
        paths = []
        if os.path.exists(self.checkpoint_path):
            paths.append(self.checkpoint_path)
        paths.extend(self._partial_paths())
        for path in paths:
            with open(path) as handle:
                data = json.load(handle)
            if data.get("format") != CHECKPOINT_FORMAT:
                continue
            for entry in data.get("vps", []):
                if entry["report"].get("failed"):
                    continue
                done[entry["report"]["vp_name"]] = entry
        return done

    # -- merge ----------------------------------------------------------------

    def _merge(self, scenario, entries_by_vp: Dict[str, Dict[str, Any]],
               payloads_by_vp: Dict[str, Dict[str, Any]]) -> OrchestratedRun:
        """Assemble the run in VP order from resumed entries and fresh
        payloads; merge metrics deltas, fault counts, and evidence."""
        from ..alias import AliasResolver
        from ..io.serialize import (
            _vp_report_from_dict,
            evidence_into_store,
            result_from_dict,
        )

        report = RunReport(
            focal_asn=scenario.focal_asn,
            vp_ases=set(scenario.vp_as_list),
            interleaved=False,
            shared_aliases=False,
        )
        results = []
        fault_totals: Dict[str, int] = {}
        resolver = AliasResolver(network=None, vp_addr=0)
        merged_evidence = False
        for vp in scenario.vps:
            payload = payloads_by_vp.get(vp.name)
            if payload is None:
                entry = entries_by_vp.get(vp.name)
                if entry is None:
                    continue  # resumed run where the VP never completed
                payload = dict(entry)
                payload["vp"] = vp.name
            vp_report = _vp_report_from_dict(payload["report"])
            report.vp_reports.append(vp_report)
            if vp_report.failed:
                self.metrics.inc("run.vps_failed")
                continue
            results.append(result_from_dict(payload["result"]))
            if self.metrics.enabled and "metrics" in payload:
                self.metrics.merge_delta(payload["metrics"])
            self.metrics.inc("run.vps_completed")
            for name, count in payload.get("faults", {}).items():
                fault_totals[name] = fault_totals.get(name, 0) + count
            if "evidence" in payload:
                evidence_into_store(payload["evidence"], resolver.evidence)
                merged_evidence = True
        report.fault_counts = {
            name: count for name, count in fault_totals.items() if count
        }
        return OrchestratedRun(
            results=results,
            report=report,
            shared_resolver=resolver if merged_evidence else None,
        )

    def _save_merged_checkpoint(self, scenario,
                                entries_by_vp: Dict[str, Dict[str, Any]],
                                payloads_by_vp: Dict[str, Dict[str, Any]]
                                ) -> None:
        """Fold partials + resumed entries into the canonical checkpoint
        and clear the per-worker partial files."""
        from ..io.serialize import CHECKPOINT_FORMAT

        if not self.checkpoint_path:
            return
        entries = []
        for vp in scenario.vps:
            payload = payloads_by_vp.get(vp.name)
            if payload is None:
                payload = entries_by_vp.get(vp.name)
            if payload is None or "result" not in payload:
                continue
            entry = {
                "report": payload["report"],
                "result": payload["result"],
            }
            if "metrics" in payload:
                entry["metrics"] = payload["metrics"]
            entries.append(entry)
        with open(self.checkpoint_path, "w") as handle:
            json.dump({"format": CHECKPOINT_FORMAT, "vps": entries},
                      handle, indent=1)
        for path in self._partial_paths():
            os.remove(path)

    # -- run ------------------------------------------------------------------

    def run(self) -> OrchestratedRun:
        if self.scenario is None:
            self.scenario = self.spec.build()
        scenario = self.scenario
        entries_by_vp = self._load_done_entries()
        self.resumed_vps = set(entries_by_vp)
        if self.metrics.enabled:
            self.metrics.set_gauge("run.vps", len(scenario.vps))
            self.metrics.set_gauge("run.workers", self.workers)
        todo = [
            index for index, vp in enumerate(scenario.vps)
            if vp.name not in entries_by_vp
        ]
        collect_metrics = self.metrics.enabled
        payloads_by_vp: Dict[str, Dict[str, Any]] = {}
        with self.tracer.span("parallel.collect", workers=self.workers):
            if self.workers <= 1 or len(todo) <= 1:
                payloads = self._run_inline(scenario, todo, collect_metrics)
            else:
                payloads = self._run_pool(todo, collect_metrics)
        for payload in payloads:
            payloads_by_vp[payload["vp"]] = payload
        # Replay resumed VPs' deltas too: fresh registry == resumed one.
        with self.tracer.span("parallel.merge"):
            run = self._merge(scenario, entries_by_vp, payloads_by_vp)
            self._save_merged_checkpoint(
                scenario, entries_by_vp, payloads_by_vp
            )
        return run

    def _run_inline(self, scenario, todo: List[int],
                    collect_metrics: bool) -> List[Dict[str, Any]]:
        """The workers<=1 path: same per-VP isolation, no subprocesses.
        Reuses the already-built parent scenario and writes the canonical
        checkpoint incrementally (there is only one 'worker')."""
        if self.data is None:
            self.data = build_data_bundle(scenario)
        data = self.data
        payloads: List[Dict[str, Any]] = []
        partial = (
            self.checkpoint_path + ".worker0"
            if self.checkpoint_path else None
        )
        for index in todo:
            with self.tracer.span("vp." + scenario.vps[index].name):
                payloads.append(
                    _run_single_vp(
                        scenario, data, index, self.config, collect_metrics
                    )
                )
            if partial:
                _write_partial_checkpoint(partial, payloads)
        return payloads

    def _run_pool(self, todo: List[int],
                  collect_metrics: bool) -> List[Dict[str, Any]]:
        """Stride-shard the remaining VPs across spawn-context workers."""
        import multiprocessing

        workers = min(self.workers, len(todo))
        shards = [todo[k::workers] for k in range(workers)]
        context = multiprocessing.get_context("spawn")
        payloads: List[Dict[str, Any]] = []
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = [
                pool.submit(
                    _worker_run,
                    self.spec,
                    shard,
                    self.config,
                    collect_metrics,
                    (
                        "%s.worker%d" % (self.checkpoint_path, k)
                        if self.checkpoint_path else None
                    ),
                )
                for k, shard in enumerate(shards)
            ]
            for future in futures:
                payloads.extend(future.result())
        return payloads


def run_parallel(spec: ScenarioSpec, **kwargs) -> OrchestratedRun:
    """One-call convenience wrapper around :class:`ParallelOrchestrator`."""
    return ParallelOrchestrator(spec, **kwargs).run()
