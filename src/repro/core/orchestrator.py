"""The multi-VP orchestrator (§5.8, §6).

The paper's deployment is one central system driving many VPs whose input
data is shared: the BGP view, relationship inferences, RIR/IXP datasets —
and the alias evidence, because aliases are a property of routers, not of
vantage points.  :class:`MultiVPOrchestrator` builds the
:class:`~repro.core.bdrmap.DataBundle` once, optionally shares one
:class:`~repro.alias.AliasResolver` across VPs, and (by default)
interleaves every VP's traceroute tasks through one
:class:`~repro.probing.scheduler.RoundRobinScheduler`, so N VPs probe
concurrently in virtual time instead of taking turns.

Each run emits a :class:`RunReport`: per-VP and per-stage virtual-time and
probe accounting plus per-heuristic-pass assignment counts keyed by the
Table 1 reason labels.  Reports round-trip through
:mod:`repro.io.serialize`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..alias import AliasResolver
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..obs.trace import NULL_TRACER, Tracer
from .bdrmap import (
    Bdrmap,
    BdrmapConfig,
    DataBundle,
    build_data_bundle,
    result_from_state,
)
from .collection import Collector
from .pipeline import (
    GraphBuildStage,
    InferenceStage,
    Pipeline,
    PipelineState,
    StageTiming,
)
from .report import BdrmapResult
from ..probing.scheduler import RoundRobinScheduler

REPORT_FORMAT = "bdrmap-repro-report/1"


@dataclass
class VPReport:
    """Per-VP accounting for one orchestrated run."""

    vp_name: str
    vp_addr: int
    traces_run: int = 0
    probes_used: int = 0
    links: int = 0
    neighbor_ases: int = 0
    stage_timings: List[StageTiming] = field(default_factory=list)
    # Assignments per pass name and per Table 1 reason label.
    pass_counts: Dict[str, int] = field(default_factory=dict)
    reason_counts: Dict[str, int] = field(default_factory=dict)
    # Resilience accounting: probe retries spent, heuristic passes that
    # degraded on partial evidence, and crash isolation (a VP whose run
    # raised is reported failed; the rest of the run continues).
    retries: int = 0
    degradation_counts: Dict[str, int] = field(default_factory=dict)
    failed: bool = False
    error: Optional[str] = None


@dataclass
class RunReport:
    """What a multi-VP orchestrated run did, per VP, stage, and pass."""

    focal_asn: int
    vp_ases: Set[int] = field(default_factory=set)
    interleaved: bool = False
    shared_aliases: bool = False
    vp_reports: List[VPReport] = field(default_factory=list)
    # Work not attributable to a single VP (the interleaved traceroute
    # phase, where all VPs' probing shares the scheduler).
    global_timings: List[StageTiming] = field(default_factory=list)
    # What the network's FaultPlan injected (empty when no faults ran),
    # and probing tasks that crashed inside the shared scheduler.
    fault_counts: Dict[str, int] = field(default_factory=dict)
    task_failures: int = 0

    @property
    def total_probes(self) -> int:
        return sum(vp.probes_used for vp in self.vp_reports)

    @property
    def total_traces(self) -> int:
        return sum(vp.traces_run for vp in self.vp_reports)

    @property
    def total_virtual_seconds(self) -> float:
        per_vp = sum(
            timing.virtual_seconds
            for vp in self.vp_reports
            for timing in vp.stage_timings
        )
        shared = sum(t.virtual_seconds for t in self.global_timings)
        return per_vp + shared

    @property
    def total_retries(self) -> int:
        return sum(vp.retries for vp in self.vp_reports)

    @property
    def failed_vps(self) -> List[str]:
        return [vp.vp_name for vp in self.vp_reports if vp.failed]

    def degradation_totals(self) -> Counter:
        """Per-pass degradation counts summed over VPs."""
        totals: Counter = Counter()
        for vp in self.vp_reports:
            totals.update(vp.degradation_counts)
        return totals

    def pass_totals(self) -> Counter:
        """Per-pass assignment counts summed over VPs."""
        totals: Counter = Counter()
        for vp in self.vp_reports:
            totals.update(vp.pass_counts)
        return totals

    def reason_totals(self) -> Counter:
        """Per-Table-1-label assignment counts summed over VPs."""
        totals: Counter = Counter()
        for vp in self.vp_reports:
            totals.update(vp.reason_counts)
        return totals

    def summary(self) -> str:
        mode = "interleaved" if self.interleaved else "sequential"
        sharing = "shared" if self.shared_aliases else "independent"
        lines = [
            "orchestrated run for AS%d: %d VPs (%s collection, %s aliases)"
            % (self.focal_asn, len(self.vp_reports), mode, sharing),
            "  traces: %d   probes: %d   virtual time: %.0fs"
            % (self.total_traces, self.total_probes,
               self.total_virtual_seconds),
        ]
        for timing in self.global_timings:
            lines.append(
                "  [shared] %s=%.0fs/%dp"
                % (timing.name, timing.virtual_seconds, timing.probes)
            )
        for vp in self.vp_reports:
            if vp.failed:
                lines.append(
                    "  %-10s FAILED: %s" % (vp.vp_name, vp.error or "?")
                )
                continue
            stage_text = "  ".join(
                "%s=%.0fs/%dp" % (t.name, t.virtual_seconds, t.probes)
                for t in vp.stage_timings
            )
            lines.append(
                "  %-10s traces=%-4d probes=%-6d links=%-3d (%d ASes)  %s"
                % (vp.vp_name, vp.traces_run, vp.probes_used, vp.links,
                   vp.neighbor_ases, stage_text)
            )
        reasons = self.reason_totals()
        if reasons:
            lines.append(
                "  per-pass assignments: %s"
                % ", ".join(
                    "%s=%d" % (label, count)
                    for label, count in sorted(reasons.items())
                )
            )
        degraded = self.degradation_totals()
        if (self.total_retries or degraded or self.task_failures
                or self.failed_vps):
            lines.append(
                "  resilience: retries=%d degraded_passes=%d "
                "task_failures=%d failed_vps=%d"
                % (self.total_retries, sum(degraded.values()),
                   self.task_failures, len(self.failed_vps))
            )
        if self.fault_counts:
            lines.append(
                "  faults injected: %s"
                % ", ".join(
                    "%s=%d" % (name, count)
                    for name, count in sorted(self.fault_counts.items())
                )
            )
        return "\n".join(lines)


@dataclass
class OrchestratedRun:
    """Results plus accounting from one orchestrated multi-VP run."""

    results: List[BdrmapResult]
    report: RunReport
    shared_resolver: Optional[AliasResolver] = None

    def total_probes(self) -> int:
        return sum(result.probes_used for result in self.results)

    def all_links(self):
        """Union of inferred links across VPs (deduplicated per VP only —
        cross-VP identity needs ground truth or address comparison)."""
        return [link for result in self.results for link in result.links]

    def to_border_map(self, data: Optional[DataBundle] = None,
                      epoch: int = 0, source: str = ""):
        """Compile this run into a served
        :class:`~repro.serving.bordermap.BorderMap` artifact.

        Pass the run's :class:`DataBundle` to include the BGP
        longest-prefix-match index and relationship labels; without it
        the map answers from interface evidence alone.
        """
        from ..serving import compile_border_map

        return compile_border_map(
            self.results,
            view=data.view if data is not None else None,
            rels=data.rels if data is not None else None,
            epoch=epoch,
            source=source,
        )


def _vp_report_from_state(state: PipelineState,
                          result: BdrmapResult) -> VPReport:
    ctx = state.ctx
    collection = state.collection
    retries = 0
    if collection is not None and collection.retry_stats is not None:
        retries = collection.retry_stats.retries
    return VPReport(
        vp_name=state.vp_name,
        vp_addr=state.vp_addr,
        traces_run=result.traces_run,
        probes_used=result.probes_used,
        links=len(result.links),
        neighbor_ases=len(result.neighbor_ases()),
        stage_timings=list(state.timings),
        pass_counts=dict(ctx.pass_counts) if ctx is not None else {},
        reason_counts=dict(ctx.reason_counts) if ctx is not None else {},
        retries=retries,
        degradation_counts=(
            dict(ctx.degradations) if ctx is not None else {}
        ),
    )


def _failed_vp_report(vp, exc: BaseException) -> VPReport:
    """A placeholder report for a VP whose run crashed: the failure is
    isolated and recorded instead of killing the whole orchestrated run."""
    return VPReport(
        vp_name=vp.name,
        vp_addr=vp.addr,
        failed=True,
        error="%s: %s" % (type(exc).__name__, exc),
    )


class MultiVPOrchestrator:
    """Drive bdrmap from every VP of a scenario off one shared data set.

    ``interleave=True`` (the central-system behaviour) feeds every VP's
    traceroute tasks into a single round-robin scheduler so the VPs probe
    concurrently in virtual time; ``interleave=False`` runs the VPs one
    after another and is byte-identical to sequential
    :func:`~repro.core.bdrmap.run_bdrmap` calls with a shared bundle.

    ``share_alias_evidence=True`` reuses one alias resolver across VPs:
    the first VP pays the full Ally cost, later VPs reuse verdicts and
    only test pairs they alone observed.  Stop sets are *never* shared:
    they encode per-VP forward paths, and §6's analyses depend on each VP
    observing its own egresses.

    A VP whose run raises is reported as a failed :class:`VPReport`
    instead of killing the run.  With ``checkpoint_path`` set, completed
    per-VP results are written after each VP finishes; ``resume=True``
    reloads that file and skips the VPs it already holds, so a crashed or
    interrupted run picks up where it left off.
    """

    def __init__(
        self,
        scenario,
        data: Optional[DataBundle] = None,
        config: Optional[BdrmapConfig] = None,
        share_alias_evidence: bool = True,
        interleave: bool = True,
        checkpoint_path: Optional[str] = None,
        resume: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.scenario = scenario
        self.data = data
        self.config = config or BdrmapConfig()
        self.share_alias_evidence = share_alias_evidence
        self.interleave = interleave
        self.checkpoint_path = checkpoint_path
        self.resume = resume
        self.resumed_vps: Set[str] = set()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # vp_name -> that VP's metrics delta (sequential mode only, where
        # per-VP attribution is exact).  Written into checkpoints so a
        # resumed run replays skipped VPs' counters into its fresh
        # registry: resumed registry == fresh-run registry, no loss and
        # no double count.
        self._vp_metric_deltas: Dict[str, Dict] = {}

    # -- checkpointing --------------------------------------------------------

    def _load_checkpoint(self):
        """Completed (result, vp_report) pairs from a previous run, or
        empty lists when not resuming / nothing checkpointed yet."""
        if not (self.resume and self.checkpoint_path):
            return [], []
        import os

        if not os.path.exists(self.checkpoint_path):
            return [], []
        import json

        from ..io.serialize import (
            checkpoint_from_dict,
            checkpoint_metrics_from_dict,
        )

        with open(self.checkpoint_path) as handle:
            data = json.load(handle)
        results, vp_reports = checkpoint_from_dict(data)
        deltas = checkpoint_metrics_from_dict(data)
        # Failed VPs are re-run on resume; only clean results are kept.
        keep = [
            (result, vp)
            for result, vp in zip(results, vp_reports)
            if not vp.failed
        ]
        results = [result for result, _ in keep]
        vp_reports = [vp for _, vp in keep]
        self.resumed_vps = {vp.vp_name for vp in vp_reports}
        # Replay the skipped VPs' counters instead of re-earning them by
        # re-running the VP: without this, a resumed run's registry would
        # be missing those counts — and naive re-runs would double them.
        for vp in vp_reports:
            delta = deltas.get(vp.vp_name)
            if delta is not None:
                self._vp_metric_deltas[vp.vp_name] = delta
                if self.metrics.enabled:
                    self.metrics.merge_delta(delta)
        return results, vp_reports

    def _save_checkpoint(self, results, vp_reports) -> None:
        if not self.checkpoint_path:
            return
        from ..io.serialize import save_checkpoint

        save_checkpoint(
            results, vp_reports, self.checkpoint_path,
            metrics=self._vp_metric_deltas or None,
        )

    def _shared_resolver(self) -> Optional[AliasResolver]:
        if not (self.share_alias_evidence and self.scenario.vps):
            return None
        return AliasResolver(
            self.scenario.network,
            self.scenario.vps[0].addr,
            ally_rounds=self.config.collection.ally_rounds,
            ally_interval=self.config.collection.ally_interval,
            metrics=self.metrics,
        )

    def run(self) -> OrchestratedRun:
        self.scenario.ensure_forwarding_current()
        if self.data is None:
            self.data = build_data_bundle(self.scenario)
        if self.metrics.enabled:
            self.scenario.network.attach_metrics(self.metrics)
            self.metrics.set_gauge("run.vps", len(self.scenario.vps))
        resolver = self._shared_resolver()
        if self.interleave:
            run = self._run_interleaved(resolver)
        else:
            run = self._run_sequential(resolver)
        run.report.vp_ases = set(self.data.vp_ases)
        run.report.shared_aliases = resolver is not None
        run.report.interleaved = self.interleave
        faults = getattr(self.scenario.network, "faults", None)
        if faults is not None:
            run.report.fault_counts = {
                name: count
                for name, count in faults.stats.as_dict().items()
                if count
            }
        return run

    # -- sequential (legacy-identical) ---------------------------------------

    def _run_sequential(self, resolver) -> OrchestratedRun:
        results, done_reports = self._load_checkpoint()
        report = RunReport(focal_asn=self.data.focal_asn)
        report.vp_reports.extend(done_reports)
        for vp in self.scenario.vps:
            if vp.name in self.resumed_vps:
                continue
            driver = Bdrmap(
                self.scenario.network, vp, self.data, self.config,
                resolver=resolver,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            snapshot = (
                self.metrics.snapshot() if self.metrics.enabled else None
            )
            try:
                with self.tracer.span("vp." + vp.name):
                    result = driver.run()
            except Exception as exc:  # noqa: BLE001 - isolate the VP
                report.vp_reports.append(_failed_vp_report(vp, exc))
                self.metrics.inc("run.vps_failed")
                continue
            self.metrics.inc("run.vps_completed")
            if snapshot is not None:
                self._vp_metric_deltas[vp.name] = self.metrics.delta_since(
                    snapshot
                )
            results.append(result)
            report.vp_reports.append(
                _vp_report_from_state(driver.state, result)
            )
            self._save_checkpoint(
                results,
                [entry for entry in report.vp_reports if not entry.failed],
            )
        return OrchestratedRun(
            results=results, report=report, shared_resolver=resolver
        )

    # -- interleaved ----------------------------------------------------------

    def _run_interleaved(self, resolver) -> OrchestratedRun:
        network = self.scenario.network
        results, done_reports = self._load_checkpoint()
        live_vps = [
            vp for vp in self.scenario.vps
            if vp.name not in self.resumed_vps
        ]
        collectors: List[Collector] = []
        for vp in live_vps:
            collectors.append(
                Collector(
                    network,
                    vp.addr,
                    self.data.view,
                    self.data.vp_ases,
                    self.config.collection,
                    resolver=resolver,
                    metrics=self.metrics,
                    label=vp.name,
                )
            )

        # Phase 1: every VP's traceroute tasks through one scheduler — the
        # VPs probe concurrently in virtual time.  Probe costs of this
        # phase are attributed per VP via per-trace accounting.  A task
        # that crashes is isolated by the scheduler; the other VPs'
        # probing completes and the failure count is surfaced.
        now_before = network.now
        probes_before = network.probes_sent
        scheduler = RoundRobinScheduler(
            parallelism=self.config.collection.parallelism,
            metrics=self.metrics,
            label="traceroute.interleaved",
        )
        for collector in collectors:
            scheduler.add_all(collector.traceroute_tasks())
        with self.tracer.span("stage.traceroute.interleaved"):
            scheduler.run(reraise=False)
        trace_phase = StageTiming(
            name="traceroute[interleaved]",
            virtual_seconds=network.now - now_before,
            probes=network.probes_sent - probes_before,
        )

        # Phase 2 per VP: alias resolution (reusing shared evidence when
        # enabled), then the downstream graph/inference stages.  Each VP
        # is crash-isolated: a failure yields a failed VPReport.
        report = RunReport(
            focal_asn=self.data.focal_asn, global_timings=[trace_phase]
        )
        report.vp_reports.extend(done_reports)
        report.task_failures = scheduler.tasks_failed
        for vp, collector in zip(live_vps, collectors):
            try:
                with self.tracer.span("vp." + vp.name):
                    alias_now = network.now
                    alias_probes_before = network.probes_sent
                    with self.tracer.span("stage.alias", vp=vp.name):
                        collector.run_alias_resolution()
                    alias_probes = network.probes_sent - alias_probes_before
                    trace_probes = sum(
                        trace.probes_used
                        for trace in collector.collection.traces
                    )
                    collector.collection.probes_used = (
                        trace_probes + alias_probes
                    )
                    state = PipelineState(
                        network=network,
                        vp_name=vp.name,
                        vp_addr=vp.addr,
                        data=self.data,
                        config=self.config,
                        resolver=collector.collection.resolver,
                        collection=collector.collection,
                        metrics=self.metrics,
                        tracer=self.tracer,
                    )
                    state.timings.append(
                        StageTiming(
                            name="collection",
                            virtual_seconds=network.now - alias_now,
                            probes=collector.collection.probes_used,
                        )
                    )
                    Pipeline([GraphBuildStage(), InferenceStage()]).run(state)
                    result = result_from_state(state)
            except Exception as exc:  # noqa: BLE001 - isolate the VP
                report.vp_reports.append(_failed_vp_report(vp, exc))
                self.metrics.inc("run.vps_failed")
                continue
            self.metrics.inc("run.vps_completed")
            results.append(result)
            report.vp_reports.append(_vp_report_from_state(state, result))
            self._save_checkpoint(
                results,
                [entry for entry in report.vp_reports if not entry.failed],
            )
        return OrchestratedRun(
            results=results, report=report, shared_resolver=resolver
        )


def orchestrate(scenario, **kwargs) -> OrchestratedRun:
    """One-call convenience wrapper around :class:`MultiVPOrchestrator`."""
    return MultiVPOrchestrator(scenario, **kwargs).run()
