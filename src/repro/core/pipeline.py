"""The staged bdrmap pipeline.

The end-to-end run (Fig 2) is expressed as explicit stages — collection →
router-graph build → heuristic inference — each a :class:`PipelineStage`
operating on a shared :class:`PipelineState`.  Remote (§5.8) deployments
swap only the collection stage; everything downstream is byte-identical.

The inference stage threads an :class:`InferenceContext` through the
heuristic passes (see :mod:`repro.core.heuristics`).  The context is
immutable-ish: the §5.2 inputs (BGP view, relationships, RIR, IXP data,
the VP sibling set) are never mutated by passes — only the derived caches
(address classification, nextas), the router annotations, and the link
list grow as passes run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

from ..asgraph import InferredRelationships
from ..bgp import BGPView
from ..datasets import IXPDataset, RIRDelegations
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..obs.provenance import ProvenanceLog
from ..obs.trace import NULL_TRACER, Tracer
from .collection import Collection, Collector
from .nextas import compute_nextas
from .report import InferredLink
from .routergraph import InferredRouter, RouterGraph, build_router_graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .heuristics import HeuristicConfig

# Address classes (§5.4): every observed address is one of these.
VP = "vp"
EXT = "ext"
IXP_CLASS = "ixp"
UNROUTED = "unrouted"


# ---------------------------------------------------------------- inference context


@dataclass
class InferenceContext:
    """Everything the §5.4 heuristic passes read, plus their shared caches.

    The §5.2 inputs (``view``, ``rels``, ``rir``, ``ixp_data``,
    ``vp_ases``, ``focal_asn``) are shared across VPs by the orchestrator
    and must not be mutated; the per-run fields (``graph``,
    ``addr_class``, ``links``, the counters) belong to one VP's run.
    """

    graph: RouterGraph
    collection: Collection
    view: BGPView
    rels: InferredRelationships
    vp_ases: FrozenSet[int]
    focal_asn: int
    config: "HeuristicConfig"
    ixp_data: Optional[IXPDataset] = None
    rir: Optional[RIRDelegations] = None
    # Derived caches and outputs (filled in as passes run).
    addr_class: Dict[int, str] = field(default_factory=dict)
    addr_origins: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    links: List[InferredLink] = field(default_factory=list)
    pass_counts: Counter = field(default_factory=Counter)    # pass name -> assignments
    reason_counts: Counter = field(default_factory=Counter)  # Table 1 label -> assignments
    # Passes that failed on partial evidence and fell through to weaker
    # heuristics instead of aborting the run (pass name -> count).
    degradations: Counter = field(default_factory=Counter)
    # Observability: shared metrics/tracing sinks (no-op by default)
    # and the decision-provenance log behind ``repro explain``.
    metrics: MetricsRegistry = field(default=NULL_REGISTRY)
    tracer: Tracer = field(default=NULL_TRACER)
    provenance: ProvenanceLog = field(default_factory=ProvenanceLog)
    _nextas_cache: Dict[int, Optional[int]] = field(default_factory=dict)

    # -- setup ---------------------------------------------------------------

    def classify_addr(self, addr: int) -> str:
        if self.ixp_data is not None and self.ixp_data.is_ixp_addr(addr):
            self.addr_origins[addr] = ()
            return IXP_CLASS
        origins = self.view.origins_of_addr(addr)
        self.addr_origins[addr] = origins
        if not origins:
            return UNROUTED
        if set(origins) & self.vp_ases:
            return VP
        return EXT

    def prepare(self) -> None:
        for addr in self.graph.by_addr:
            self.addr_class[addr] = self.classify_addr(addr)
        if self.config.use_rir and self.rir is not None:
            self._extend_vp_space()

    def _extend_vp_space(self) -> None:
        """§5.4.1: addresses before a VP-originated address in a trace are
        assumed delegated to the VP network; the RIR files identify the
        enclosing blocks, which we then treat as VP space."""
        vp_opaque_ids: Set[str] = set()
        for trace in self.collection.traces:
            addrs = [
                hop.addr
                for hop in trace.hops
                if hop.addr is not None and hop.is_ttl_expired
            ]
            last_vp = -1
            for index, addr in enumerate(addrs):
                if self.addr_class.get(addr) == VP:
                    last_vp = index
            for addr in addrs[:last_vp]:
                if self.addr_class.get(addr) == UNROUTED:
                    opaque = self.rir.opaque_id_of(addr)
                    if opaque is not None:
                        vp_opaque_ids.add(opaque)
        if not vp_opaque_ids:
            return
        for addr, cls in list(self.addr_class.items()):
            if cls == UNROUTED and self.rir.opaque_id_of(addr) in vp_opaque_ids:
                self.addr_class[addr] = VP

    # -- router views --------------------------------------------------------

    def classes(self, router: InferredRouter) -> Set[str]:
        return {self.addr_class[a] for a in router.addrs if a in self.addr_class}

    def ext_ases(self, router: InferredRouter) -> Set[int]:
        """External ASes that the router's addresses map to."""
        found: Set[int] = set()
        for addr in router.addrs:
            if self.addr_class.get(addr) == EXT:
                found.update(self.addr_origins.get(addr, ()))
        return found - self.vp_ases

    def single_ext_as(self, router: InferredRouter) -> Optional[int]:
        """The single external AS all of the router's addresses map to, or
        None if the mapping is absent or ambiguous."""
        ases: Optional[Set[int]] = None
        for addr in router.addrs:
            if self.addr_class.get(addr) != EXT:
                return None
            origins = set(self.addr_origins.get(addr, ())) - self.vp_ases
            if not origins:
                return None
            ases = origins if ases is None else (ases & origins)
        if ases and len(ases) == 1:
            return next(iter(ases))
        if ases and len(ases) > 1:
            return min(ases)  # MOAS: deterministic choice
        return None

    def succ_routers(self, router: InferredRouter) -> List[InferredRouter]:
        return [
            self.graph.routers[rid]
            for rid in sorted(self.graph.successors(router.rid))
            if rid in self.graph.routers
        ]

    def pred_routers(self, router: InferredRouter) -> List[InferredRouter]:
        return [
            self.graph.routers[rid]
            for rid in sorted(self.graph.predecessors(router.rid))
            if rid in self.graph.routers
        ]

    def adjacent_ext_addr_counts(self, router: InferredRouter) -> Counter:
        """Per-external-AS count of addresses on successor routers."""
        counts: Counter = Counter()
        for successor in self.succ_routers(router):
            for addr in successor.addrs:
                if self.addr_class.get(addr) == EXT:
                    for asn in self.addr_origins.get(addr, ()):
                        if asn not in self.vp_ases:
                            counts[asn] += 1
        return counts

    def nextas(self, router: InferredRouter) -> Optional[int]:
        if router.rid not in self._nextas_cache:
            self._nextas_cache[router.rid] = compute_nextas(
                router, self.rels, self.vp_ases
            )
        return self._nextas_cache[router.rid]

    def dst_sibling_collapse(self, dsts: Set[int]) -> Set[int]:
        """Collapse a destination-AS set by inferred siblinghood: {B, B's
        sibling} counts as one destination network."""
        remaining = set(dsts)
        representatives: Set[int] = set()
        while remaining:
            asn = min(remaining)
            family = (self.rels.siblings.get(asn) or frozenset((asn,))) & remaining
            remaining -= family or {asn}
            representatives.add(asn)
        return representatives

    def count_winner(self, adjacent: Counter) -> int:
        """The AS with the most adjacent addresses; ties prefer an AS with
        a known relationship to the VP network (§5.4.6)."""
        ranked = sorted(adjacent.items(), key=lambda kv: (-kv[1], kv[0]))
        top_count = ranked[0][1]
        tied = [asn for asn, count in ranked if count == top_count]
        if len(tied) > 1:
            for asn in tied:
                if self.rels.relationship(self.focal_asn, asn) is not None:
                    return asn
        return tied[0]

    # -- bookkeeping ---------------------------------------------------------

    def record(self, pass_name: str, reason: str) -> None:
        """Count one ownership assignment (or emitted link) by the pass
        that produced it and by its Table 1 reason label."""
        self.pass_counts[pass_name] += 1
        self.reason_counts[reason] += 1
        self.metrics.inc("pass.%s.claimed" % pass_name)

    def degrade(self, pass_name: str) -> None:
        """Record that a pass failed on partial evidence and inference
        degraded to the next (weaker) heuristic instead of crashing."""
        self.degradations[pass_name] += 1
        self.metrics.inc("pass.%s.degraded" % pass_name)


# ---------------------------------------------------------------- pipeline state


@dataclass
class StageTiming:
    """Cost of one pipeline stage, in virtual time and probes."""

    name: str
    virtual_seconds: float = 0.0
    probes: int = 0


@dataclass
class PipelineState:
    """Mutable run state threaded through the stages of one VP's run."""

    network: object
    vp_name: str
    vp_addr: int
    data: object           # DataBundle
    config: object         # BdrmapConfig
    resolver: object = None  # optional shared AliasResolver (§5.8)
    collection: Optional[Collection] = None
    graph: Optional[RouterGraph] = None
    ctx: Optional[InferenceContext] = None
    links: Optional[List[InferredLink]] = None
    timings: List[StageTiming] = field(default_factory=list)
    metrics: MetricsRegistry = field(default=NULL_REGISTRY)
    tracer: Tracer = field(default=NULL_TRACER)

    def timing(self, name: str) -> Optional[StageTiming]:
        for entry in self.timings:
            if entry.name == name:
                return entry
        return None


class PipelineStage(Protocol):
    """One stage of the bdrmap pipeline: reads and extends the state."""

    name: str

    def run(self, state: PipelineState) -> None:  # pragma: no cover - protocol
        ...


class Pipeline:
    """Run stages in order, timing each in virtual seconds and probes."""

    def __init__(self, stages: Sequence[PipelineStage]) -> None:
        self.stages = list(stages)

    def run(self, state: PipelineState) -> PipelineState:
        for stage in self.stages:
            network = state.network
            now_before = network.now if network is not None else 0.0
            probes_before = network.probes_sent if network is not None else 0
            with state.tracer.span("stage." + stage.name, vp=state.vp_name):
                stage.run(state)
            timing = StageTiming(
                name=stage.name,
                virtual_seconds=(
                    (network.now - now_before) if network is not None else 0.0
                ),
                probes=(
                    (network.probes_sent - probes_before)
                    if network is not None
                    else 0
                ),
            )
            state.timings.append(timing)
            if state.metrics.enabled:
                state.metrics.inc(
                    "stage.%s.probes" % stage.name, timing.probes
                )
                state.metrics.time(
                    "stage.%s.virtual_seconds" % stage.name,
                    timing.virtual_seconds,
                )
        return state


# ---------------------------------------------------------------- the stages


class CollectionStage:
    """§5.3 data collection.  Remote deployments override
    :meth:`make_collector` to dispatch probes to the on-device prober."""

    name = "collection"

    def make_collector(self, state: PipelineState) -> Collector:
        return Collector(
            state.network,
            state.vp_addr,
            state.data.view,
            state.data.vp_ases,
            state.config.collection,
            resolver=state.resolver,
            metrics=state.metrics,
            label=state.vp_name,
        )

    def run(self, state: PipelineState) -> None:
        collector = self.make_collector(state)
        state.collection = collector.run()


class GraphBuildStage:
    """Collapse observed interfaces into the router graph."""

    name = "graph"

    def run(self, state: PipelineState) -> None:
        state.graph = build_router_graph(state.collection)
        if state.metrics.enabled:
            state.metrics.set_gauge(
                "graph.routers", len(state.graph.routers)
            )
            state.metrics.set_gauge("graph.paths", len(state.graph.paths))


class InferenceStage:
    """Run the registered §5.4 heuristic passes over the router graph."""

    name = "inference"

    def run(self, state: PipelineState) -> None:
        from .heuristics import build_context, run_inference

        ctx = build_context(
            graph=state.graph,
            collection=state.collection,
            data=state.data,
            config=state.config.heuristics,
            metrics=state.metrics,
            tracer=state.tracer,
        )
        state.ctx = ctx
        state.links = run_inference(ctx)


def default_stages() -> List[PipelineStage]:
    """The local (non-remote) stage sequence."""
    return [CollectionStage(), GraphBuildStage(), InferenceStage()]
