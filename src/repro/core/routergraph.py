"""Router-level graph construction (§5.3 "Build router-level graph").

Collapses the observed interface graph into inferred routers using the
alias-resolution closure, keeps only interfaces observed in ICMP
time-exceeded messages as ownership evidence (echo replies carry the probed
address and say nothing about interface placement — §4), and preserves the
per-trace router sequences the heuristics need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..net import ResponseKind
from .collection import Collection, TargetKey


@dataclass
class InferredRouter:
    """One inferred router: an alias set with topological context."""

    rid: int
    addrs: Set[int] = field(default_factory=set)          # TTL-expired observed
    extra_addrs: Set[int] = field(default_factory=set)    # aliases never traced
    min_dist: int = 10**9
    dsts: Set[int] = field(default_factory=set)           # target ASes through
    last_hop_for: Set[int] = field(default_factory=set)   # targets ending here
    owner: Optional[int] = None
    reason: str = ""
    merged_from: List[int] = field(default_factory=list)

    def all_addrs(self) -> Set[int]:
        return self.addrs | self.extra_addrs


@dataclass
class TracePath:
    """One trace reduced to its router sequence."""

    key: TargetKey
    dst: int
    routers: List[int]                    # rids, consecutive duplicates merged
    had_gap_before: List[bool]            # per position: unresponsive gap before
    final_kind: Optional[ResponseKind]    # non-TTL-expired terminal response
    final_src: Optional[int]
    reached: bool


class RouterGraph:
    """The inferred router-level topology for one VP."""

    def __init__(self) -> None:
        self.routers: Dict[int, InferredRouter] = {}
        self.by_addr: Dict[int, int] = {}
        self.succ: Dict[int, Set[int]] = {}
        self.pred: Dict[int, Set[int]] = {}
        self.paths: List[TracePath] = []
        self._next_rid = 1

    # -- construction -----------------------------------------------------------

    def _router_for(self, addr: int) -> InferredRouter:
        rid = self.by_addr.get(addr)
        if rid is not None:
            return self.routers[rid]
        router = InferredRouter(rid=self._next_rid)
        self._next_rid += 1
        self.routers[router.rid] = router
        router.addrs.add(addr)
        self.by_addr[addr] = router.rid
        return router

    def add_component(self, addrs: Set[int], observed: Set[int]) -> InferredRouter:
        router = InferredRouter(rid=self._next_rid)
        self._next_rid += 1
        self.routers[router.rid] = router
        for addr in addrs:
            if addr in observed:
                router.addrs.add(addr)
            else:
                router.extra_addrs.add(addr)
            self.by_addr[addr] = router.rid
        return router

    def add_edge(self, from_rid: int, to_rid: int) -> None:
        if from_rid == to_rid:
            return
        self.succ.setdefault(from_rid, set()).add(to_rid)
        self.pred.setdefault(to_rid, set()).add(from_rid)

    def merge(self, keep_rid: int, absorb_rid: int) -> None:
        """Merge two inferred routers (the §5.4.7 analytical alias step)."""
        if keep_rid == absorb_rid:
            return
        keep = self.routers[keep_rid]
        absorb = self.routers.pop(absorb_rid)
        keep.addrs.update(absorb.addrs)
        keep.extra_addrs.update(absorb.extra_addrs)
        keep.min_dist = min(keep.min_dist, absorb.min_dist)
        keep.dsts.update(absorb.dsts)
        keep.last_hop_for.update(absorb.last_hop_for)
        keep.merged_from.append(absorb_rid)
        keep.merged_from.extend(absorb.merged_from)
        for addr in absorb.all_addrs():
            self.by_addr[addr] = keep_rid
        for source in list(self.pred.get(absorb_rid, ())):
            self.succ[source].discard(absorb_rid)
            if source != keep_rid:
                self.add_edge(source, keep_rid)
        for target in list(self.succ.get(absorb_rid, ())):
            self.pred[target].discard(absorb_rid)
            if target != keep_rid:
                self.add_edge(keep_rid, target)
        self.succ.pop(absorb_rid, None)
        self.pred.pop(absorb_rid, None)
        for path in self.paths:
            path.routers[:] = [
                keep_rid if rid == absorb_rid else rid for rid in path.routers
            ]

    # -- queries ------------------------------------------------------------------

    def successors(self, rid: int) -> Set[int]:
        return self.succ.get(rid, set())

    def predecessors(self, rid: int) -> Set[int]:
        return self.pred.get(rid, set())

    def by_distance(self) -> List[InferredRouter]:
        return sorted(self.routers.values(), key=lambda r: (r.min_dist, r.rid))

    def router_of_addr(self, addr: int) -> Optional[InferredRouter]:
        rid = self.by_addr.get(addr)
        return self.routers.get(rid) if rid is not None else None


def build_router_graph(collection: Collection) -> RouterGraph:
    """Assemble the router graph from a finished collection."""
    graph = RouterGraph()
    observed = collection.observed_ttl_expired_addrs()

    # Alias closure → routers.  Addresses with no positive alias evidence
    # become single-interface routers.
    assigned: Set[int] = set()
    if collection.resolver is not None:
        closure = collection.resolver.components(observed)
        for component in sorted(closure.components(), key=lambda c: min(c)):
            if not component & observed:
                continue  # aliases of something never traced: ignore
            graph.add_component(set(component), observed)
            assigned.update(component)
    for addr in sorted(observed - assigned):
        graph._router_for(addr)

    # Per-trace router sequences, adjacency, distances, and destination sets.
    for index, trace in enumerate(collection.traces):
        key = (
            collection.trace_keys[index]
            if index < len(collection.trace_keys)
            else ()
        )
        rids: List[int] = []
        gaps: List[bool] = []
        gap_pending = False
        final_kind: Optional[ResponseKind] = None
        final_src: Optional[int] = None
        last_router: Optional[int] = None
        for hop in trace.hops:
            if hop.addr is None:
                gap_pending = True
                continue
            if not hop.is_ttl_expired:
                final_kind = hop.kind
                final_src = hop.addr
                continue
            if hop.addr == trace.dst:
                # A time-exceeded source equal to the probed destination is
                # position-ambiguous (§4); do not use it as an interface.
                gap_pending = True
                continue
            router = graph.router_of_addr(hop.addr)
            if router is None:
                router = graph._router_for(hop.addr)
            router.min_dist = min(router.min_dist, hop.ttl)
            for origin in key:
                router.dsts.add(origin)
            if router.rid != last_router:
                if last_router is not None and not gap_pending:
                    graph.add_edge(last_router, router.rid)
                rids.append(router.rid)
                gaps.append(gap_pending)
                last_router = router.rid
            gap_pending = False
        if rids:
            for origin in key:
                graph.routers[rids[-1]].last_hop_for.add(origin)
        graph.paths.append(
            TracePath(
                key=key,
                dst=trace.dst,
                routers=rids,
                had_gap_before=gaps,
                final_kind=final_kind,
                final_src=final_src,
                reached=trace.reached_dst(),
            )
        )
    return graph
