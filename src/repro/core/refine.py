"""Ownership refinement beyond the first border (bdrmapIT-style).

The paper stops at the links adjacent to the VP network and annotates
deeper routers with plain IP-AS mappings (§5.4.6's fallback).  Its
follow-on work (bdrmapIT, Marder et al.) showed those deep annotations
improve by propagating neighbor constraints: a router whose surrounding
routers all belong to B, while its own address maps to B's *provider* O,
is most likely B's router answering with a third-party address — the
§5.4.5 logic generalized past the first hop, where the original's
"observed only on paths toward B" precondition rarely holds.

This pass is optional (``HeuristicConfig.use_refinement``) and labelled as
an extension in DESIGN.md; the default pipeline reproduces the paper.
"""

from __future__ import annotations

from typing import Set

from ..asgraph import InferredRelationships, Rel
from .routergraph import RouterGraph

# Only these inferences are weak enough to overturn.
_WEAK_REASONS = {"6 ipas", "3 unrouted"}


def refine_ownership(
    graph: RouterGraph,
    rels: InferredRelationships,
    vp_ases: Set[int],
    focal_asn: int,
    max_iterations: int = 3,
) -> int:
    """Propagate neighbor constraints onto weakly-owned routers.

    A weak router R (owner O) is reassigned to B when:

    * a clear majority of R's owner-annotated neighbors belong to B, and
    * O is an inferred provider of B (so O's address on B's router is the
      expected provider-supplied / third-party pattern), and
    * at least two neighbors support B (one adjacent router proves
      nothing).

    Returns the number of routers reassigned.
    """
    changed_total = 0
    for _ in range(max_iterations):
        changed = 0
        for router in graph.by_distance():
            if router.reason not in _WEAK_REASONS or router.owner is None:
                continue
            owner = router.owner
            pred_owners = {
                graph.routers[rid].owner
                for rid in graph.predecessors(router.rid)
                if rid in graph.routers and graph.routers[rid].owner is not None
            }
            if pred_owners & vp_ases:
                # Adjacent to the VP network: the first-border heuristics
                # had full constraints here; do not second-guess them.
                continue
            succ_owners = {
                graph.routers[rid].owner
                for rid in graph.successors(router.rid)
                if rid in graph.routers and graph.routers[rid].owner is not None
            } - vp_ases - {None}
            succ_owners.discard(owner)
            if len(succ_owners) != 1:
                continue
            candidate = next(iter(succ_owners))
            # The deep-border pattern: R answers with O's address, O is
            # adjacent upstream, everything downstream belongs to B, and
            # O—B interconnection plausibly uses O's address space (O is
            # B's provider, or a peer that supplied the subnet).
            relationship = rels.relationship(owner, candidate)
            if relationship not in (Rel.CUSTOMER, Rel.PEER):
                continue
            if owner not in pred_owners and pred_owners:
                continue
            router.owner = candidate
            router.reason = "9 refined"
            changed += 1
        changed_total += changed
        if not changed:
            break
    return changed_total
