"""Result model and text reports for a bdrmap run."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..addr import ntoa
from ..obs.provenance import ProvenanceRecord, DECIDING, format_chain
from .routergraph import RouterGraph


# Per-heuristic confidence priors: the fraction of links each heuristic
# validated correctly across this repo's ground-truth studies (paper
# analogue: Table 1 + §5.6).  Consumers (e.g. a congestion monitor) can
# rank or filter links by these; they are priors, not per-link posteriors.
HEURISTIC_CONFIDENCE = {
    "2 firewall": 0.95,
    "3 unrouted": 0.85,
    "4 onenet": 0.95,
    "5 thirdparty": 0.95,
    "5 relationship": 0.97,
    "5 missing customer": 0.70,
    "5 hidden peer": 0.90,
    "6 count": 0.85,
    "6 ipas": 0.95,
    "ixp": 0.95,
    "7 alias": 0.90,
    "8 silent": 0.95,
    "8 other icmp": 0.95,
    "1 multihomed": 0.70,
    "9 refined": 0.85,
}
_DEFAULT_CONFIDENCE = 0.75


@dataclass(frozen=True)
class InferredLink:
    """One inferred interdomain link attached to the VP network.

    ``far_rid`` is None for §5.4.8 links, where the neighbor's router never
    revealed an address (we know *where* it attaches, not *what* it is).
    """

    near_rid: int
    far_rid: Optional[int]
    neighbor_as: int
    reason: str
    via_ixp: bool = False

    @property
    def confidence(self) -> float:
        """Prior probability this link is correct, from the heuristic that
        produced it (measured against ground truth; see
        ``HEURISTIC_CONFIDENCE``)."""
        return HEURISTIC_CONFIDENCE.get(self.reason, _DEFAULT_CONFIDENCE)


@dataclass
class BdrmapResult:
    """Everything a bdrmap run produced for one VP."""

    vp_name: str
    vp_addr: int
    focal_asn: int
    vp_ases: Set[int]
    graph: RouterGraph
    links: List[InferredLink] = field(default_factory=list)
    probes_used: int = 0
    traces_run: int = 0
    runtime_virtual_seconds: float = 0.0
    # Decision provenance: the chain of heuristic-pass consultations for
    # every router, in pass-application order (``repro explain`` reads it).
    provenance: List[ProvenanceRecord] = field(default_factory=list)

    # -- views ---------------------------------------------------------------

    def neighbor_ases(self) -> Set[int]:
        return {link.neighbor_as for link in self.links}

    def links_with(self, neighbor_as: int) -> List[InferredLink]:
        return [l for l in self.links if l.neighbor_as == neighbor_as]

    def neighbor_routers(self) -> List[Tuple[int, int, str]]:
        """(rid, owner, reason) of each inferred neighbor router."""
        found = []
        for rid in sorted(self.graph.routers):
            router = self.graph.routers[rid]
            if router.owner is not None and router.owner not in self.vp_ases:
                found.append((rid, router.owner, router.reason))
        return found

    def heuristic_counts(self) -> Counter:
        """How many neighbor routers each heuristic inferred (Table 1 rows)."""
        counts: Counter = Counter()
        for _, _, reason in self.neighbor_routers():
            counts[reason] += 1
        return counts

    def border_pairs(self) -> Set[Tuple[int, int]]:
        """(near rid, neighbor AS) pairs — the unit §5.6 validates."""
        return {(link.near_rid, link.neighbor_as) for link in self.links}

    def provenance_for(self, rid: int) -> List[ProvenanceRecord]:
        """Every pass consultation recorded for router ``rid``."""
        return [r for r in self.provenance if r.router == rid]

    def deciding_record(self, rid: int) -> Optional[ProvenanceRecord]:
        """The provenance record that assigned ``rid``'s owner, if any."""
        for record in self.provenance:
            if record.router == rid and record.verdict in DECIDING:
                return record
        return None

    def links_with_confidence(self, minimum: float) -> List[InferredLink]:
        """Links whose heuristic's validated accuracy meets ``minimum`` —
        e.g. a congestion monitor probing only high-confidence borders."""
        return [link for link in self.links if link.confidence >= minimum]

    def interface_owners(self) -> Dict[int, Tuple[int, Optional[int]]]:
        """Every known interface address → ``(rid, owner)``.

        The export hook the serving compiler and its naive baseline share:
        this is the raw material of a BorderMap's interface map (owned
        routers listed before unowned ones so the first match wins).
        """
        owners: Dict[int, Tuple[int, Optional[int]]] = {}
        ordered = sorted(
            self.graph.routers.values(),
            key=lambda r: (r.owner is None, r.rid),
        )
        for router in ordered:
            for addr in router.all_addrs():
                owners.setdefault(addr, (router.rid, router.owner))
        return owners

    # -- reporting -----------------------------------------------------------

    def summary(self) -> str:
        lines = [
            "bdrmap result for %s (AS%d)" % (self.vp_name, self.focal_asn),
            "  traces: %d   probes: %d" % (self.traces_run, self.probes_used),
            "  inferred routers: %d" % len(self.graph.routers),
            "  neighbor routers: %d" % len(self.neighbor_routers()),
            "  interdomain links: %d to %d ASes"
            % (len(self.links), len(self.neighbor_ases())),
            "  heuristics: %s"
            % ", ".join(
                "%s=%d" % (reason, count)
                for reason, count in sorted(self.heuristic_counts().items())
            ),
        ]
        return "\n".join(lines)

    def explain(self, rid: int) -> str:
        """A human-readable justification of one router's inference.

        Reconstructs the constraints the heuristic acted on from the stored
        graph: the router's addresses, its place in trace paths, what it
        leads to, and which destinations it carried probes toward.
        """
        router = self.graph.routers.get(rid)
        if router is None:
            return "r%d: no such inferred router" % rid
        lines = ["router r%d" % rid]
        lines.append(
            "  addresses: %s"
            % (", ".join(ntoa(a) for a in sorted(router.addrs)) or "(none)")
        )
        if router.extra_addrs:
            lines.append(
                "  aliases (never traced): %s"
                % ", ".join(ntoa(a) for a in sorted(router.extra_addrs))
            )
        if router.owner is None:
            lines.append("  owner: UNINFERRED (no heuristic matched)")
        else:
            side = "the VP network" if router.owner in self.vp_ases else "a neighbor"
            lines.append(
                "  owner: AS%d (%s), via heuristic %r"
                % (router.owner, side, router.reason)
            )
        lines.append("  first seen at TTL %d" % router.min_dist)
        successors = sorted(self.graph.successors(rid))
        if successors:
            shown = []
            for successor in successors[:6]:
                nxt = self.graph.routers.get(successor)
                if nxt is None:
                    continue
                shown.append(
                    "r%d (AS%s)"
                    % (successor, nxt.owner if nxt.owner is not None else "?")
                )
            lines.append("  leads to: %s" % ", ".join(shown))
        else:
            lines.append("  leads to: nothing observed beyond it")
        dsts = sorted(router.dsts)
        lines.append(
            "  carried probes toward %d ASes%s"
            % (
                len(dsts),
                (
                    ": " + ", ".join("AS%d" % asn for asn in dsts[:8])
                    + ("..." if len(dsts) > 8 else "")
                )
                if dsts
                else "",
            )
        )
        if router.last_hop_for:
            lines.append(
                "  last responsive hop toward: %s"
                % ", ".join("AS%d" % asn for asn in sorted(router.last_hop_for)[:8])
            )
        if router.merged_from:
            lines.append(
                "  merged from %d apparent routers (§5.4.7)"
                % (len(router.merged_from) + 1)
            )
        chain = self.provenance_for(rid)
        if chain:
            lines.append("  decision provenance:")
            for entry in format_chain(chain):
                lines.append("    " + entry)
            deciding = self.deciding_record(rid)
            if deciding is not None:
                lines.append(
                    "  decided by: %s (%s)"
                    % (deciding.pass_name, deciding.section)
                )
        return "\n".join(lines)

    def link_table(self, limit: Optional[int] = None) -> str:
        rows = ["near-router | near-addrs | neighbor-AS | reason | ixp"]
        links = sorted(
            self.links, key=lambda l: (l.neighbor_as, l.near_rid)
        )
        if limit is not None:
            links = links[:limit]
        for link in links:
            near = self.graph.routers.get(link.near_rid)
            addrs = (
                ",".join(ntoa(a) for a in sorted(near.addrs)[:3])
                if near is not None
                else "?"
            )
            rows.append(
                "r%-4d | %-40s | AS%-6d | %-16s | %s"
                % (
                    link.near_rid,
                    addrs,
                    link.neighbor_as,
                    link.reason,
                    "ixp" if link.via_ixp else "-",
                )
            )
        return "\n".join(rows)
