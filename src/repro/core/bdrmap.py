"""The end-to-end bdrmap driver (Fig 2).

``build_data_bundle`` assembles the §5.2 inputs from a scenario the same way
a real deployment would: public BGP snapshots from collectors, relationship
inference over them, RIR delegation files, IXP lists, and the curated VP
sibling list.  ``Bdrmap`` then runs collection → router graph → heuristics
for one VP and returns a :class:`BdrmapResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from ..asgraph import InferredRelationships, infer_relationships
from ..bgp import BGPView, CollectorConfig, collect_public_view
from ..datasets import (
    IXPDataset,
    RIRDelegations,
    generate_as2org,
    generate_ixp_data,
    generate_rir_files,
    parse_as2org,
    parse_ixp_files,
    parse_rir_file,
)
from ..net import Network, VantagePoint
from .collection import Collection, CollectionConfig, Collector
from .heuristics import HeuristicConfig, InferenceEngine
from .report import BdrmapResult
from .routergraph import build_router_graph


@dataclass
class DataBundle:
    """The §5.2 input data, as bdrmap consumes it."""

    view: BGPView
    rels: InferredRelationships
    rir: RIRDelegations
    ixp: IXPDataset
    vp_ases: Set[int]
    focal_asn: int


@dataclass
class BdrmapConfig:
    collection: CollectionConfig = field(default_factory=CollectionConfig)
    heuristics: HeuristicConfig = field(default_factory=HeuristicConfig)


def build_data_bundle(scenario, collector_config: Optional[CollectorConfig] = None) -> DataBundle:
    """Assemble input data for a scenario (shared across its VPs)."""
    internet = scenario.internet
    network = scenario.network
    view = collect_public_view(
        internet,
        network.oracle,
        collector_config,
        focal_asn=scenario.focal_asn,
    )
    sibling_map = parse_as2org(generate_as2org(internet))
    rels = infer_relationships(view.paths(), siblings=sibling_map.as_dict())
    rir = parse_rir_file(generate_rir_files(internet))
    pdb_text, pch_text = generate_ixp_data(internet)
    ixp = parse_ixp_files(pdb_text, pch_text)
    return DataBundle(
        view=view,
        rels=rels,
        rir=rir,
        ixp=ixp,
        vp_ases=set(scenario.vp_as_list),
        focal_asn=scenario.focal_asn,
    )


class Bdrmap:
    """Run the full pipeline for one VP."""

    def __init__(
        self,
        network: Network,
        vp: VantagePoint,
        data: DataBundle,
        config: Optional[BdrmapConfig] = None,
        resolver=None,
    ) -> None:
        self.network = network
        self.vp = vp
        self.data = data
        self.config = config or BdrmapConfig()
        self.resolver = resolver
        self.collection: Optional[Collection] = None

    def run(self) -> BdrmapResult:
        start_time = self.network.now
        collector = Collector(
            self.network,
            self.vp.addr,
            self.data.view,
            self.data.vp_ases,
            self.config.collection,
            resolver=self.resolver,
        )
        self.collection = collector.run()
        graph = build_router_graph(self.collection)
        engine = InferenceEngine(
            graph=graph,
            collection=self.collection,
            view=self.data.view,
            rels=self.data.rels,
            vp_ases=self.data.vp_ases,
            focal_asn=self.data.focal_asn,
            ixp_data=self.data.ixp,
            rir=self.data.rir,
            config=self.config.heuristics,
        )
        links = engine.run()
        return BdrmapResult(
            vp_name=self.vp.name,
            vp_addr=self.vp.addr,
            focal_asn=self.data.focal_asn,
            vp_ases=set(self.data.vp_ases),
            graph=graph,
            links=links,
            probes_used=self.collection.probes_used,
            traces_run=self.collection.traces_run,
            runtime_virtual_seconds=self.network.now - start_time,
        )


def run_bdrmap(scenario, vp_index: int = 0,
               config: Optional[BdrmapConfig] = None,
               data: Optional[DataBundle] = None) -> BdrmapResult:
    """Convenience one-call runner for examples and tests."""
    if data is None:
        data = build_data_bundle(scenario)
    vp = scenario.vps[vp_index]
    return Bdrmap(scenario.network, vp, data, config).run()


def infer_from_collection(
    collection: Collection,
    data: DataBundle,
    config: Optional[BdrmapConfig] = None,
    vp_name: str = "offline",
    vp_addr: int = 0,
) -> BdrmapResult:
    """Run the inference stages over an already-collected (possibly
    archived) collection — no probing.

    This is how inference over stored traces works: archive a collection
    with :func:`repro.io.serialize.collection_to_dict`, reload it later
    (or on another machine), and re-run the heuristics, e.g. with
    different :class:`HeuristicConfig` ablations.
    """
    config = config or BdrmapConfig()
    graph = build_router_graph(collection)
    engine = InferenceEngine(
        graph=graph,
        collection=collection,
        view=data.view,
        rels=data.rels,
        vp_ases=data.vp_ases,
        focal_asn=data.focal_asn,
        ixp_data=data.ixp,
        rir=data.rir,
        config=config.heuristics,
    )
    links = engine.run()
    return BdrmapResult(
        vp_name=vp_name,
        vp_addr=vp_addr,
        focal_asn=data.focal_asn,
        vp_ases=set(data.vp_ases),
        graph=graph,
        links=links,
        probes_used=collection.probes_used,
        traces_run=collection.traces_run,
    )
