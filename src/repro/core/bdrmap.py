"""The end-to-end bdrmap driver (Fig 2).

``build_data_bundle`` assembles the §5.2 inputs from a scenario the same way
a real deployment would: public BGP snapshots from collectors, relationship
inference over them, RIR delegation files, IXP lists, and the curated VP
sibling list.  ``Bdrmap`` then runs the staged pipeline — collection →
router graph → heuristic passes — for one VP and returns a
:class:`BdrmapResult`.  The stage sequence itself lives in
:mod:`repro.core.pipeline`; subclasses (e.g. the §5.8 remote controller)
override :meth:`Bdrmap.stages` to swap individual stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..asgraph import InferredRelationships, infer_relationships
from ..bgp import BGPView, CollectorConfig, collect_public_view
from ..datasets import (
    IXPDataset,
    RIRDelegations,
    generate_as2org,
    generate_ixp_data,
    generate_rir_files,
    parse_as2org,
    parse_ixp_files,
    parse_rir_file,
)
from ..net import Network, VantagePoint
from .collection import Collection, CollectionConfig
from .heuristics import HeuristicConfig
from .pipeline import (
    GraphBuildStage,
    InferenceStage,
    Pipeline,
    PipelineStage,
    PipelineState,
    default_stages,
)
from .report import BdrmapResult


@dataclass
class DataBundle:
    """The §5.2 input data, as bdrmap consumes it."""

    view: BGPView
    rels: InferredRelationships
    rir: RIRDelegations
    ixp: IXPDataset
    vp_ases: Set[int]
    focal_asn: int


@dataclass
class BdrmapConfig:
    collection: CollectionConfig = field(default_factory=CollectionConfig)
    heuristics: HeuristicConfig = field(default_factory=HeuristicConfig)


def build_data_bundle(scenario, collector_config: Optional[CollectorConfig] = None) -> DataBundle:
    """Assemble input data for a scenario (shared across its VPs)."""
    internet = scenario.internet
    network = scenario.network
    view = collect_public_view(
        internet,
        network.oracle,
        collector_config,
        focal_asn=scenario.focal_asn,
    )
    sibling_map = parse_as2org(generate_as2org(internet))
    rels = infer_relationships(view.paths(), siblings=sibling_map.as_dict())
    rir = parse_rir_file(generate_rir_files(internet))
    pdb_text, pch_text = generate_ixp_data(internet)
    ixp = parse_ixp_files(pdb_text, pch_text)
    return DataBundle(
        view=view,
        rels=rels,
        rir=rir,
        ixp=ixp,
        vp_ases=set(scenario.vp_as_list),
        focal_asn=scenario.focal_asn,
    )


def result_from_state(state: PipelineState) -> BdrmapResult:
    """Assemble a :class:`BdrmapResult` from a completed pipeline state."""
    return BdrmapResult(
        vp_name=state.vp_name,
        vp_addr=state.vp_addr,
        focal_asn=state.data.focal_asn,
        vp_ases=set(state.data.vp_ases),
        graph=state.graph,
        links=state.links,
        probes_used=state.collection.probes_used,
        traces_run=state.collection.traces_run,
        runtime_virtual_seconds=sum(
            timing.virtual_seconds for timing in state.timings
        ),
        provenance=(
            list(state.ctx.provenance.records)
            if state.ctx is not None else []
        ),
    )


class Bdrmap:
    """Run the full staged pipeline for one VP."""

    def __init__(
        self,
        network: Network,
        vp: VantagePoint,
        data: DataBundle,
        config: Optional[BdrmapConfig] = None,
        resolver=None,
        metrics=None,
        tracer=None,
    ) -> None:
        self.network = network
        self.vp = vp
        self.data = data
        self.config = config or BdrmapConfig()
        self.resolver = resolver
        self.metrics = metrics
        self.tracer = tracer
        self.collection: Optional[Collection] = None
        self.state: Optional[PipelineState] = None

    def stages(self) -> List[PipelineStage]:
        """The stage sequence; remote deployments override this to swap
        the collection stage only."""
        return default_stages()

    def run(self) -> BdrmapResult:
        state = PipelineState(
            network=self.network,
            vp_name=self.vp.name,
            vp_addr=self.vp.addr,
            data=self.data,
            config=self.config,
            resolver=self.resolver,
        )
        if self.metrics is not None:
            state.metrics = self.metrics
        if self.tracer is not None:
            state.tracer = self.tracer
        Pipeline(self.stages()).run(state)
        self.state = state
        self.collection = state.collection
        return result_from_state(state)


def run_bdrmap(scenario, vp_index: int = 0,
               config: Optional[BdrmapConfig] = None,
               data: Optional[DataBundle] = None) -> BdrmapResult:
    """Convenience one-call runner for examples and tests."""
    scenario.ensure_forwarding_current()
    if data is None:
        data = build_data_bundle(scenario)
    vp = scenario.vps[vp_index]
    return Bdrmap(scenario.network, vp, data, config).run()


def infer_from_collection(
    collection: Collection,
    data: DataBundle,
    config: Optional[BdrmapConfig] = None,
    vp_name: str = "offline",
    vp_addr: int = 0,
) -> BdrmapResult:
    """Run the inference stages over an already-collected (possibly
    archived) collection — no probing.

    This is how inference over stored traces works: archive a collection
    with :func:`repro.io.serialize.collection_to_dict`, reload it later
    (or on another machine), and re-run the heuristics, e.g. with
    different :class:`HeuristicConfig` ablations.
    """
    state = PipelineState(
        network=None,
        vp_name=vp_name,
        vp_addr=vp_addr,
        data=data,
        config=config or BdrmapConfig(),
        collection=collection,
    )
    Pipeline([GraphBuildStage(), InferenceStage()]).run(state)
    return result_from_state(state)
