"""Deterministic randomness helpers.

Every stochastic component (topology generation, response-policy assignment,
probe scheduling jitter) draws from a ``random.Random`` derived here, never
from the global ``random`` module, so a single seed reproduces an entire
experiment end to end.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def make_rng(seed: int, *scope: str) -> random.Random:
    """Return a Random seeded from ``seed`` and a scope label.

    Distinct scopes (e.g. ``("topology",)`` vs ``("policies",)``) yield
    independent streams, so adding draws in one subsystem does not perturb
    another — essential for comparing ablations on the same topology.
    """
    digest = hashlib.sha256()
    digest.update(str(seed).encode("ascii"))
    for label in scope:
        digest.update(b"\x00")
        digest.update(label.encode("utf-8"))
    return random.Random(int.from_bytes(digest.digest()[:8], "big"))


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item with the given relative weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    mark = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if mark < acc:
            return item
    return items[-1]


def sample_up_to(rng: random.Random, items: Iterable[T], k: int) -> List[T]:
    """Sample min(k, len(items)) items without replacement."""
    pool = list(items)
    if k >= len(pool):
        rng.shuffle(pool)
        return pool
    return rng.sample(pool, k)


def pareto_int(rng: random.Random, alpha: float, minimum: int, maximum: int) -> int:
    """A bounded Pareto-distributed integer.

    Degree-like quantities on the Internet (customer counts, prefix counts,
    PoP counts) are heavy-tailed; this helper gives the generator that shape
    while keeping values in a sane range.
    """
    if minimum < 1 or maximum < minimum:
        raise ValueError("need 1 <= minimum <= maximum")
    value = minimum * (1.0 - rng.random()) ** (-1.0 / alpha)
    return max(minimum, min(maximum, int(value)))
