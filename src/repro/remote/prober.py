"""The on-device prober (scamper's role in §5.8).

Executes one measurement command at a time and returns the result.  It
holds no mapping data, no stop sets beyond the per-command list it is
handed, and no alias state — that all lives on the controller.
"""

from __future__ import annotations

from typing import Any, Dict

from ..addr import aton, ntoa
from ..errors import ProbeError, ReproError
from ..net import Network
from ..probing import ally_repeated, paris_traceroute
from ..probing.mercator import mercator_probe
from ..probing.ping import ping
from ..probing.prefixscan import prefixscan
from .protocol import Command, Reply


class Prober:
    """Runs measurement commands on the device hosting the VP."""

    def __init__(self, network: Network, vp_addr: int) -> None:
        self.network = network
        self.vp_addr = vp_addr
        self.commands_handled = 0
        self.op_failures = 0

    def handle(self, command: Command) -> Reply:
        """Run one command.  An op that fails at runtime produces an
        explicit error reply (``Reply.error``) rather than a stack trace
        on the device; an unknown op is a protocol bug and still raises."""
        self.commands_handled += 1
        handler = getattr(self, "_op_%s" % command.op, None)
        if handler is None:
            raise ProbeError("unknown command %r" % command.op)
        try:
            return Reply(seq=command.seq, payload=handler(command.args))
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            self.op_failures += 1
            return Reply(
                seq=command.seq,
                payload={},
                error="%s: %s" % (type(exc).__name__, exc),
            )

    # -- operations ----------------------------------------------------------

    def _op_trace(self, args: Dict[str, Any]) -> Dict[str, Any]:
        stop = (
            {aton(a) for a in args["stop"]} if args.get("stop") else None
        )
        trace = paris_traceroute(
            self.network,
            self.vp_addr,
            aton(args["dst"]),
            max_ttl=int(args.get("max_ttl", 32)),
            attempts=int(args.get("attempts", 2)),
            gap_limit=int(args.get("gap_limit", 5)),
            stop_set=stop,
        )
        return {
            "dst": ntoa(trace.dst),
            "stop_reason": trace.stop_reason,
            "probes": trace.probes_used,
            "hops": [
                {
                    "ttl": hop.ttl,
                    "addr": ntoa(hop.addr) if hop.addr is not None else None,
                    "kind": hop.kind.value if hop.kind is not None else None,
                    "rtt": round(hop.rtt, 3),
                    "ipid": hop.ipid,
                }
                for hop in trace.hops
            ],
        }

    def _op_mercator(self, args: Dict[str, Any]) -> Dict[str, Any]:
        source = mercator_probe(self.network, self.vp_addr, aton(args["addr"]))
        return {"src": ntoa(source) if source is not None else None}

    def _op_ally(self, args: Dict[str, Any]) -> Dict[str, Any]:
        addr_a, addr_b = aton(args["a"]), aton(args["b"])
        # The controller holds the TTL-limited aims (it has the traces);
        # it ships them with the command so the device can fall back to
        # in-transit expiry probing without holding any state itself.
        ttl_prober = None
        aims = args.get("aims") or {}
        if aims:
            from ..probing.ttl_limited import TTLLimitedProber

            ttl_prober = TTLLimitedProber(self.network, self.vp_addr)
            for addr_text, (dst_text, ttl) in aims.items():
                ttl_prober.learn(aton(addr_text), aton(dst_text), int(ttl))
        result = ally_repeated(
            self.network,
            self.vp_addr,
            addr_a,
            addr_b,
            rounds=int(args.get("rounds", 5)),
            interval=float(args.get("interval", 300.0)),
            ttl_prober=ttl_prober,
        )
        return {"verdict": result.verdict.value, "rounds": result.rounds}

    def _op_prefixscan(self, args: Dict[str, Any]) -> Dict[str, Any]:
        result = prefixscan(
            self.network, self.vp_addr, aton(args["prev"]), aton(args["addr"])
        )
        return {
            "plen": result.subnet_plen,
            "mate": ntoa(result.mate) if result.mate is not None else None,
        }

    def _op_velocity(self, args: Dict[str, Any]) -> Dict[str, Any]:
        from ..probing.midar import estimate_velocity

        addr = aton(args["addr"])
        samples = []
        for index in range(int(args.get("count", 3))):
            if index:
                self.network.advance(float(args.get("spacing", 2.0)))
            response = ping(self.network, self.vp_addr, addr)
            if response is not None:
                samples.append((self.network.now, response.ipid))
        estimate = estimate_velocity(samples)
        return {"velocity": estimate}

    def _op_status(self, args: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "commands": self.commands_handled,
            "vp": ntoa(self.vp_addr),
        }
