"""Wire protocol between the central controller and the on-device prober.

Commands and replies are serialized to compact JSON (what the real system
sends over the scamper control socket).  The :class:`Channel` counts every
byte in both directions and tracks the prober's peak in-flight state so the
§5.8 resource claims can be measured rather than asserted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict

from ..errors import ProbeError


@dataclass(frozen=True)
class Command:
    """Controller → prober: one measurement to run."""

    op: str                      # "trace" | "ping" | "ally" | "prefixscan"
    args: Dict[str, Any]
    seq: int = 0


@dataclass(frozen=True)
class Reply:
    """Prober → controller: the measurement's result."""

    seq: int
    payload: Dict[str, Any]


def encode(message) -> bytes:
    if isinstance(message, Command):
        body = {"t": "cmd", "seq": message.seq, "op": message.op,
                "args": message.args}
    elif isinstance(message, Reply):
        body = {"t": "rep", "seq": message.seq, "payload": message.payload}
    else:
        raise ProbeError("cannot encode %r" % (message,))
    return json.dumps(body, separators=(",", ":")).encode("utf-8")


def decode(data: bytes):
    body = json.loads(data.decode("utf-8"))
    kind = body.get("t")
    if kind == "cmd":
        return Command(op=body["op"], args=body["args"], seq=body["seq"])
    if kind == "rep":
        return Reply(seq=body["seq"], payload=body["payload"])
    raise ProbeError("cannot decode message type %r" % kind)


class Channel:
    """An accounted, in-memory message channel to one prober."""

    def __init__(self, prober) -> None:
        self._prober = prober
        self._seq = 0
        self.bytes_to_device = 0
        self.bytes_from_device = 0
        self.messages = 0
        self.device_peak_bytes = 0

    def call(self, op: str, **args) -> Dict[str, Any]:
        """Send one command, wait for its reply (synchronous)."""
        self._seq += 1
        wire_out = encode(Command(op=op, args=args, seq=self._seq))
        self.bytes_to_device += len(wire_out)
        self.messages += 1
        command = decode(wire_out)
        reply = self._prober.handle(command)
        wire_in = encode(reply)
        self.bytes_from_device += len(wire_in)
        self.messages += 1
        # The device holds at most one command + one reply at a time.
        self.device_peak_bytes = max(
            self.device_peak_bytes, len(wire_out) + len(wire_in)
        )
        decoded = decode(wire_in)
        if decoded.seq != self._seq:
            raise ProbeError("reply out of sequence")
        return decoded.payload

    @property
    def total_bytes(self) -> int:
        return self.bytes_to_device + self.bytes_from_device
