"""Wire protocol between the central controller and the on-device prober.

Commands and replies are serialized to compact JSON (what the real system
sends over the scamper control socket).  The :class:`Channel` counts every
byte in both directions and tracks the prober's peak in-flight state so the
§5.8 resource claims can be measured rather than asserted.

The channel is also where control-plane faults live: with a
:class:`~repro.net.faults.ChannelFaultPolicy` attached, replies can be
dropped (the call times out), garbled (decode fails), delayed, or the
connection severed.  :meth:`Channel.call` survives all of these for
idempotent measurement ops: it times out, reconnects, and retries within a
budget, raising :class:`~repro.errors.MeasurementTimeout` only when the
budget is exhausted.  Without a fault policy the channel behaves exactly
as before — same bytes, same accounting.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from ..errors import ChannelError, DataError, MeasurementTimeout, ProbeError
from ..net.faults import ChannelFaultPolicy
from ..probing.retry import RetryStats
from ..rng import make_rng

# Measurement ops that are safe to re-issue after a transport failure.
# Every bdrmap measurement is idempotent (probing twice just costs probes);
# ops outside this set fail fast on the first transport error.
IDEMPOTENT_OPS = frozenset(
    {"trace", "ping", "ally", "mercator", "prefixscan", "velocity", "status"}
)


@dataclass(frozen=True)
class Command:
    """Controller → prober: one measurement to run.

    ``trace`` is an optional compact trace context (``{"id": <parent
    span id>, "seed": <tracer seed>}``) propagated by the serving tier
    so worker-side spans parent under the front-end span that issued
    the command.  When absent the wire bytes are identical to the
    pre-telemetry protocol.
    """

    op: str                      # "trace" | "ping" | "ally" | "prefixscan"
    args: Dict[str, Any]
    seq: int = 0
    trace: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class Reply:
    """Prober → controller: the measurement's result.

    ``error`` lets the device signal that the op itself failed (bad
    arguments, internal fault) — distinct from transport failures, which
    are the channel's business.
    """

    seq: int
    payload: Dict[str, Any]
    error: Optional[str] = None


def encode(message) -> bytes:
    if isinstance(message, Command):
        body = {"t": "cmd", "seq": message.seq, "op": message.op,
                "args": message.args}
        if message.trace is not None:
            body["tc"] = message.trace
    elif isinstance(message, Reply):
        body = {"t": "rep", "seq": message.seq, "payload": message.payload}
        if message.error is not None:
            body["err"] = message.error
    else:
        raise ProbeError("cannot encode %r" % (message,))
    return json.dumps(body, separators=(",", ":")).encode("utf-8")


def decode(data: bytes):
    """Decode one wire frame.

    Truncated or garbled frames raise :class:`DataError` carrying an
    excerpt of the offending payload; a structurally valid frame of an
    unknown type still raises :class:`ProbeError` (a protocol-version
    problem, not line noise).
    """
    try:
        body = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DataError(
            "garbled frame (%s): %r" % (exc, data[:64])
        ) from exc
    if not isinstance(body, dict):
        raise DataError("garbled frame (not an object): %r" % (data[:64],))
    kind = body.get("t")
    try:
        if kind == "cmd":
            return Command(op=body["op"], args=body["args"], seq=body["seq"],
                           trace=body.get("tc"))
        if kind == "rep":
            return Reply(seq=body["seq"], payload=body["payload"],
                         error=body.get("err"))
    except KeyError as exc:
        raise DataError(
            "truncated frame (missing %s): %r" % (exc, data[:64])
        ) from exc
    raise ProbeError("cannot decode message type %r" % kind)


# -- length framing ---------------------------------------------------------
#
# The JSON codec above produces one blob per message; a stream transport
# (socket, pipe) needs to know where each blob ends.  Frames are a 4-byte
# big-endian length prefix followed by the payload — the classic netstring
# shape, shared by the serving tier's shard channels.

FRAME_HEADER = struct.Struct(">I")

#: Upper bound on a single frame's payload.  A corrupted length prefix
#: must not make a reader allocate gigabytes; anything past this is line
#: noise, not a message.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def pack_frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its big-endian 4-byte length."""
    if len(payload) > MAX_FRAME_BYTES:
        raise DataError(
            "frame payload too large: %d > %d bytes"
            % (len(payload), MAX_FRAME_BYTES)
        )
    return FRAME_HEADER.pack(len(payload)) + payload


def unpack_frame(data: bytes) -> bytes:
    """Strict inverse of :func:`pack_frame` for single-frame transports.

    Raises :class:`DataError` unless ``data`` is exactly one well-formed
    frame — the check that catches truncated or garbled shard messages.
    """
    decoder = FrameDecoder()
    frames = decoder.feed(data)
    if len(frames) != 1 or decoder.pending:
        raise DataError(
            "expected exactly one frame, got %d (+%d buffered bytes)"
            % (len(frames), decoder.pending)
        )
    return frames[0]


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    Feed it whatever chunks the transport delivers; it returns complete
    payloads and buffers the remainder, so a frame split across reads (or
    several frames delivered at once) both come out right.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[bytes]:
        self._buffer.extend(data)
        frames: List[bytes] = []
        for frame in self._drain():
            frames.append(frame)
        return frames

    def _drain(self) -> Iterator[bytes]:
        header = FRAME_HEADER.size
        while len(self._buffer) >= header:
            (length,) = FRAME_HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                # Poison the decoder: drop the corrupt prefix (and
                # whatever rode in with it) so the error surfaces once
                # and the channel can be torn down or restarted cleanly
                # instead of re-raising on every subsequent feed.
                self._buffer.clear()
                raise DataError(
                    "frame length %d exceeds cap %d (corrupt prefix?)"
                    % (length, MAX_FRAME_BYTES)
                )
            if len(self._buffer) < header + length:
                return
            payload = bytes(self._buffer[header:header + length])
            del self._buffer[:header + length]
            yield payload


class Channel:
    """An accounted, in-memory message channel to one prober.

    ``faults`` injects control-plane failures; ``timeout_s`` is how long a
    call waits (in virtual time) for a reply before declaring a timeout;
    ``max_retries`` bounds re-issues of idempotent ops after transport
    failures.

    ``backoff_s`` > 0 adds *full-jitter* exponential backoff between
    retries: before retry k the channel waits (in virtual time) a uniform
    draw from ``[0, min(max_backoff_s, backoff_s * 2**(k-1))]``, so
    concurrent controllers recovering from the same outage don't stampede
    the device in lockstep.  The draws come from ``repro.rng`` seeded by
    ``seed`` — the same seed replays the same waits, keeping chaos runs
    deterministic.  The default ``backoff_s=0.0`` retries immediately and
    never touches the RNG, preserving the pre-backoff virtual timeline
    byte for byte.
    """

    def __init__(self, prober, faults: Optional[ChannelFaultPolicy] = None,
                 timeout_s: float = 10.0, max_retries: int = 3,
                 backoff_s: float = 0.0, max_backoff_s: float = 8.0,
                 seed: int = 0) -> None:
        self._prober = prober
        self._seq = 0
        self._connected = True
        self.faults = faults
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self._jitter_rng = make_rng(seed, "channel", "jitter")
        self.bytes_to_device = 0
        self.bytes_from_device = 0
        self.messages = 0
        self.device_peak_bytes = 0
        # Resilience accounting.
        self.retries = 0
        self.timeouts = 0
        self.garbled = 0
        self.severed = 0
        self.delays = 0
        self.reconnects = 0
        self.backoff_waited_s = 0.0
        self.retry_stats = RetryStats()
        self.retry_stats.budget = max_retries

    # -- faults ------------------------------------------------------------

    def _advance(self, seconds: float) -> None:
        """Waiting costs virtual time on the device's clock."""
        network = getattr(self._prober, "network", None)
        if network is not None and seconds > 0:
            network.advance(seconds)

    def _reconnect(self) -> None:
        self.reconnects += 1
        self._connected = True

    def _backoff(self, attempt: int) -> None:
        """Full-jitter wait before (1-based) retry ``attempt``."""
        if self.backoff_s <= 0:
            return
        cap = min(self.max_backoff_s, self.backoff_s * 2 ** (attempt - 1))
        wait = self._jitter_rng.uniform(0.0, cap)
        self.backoff_waited_s += wait
        self._advance(wait)

    # -- calls -------------------------------------------------------------

    def call(self, op: str, **args) -> Dict[str, Any]:
        """Send one command and return its reply payload.

        Transport failures (timeout, severed connection, garbled frame)
        are retried for idempotent ops, reconnecting as needed; the final
        failure surfaces as :class:`MeasurementTimeout` (chained to the
        last underlying error).  An explicit device error reply raises
        :class:`ChannelError` immediately — the op ran and failed; there
        is nothing to retry.
        """
        last_error: Optional[Exception] = None
        budget = self.max_retries if op in IDEMPOTENT_OPS else 0
        for attempt in range(budget + 1):
            if attempt:
                self.retries += 1
                self.retry_stats.retries += 1
                self._backoff(attempt)
            if not self._connected:
                self._reconnect()
            try:
                payload = self._call_once(op, args)
                if attempt:
                    self.retry_stats.recovered += 1
                return payload
            except (MeasurementTimeout, DataError) as exc:
                last_error = exc
            except ChannelError as exc:
                if self._connected:
                    # Not a transport fault: the device answered with an
                    # explicit error.  Retrying cannot help.
                    raise
                last_error = exc
            if budget == 0:
                raise last_error
        self.retry_stats.exhausted += 1
        raise MeasurementTimeout(
            "op %r failed after %d attempts: %s"
            % (op, budget + 1, last_error)
        ) from last_error

    def _call_once(self, op: str, args: Dict[str, Any]) -> Dict[str, Any]:
        self._seq += 1
        wire_out = encode(Command(op=op, args=args, seq=self._seq))
        self.bytes_to_device += len(wire_out)
        self.messages += 1

        fault = self.faults.next_fault() if self.faults is not None else None
        if fault == "sever":
            self.severed += 1
            self._connected = False
            raise ChannelError("control connection severed mid-call")

        command = decode(wire_out)
        reply = self._prober.handle(command)
        wire_in = encode(reply)

        if fault == "drop":
            # The reply never arrives; the controller waits out the timeout.
            self.timeouts += 1
            self._advance(self.timeout_s)
            raise MeasurementTimeout(
                "no reply to %r within %.1fs" % (op, self.timeout_s)
            )
        if fault == "delay":
            self.delays += 1
            self._advance(self.faults.delay_seconds)
        if fault == "garble":
            self.garbled += 1
            wire_in = self.faults.garble(wire_in)

        self.bytes_from_device += len(wire_in)
        self.messages += 1
        # The device holds at most one command + one reply at a time.
        self.device_peak_bytes = max(
            self.device_peak_bytes, len(wire_out) + len(wire_in)
        )
        decoded = decode(wire_in)
        if decoded.seq != self._seq:
            raise ProbeError("reply out of sequence")
        if decoded.error is not None:
            raise ChannelError(
                "device error for op %r: %s" % (op, decoded.error)
            )
        return decoded.payload

    def fault_counters(self) -> Dict[str, int]:
        """Nonzero resilience counters, for reports."""
        counters = {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "garbled": self.garbled,
            "severed": self.severed,
            "delays": self.delays,
            "reconnects": self.reconnects,
        }
        return {key: value for key, value in counters.items() if value}

    @property
    def total_bytes(self) -> int:
        return self.bytes_to_device + self.bytes_from_device
