"""The central controller (§5.8).

Runs the *identical* bdrmap pipeline as a local run — same stage sequence,
same alias resolver, same heuristic passes — but every measurement is
dispatched to the on-device prober over the accounted channel.  Only the
collection stage is swapped: :class:`RemoteBdrmap` overrides
:meth:`~repro.core.bdrmap.Bdrmap.stages` to substitute
:class:`RemoteCollectionStage`, and everything downstream (router-graph
build, heuristic inference) runs unchanged.  The controller keeps all
heavy state (IP→AS mapping, stop sets, traces, alias evidence); the device
keeps none.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..addr import aton, ntoa
from ..alias import AliasResolver
from ..core.bdrmap import Bdrmap, BdrmapConfig, DataBundle
from ..core.collection import Collector
from ..core.pipeline import CollectionStage, PipelineStage, PipelineState
from ..core.report import BdrmapResult
from ..net import Network, ResponseKind, VantagePoint
from ..probing.ally import AliasVerdict, AllyResult
from ..probing.prefixscan import PrefixscanResult
from ..probing.traceroute import TraceHop, TraceResult
from .prober import Prober
from .protocol import Channel


@dataclass
class RemoteStats:
    messages: int
    bytes_to_device: int
    bytes_from_device: int
    device_peak_bytes: int
    controller_state_bytes: int
    # Channel resilience counters (empty on a healthy channel).
    fault_counters: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        text = (
            "remote session: %d messages, %.1f KB down, %.1f KB up, "
            "device peak %.1f KB, controller state %.1f KB"
            % (
                self.messages,
                self.bytes_to_device / 1024.0,
                self.bytes_from_device / 1024.0,
                self.device_peak_bytes / 1024.0,
                self.controller_state_bytes / 1024.0,
            )
        )
        if self.fault_counters:
            text += "\n  channel faults: %s" % ", ".join(
                "%s=%d" % (key, value)
                for key, value in sorted(self.fault_counters.items())
            )
        return text


class _RemoteAliasResolver(AliasResolver):
    """Alias resolver whose probes run on the device."""

    def __init__(self, channel: Channel, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._channel = channel

    def _mercator_raw(self, addr: int) -> Optional[int]:
        payload = self._channel.call("mercator", addr=ntoa(addr))
        return aton(payload["src"]) if payload["src"] else None

    def _velocity_raw(self, addr: int):
        payload = self._channel.call("velocity", addr=ntoa(addr))
        return payload["velocity"]

    def _ally_raw(self, a: int, b: int) -> AllyResult:
        aims = {}
        for addr in (a, b):
            aim = self.ttl_aim(addr)
            if aim is not None:
                aims[ntoa(addr)] = [ntoa(aim[0]), aim[1]]
        payload = self._channel.call(
            "ally", a=ntoa(a), b=ntoa(b),
            rounds=self.ally_rounds, interval=self.ally_interval,
            aims=aims,
        )
        return AllyResult(
            verdict=AliasVerdict(payload["verdict"]),
            rounds=payload.get("rounds", 1),
        )


class _RemoteCollector(Collector):
    """Collector whose traceroutes and prefixscans run on the device."""

    def __init__(self, channel: Channel, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._channel = channel
        self.collection.resolver = _RemoteAliasResolver(
            channel,
            self.network,
            self.vp_addr,
            ally_rounds=self.config.ally_rounds,
            ally_interval=self.config.ally_interval,
        )

    def _trace(self, dst: int, stop: Optional[Set[int]]) -> TraceResult:
        payload = self._channel.call(
            "trace",
            dst=ntoa(dst),
            stop=sorted(ntoa(a) for a in stop) if stop else [],
            max_ttl=self.config.max_ttl,
            attempts=self.config.attempts,
            gap_limit=self.config.gap_limit,
        )
        hops = [
            TraceHop(
                ttl=h["ttl"],
                addr=aton(h["addr"]) if h["addr"] else None,
                kind=ResponseKind(h["kind"]) if h["kind"] else None,
                rtt=h["rtt"],
                ipid=h["ipid"],
            )
            for h in payload["hops"]
        ]
        return TraceResult(
            vp_addr=self.vp_addr,
            dst=aton(payload["dst"]),
            hops=hops,
            stop_reason=payload["stop_reason"],
            probes_used=payload["probes"],
        )

    def _prefixscan(self, prev: int, nxt: int) -> PrefixscanResult:
        payload = self._channel.call(
            "prefixscan", prev=ntoa(prev), addr=ntoa(nxt)
        )
        return PrefixscanResult(
            prev=prev,
            addr=nxt,
            subnet_plen=payload["plen"],
            mate=aton(payload["mate"]) if payload["mate"] else None,
        )


class RemoteCollectionStage(CollectionStage):
    """Collection stage whose probes cross the device channel."""

    name = "collection[remote]"

    def __init__(self, channel: Channel) -> None:
        self.channel = channel

    def make_collector(self, state: PipelineState) -> Collector:
        return _RemoteCollector(
            self.channel,
            state.network,
            state.vp_addr,
            state.data.view,
            state.data.vp_ases,
            state.config.collection,
        )


class RemoteBdrmap(Bdrmap):
    """bdrmap with the §5.8 split: device probes, controller thinks."""

    def __init__(
        self,
        network: Network,
        vp: VantagePoint,
        data: DataBundle,
        config: Optional[BdrmapConfig] = None,
        channel_faults=None,
        channel_timeout_s: float = 10.0,
        channel_retries: int = 3,
    ) -> None:
        super().__init__(network, vp, data, config)
        self.prober = Prober(network, vp.addr)
        self.channel = Channel(
            self.prober,
            faults=channel_faults,
            timeout_s=channel_timeout_s,
            max_retries=channel_retries,
        )
        self.stats: Optional[RemoteStats] = None

    def stages(self) -> List[PipelineStage]:
        stages = super().stages()
        return [
            RemoteCollectionStage(self.channel)
            if isinstance(stage, CollectionStage)
            else stage
            for stage in stages
        ]

    def run(self) -> BdrmapResult:
        result = super().run()
        self.stats = RemoteStats(
            messages=self.channel.messages,
            bytes_to_device=self.channel.bytes_to_device,
            bytes_from_device=self.channel.bytes_from_device,
            device_peak_bytes=self.channel.device_peak_bytes,
            controller_state_bytes=_estimate_controller_state(self.collection),
            fault_counters=self.channel.fault_counters(),
        )
        return result


def _estimate_controller_state(collection) -> int:
    """Rough size of the state the controller held for the device: traces,
    stop sets, and alias evidence (what would not fit on the device)."""
    trace_bytes = sum(
        32 + 24 * len(trace.hops) for trace in collection.traces
    )
    stop_bytes = 8 * collection.stop_set.total_entries()
    alias_bytes = 48 * len(collection.resolver.evidence) if collection.resolver else 0
    return trace_bytes + stop_bytes + alias_bytes
