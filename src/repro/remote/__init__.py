"""§5.8: supporting resource-limited devices.

The densest measurement deployments (RIPE Atlas, SamKnows, BISmark) run on
~400 MHz MIPS boxes with tens of MB of RAM, while bdrmap proper needs the
full IP→AS mapping, stop sets, and alias state (~150 MB).  The paper's
solution: the device runs only the prober (scamper) and calls back to a
centrally-operated controller that holds all state and drives the
measurement interactively.

This package reproduces that architecture: a :class:`Prober` that executes
single measurement commands with O(1) state, a wire :mod:`protocol` with
byte accounting, and a :class:`RemoteBdrmap` controller that runs the exact
same pipeline as the local one with every probe dispatched over the
channel.
"""

from .protocol import (
    Channel,
    Command,
    FrameDecoder,
    Reply,
    encode,
    decode,
    pack_frame,
    unpack_frame,
)
from .prober import Prober
from .controller import RemoteBdrmap, RemoteStats

__all__ = [
    "Channel",
    "Command",
    "Reply",
    "encode",
    "decode",
    "FrameDecoder",
    "pack_frame",
    "unpack_frame",
    "Prober",
    "RemoteBdrmap",
    "RemoteStats",
]
