"""IPv4 address and prefix primitives.

Addresses are plain ``int`` values in ``[0, 2**32)`` on all hot paths;
:class:`Prefix` is an immutable (address, length) pair with the host bits
zeroed.  Dotted-quad strings appear only at the presentation edge
(:func:`ntoa` / :func:`aton`).

The paper's method reasons constantly about prefixes: longest-prefix match
for IP→AS mapping, /30 and /31 interdomain subnets for prefixscan, and the
address-block list that drives probing (§5.3).  These primitives underpin all
of that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .errors import AddressError

MAX_ADDR = (1 << 32) - 1


def aton(text: str) -> int:
    """Parse dotted-quad ``text`` into an int address.

    >>> aton("128.66.0.1")
    2151743489
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError("not a dotted quad: %r" % text)
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError("bad octet %r in %r" % (part, text))
        octet = int(part)
        if octet > 255:
            raise AddressError("octet out of range in %r" % text)
        value = (value << 8) | octet
    return value


def ntoa(addr: int) -> str:
    """Render int address ``addr`` as a dotted quad string."""
    if not 0 <= addr <= MAX_ADDR:
        raise AddressError("address out of range: %r" % addr)
    return "%d.%d.%d.%d" % (
        (addr >> 24) & 0xFF,
        (addr >> 16) & 0xFF,
        (addr >> 8) & 0xFF,
        addr & 0xFF,
    )


def netmask(plen: int) -> int:
    """Return the netmask for prefix length ``plen`` as an int."""
    if not 0 <= plen <= 32:
        raise AddressError("prefix length out of range: %r" % plen)
    if plen == 0:
        return 0
    return (MAX_ADDR << (32 - plen)) & MAX_ADDR


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix: network address (host bits zero) plus length.

    Instances are hashable and totally ordered (by address, then length),
    which keeps target lists and report output deterministic.
    """

    addr: int
    plen: int

    def __post_init__(self) -> None:
        if not 0 <= self.plen <= 32:
            raise AddressError("prefix length out of range: %r" % self.plen)
        if not 0 <= self.addr <= MAX_ADDR:
            raise AddressError("address out of range: %r" % self.addr)
        masked = self.addr & netmask(self.plen)
        if masked != self.addr:
            raise AddressError(
                "host bits set in %s/%d" % (ntoa(self.addr), self.plen)
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` into a Prefix."""
        if "/" not in text:
            raise AddressError("missing / in prefix %r" % text)
        addr_text, _, plen_text = text.partition("/")
        if not plen_text.isdigit():
            raise AddressError("bad prefix length in %r" % text)
        return cls(aton(addr_text), int(plen_text))

    @classmethod
    def of(cls, addr: int, plen: int) -> "Prefix":
        """Build the prefix of length ``plen`` containing ``addr``."""
        return cls(addr & netmask(plen), plen)

    @property
    def first(self) -> int:
        """The lowest address in the prefix (the network address)."""
        return self.addr

    @property
    def last(self) -> int:
        """The highest address in the prefix (the broadcast address)."""
        return self.addr | (MAX_ADDR >> self.plen if self.plen else MAX_ADDR)

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.plen)

    def __contains__(self, addr: int) -> bool:
        return self.addr <= addr <= self.last

    def contains_prefix(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        return other.plen >= self.plen and other.addr & netmask(self.plen) == self.addr

    def split(self) -> Tuple["Prefix", "Prefix"]:
        """Split into the two child prefixes of length ``plen + 1``."""
        if self.plen >= 32:
            raise AddressError("cannot split a /32")
        child_len = self.plen + 1
        left = Prefix(self.addr, child_len)
        right = Prefix(self.addr | (1 << (32 - child_len)), child_len)
        return left, right

    def subnets(self, plen: int) -> Iterator["Prefix"]:
        """Iterate the subnets of this prefix at length ``plen``."""
        if plen < self.plen:
            raise AddressError(
                "cannot enumerate /%d subnets of a /%d" % (plen, self.plen)
            )
        step = 1 << (32 - plen)
        for base in range(self.addr, self.last + 1, step):
            yield Prefix(base, plen)

    def hosts(self) -> Iterator[int]:
        """Iterate usable host addresses.

        For /31 and /32 every address is usable (RFC 3021); otherwise the
        network and broadcast addresses are excluded.
        """
        if self.plen >= 31:
            yield from range(self.addr, self.last + 1)
        else:
            yield from range(self.addr + 1, self.last)

    def __str__(self) -> str:
        return "%s/%d" % (ntoa(self.addr), self.plen)


@dataclass(frozen=True, order=True)
class AddressBlock:
    """A contiguous address range [first, last] associated with an origin AS.

    §5.3 builds probing targets from address *blocks*, not prefixes: when Y
    originates a more-specific inside X's prefix, X's block is the /16 minus
    the more-specific.  Blocks capture those punched-out ranges exactly.
    """

    first: int
    last: int

    def __post_init__(self) -> None:
        if not 0 <= self.first <= self.last <= MAX_ADDR:
            raise AddressError(
                "bad block [%r, %r]" % (self.first, self.last)
            )

    @property
    def size(self) -> int:
        return self.last - self.first + 1

    def __contains__(self, addr: int) -> bool:
        return self.first <= addr <= self.last

    def __str__(self) -> str:
        return "%s-%s" % (ntoa(self.first), ntoa(self.last))


def subtract_blocks(outer: AddressBlock, inners: List[AddressBlock]) -> List[AddressBlock]:
    """Return ``outer`` minus every block in ``inners``, as sorted blocks.

    Used to build per-AS probing blocks: the /16 of X minus the /24 that Y
    originates yields two blocks belonging to X (§5.3 example).
    """
    pieces = [outer]
    for inner in sorted(inners):
        next_pieces: List[AddressBlock] = []
        for piece in pieces:
            if inner.last < piece.first or inner.first > piece.last:
                next_pieces.append(piece)
                continue
            if inner.first > piece.first:
                next_pieces.append(AddressBlock(piece.first, inner.first - 1))
            if inner.last < piece.last:
                next_pieces.append(AddressBlock(inner.last + 1, piece.last))
        pieces = next_pieces
    return sorted(pieces)


def block_of(prefix: Prefix) -> AddressBlock:
    """The AddressBlock covering exactly ``prefix``."""
    return AddressBlock(prefix.first, prefix.last)


def summarize_range(first: int, last: int) -> List[Prefix]:
    """Cover [first, last] with the minimal list of CIDR prefixes.

    Used when emitting RIR delegation files (which record ranges) back as
    prefixes, and in tests as the inverse of :func:`subtract_blocks`.
    """
    if not 0 <= first <= last <= MAX_ADDR:
        raise AddressError("bad range [%r, %r]" % (first, last))
    prefixes: List[Prefix] = []
    cursor = first
    while cursor <= last:
        # Largest power-of-two block aligned at cursor...
        align = cursor & -cursor if cursor else 1 << 32
        # ...that also fits in the remaining span.
        span = last - cursor + 1
        size = min(align, 1 << span.bit_length() - 1)
        plen = 32 - (size.bit_length() - 1)
        prefixes.append(Prefix(cursor, plen))
        cursor += size
    return prefixes
