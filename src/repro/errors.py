"""Exception hierarchy for the bdrmap reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all exceptions raised by this package."""


class AddressError(ReproError, ValueError):
    """An IPv4 address or prefix was malformed or out of range."""


class TopologyError(ReproError):
    """The topology generator was asked to build something inconsistent."""


class RoutingError(ReproError):
    """No route / inconsistent routing state in the simulator."""


class ProbeError(ReproError):
    """A measurement tool was used incorrectly."""


class MeasurementError(ReproError):
    """A measurement failed at runtime (as opposed to being misused).

    The branch of the hierarchy for *transient, environmental* failures:
    code that drives measurements catches these and retries or degrades,
    whereas a :class:`ProbeError` indicates a bug in the caller.
    """


class MeasurementTimeout(MeasurementError):
    """A measurement or control-channel call produced no reply in time."""


class ChannelError(MeasurementError):
    """The control channel to a remote prober failed (severed connection,
    corrupted frame, or an explicit error reply from the device)."""


class DataError(ReproError, ValueError):
    """An input dataset (RIR / IXP / sibling file) could not be parsed."""


class InferenceError(ReproError):
    """The inference engine reached an inconsistent internal state."""
