"""The packet walk: inject a probe at a vantage point, get a response.

This is the only interface the measurement layer has to the simulated
Internet — exactly as scamper's only interface to the real one is sending
packets and reading ICMP.  Everything bdrmap must cope with (third-party
source addresses, firewalls, silence, virtual routers, rate limiting, IPID
behaviour) is produced here from per-router policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ProbeError
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..rng import make_rng
from ..topology.model import Internet, Router
from .congestion import CongestionSchedule
from .faults import FaultPlan
from .ipid import IPIDState
from .packet import Probe, ProbeKind, Response, ResponseKind
from .policies import RateLimiter, RouterPolicy, SourceSel
from .routing import RoutingOracle, StepKind

_MAX_HOPS = 64
_DEFAULT_POLICY = RouterPolicy()


@dataclass(frozen=True)
class VantagePoint:
    """A measurement host inside some network."""

    name: str
    asn: int
    pop_id: int
    addr: int
    first_router: int


class Network:
    """Forwarding simulation with a virtual clock."""

    def __init__(self, internet: Internet, seed: int = 0, pps: float = 100.0,
                 faults: Optional[FaultPlan] = None) -> None:
        self.internet = internet
        self.oracle = RoutingOracle(internet)
        self.pps = pps
        self.now = 0.0
        self.probes_sent = 0
        self.vps: Dict[int, VantagePoint] = {}
        self._ipid: Dict[int, IPIDState] = {}
        self._limiters: Dict[int, RateLimiter] = {}
        self._seed = seed
        self._rng = make_rng(seed, "network")
        self._host_ipid = make_rng(seed, "host-ipid")
        # Optional per-link diurnal queueing delays (§2's congestion).
        self.congestion = CongestionSchedule()
        # Optional fault injection (repro.net.faults).  None means the
        # simulator stays perfectly deterministic and lossless.
        self.faults = faults
        # Instrumentation sink; NULL_REGISTRY keeps the zero-obs hot
        # path at one no-op call per probe.
        self.metrics: MetricsRegistry = NULL_REGISTRY

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Adopt the run's shared registry; fault stats become views
        over it too, so drop counts are recorded exactly once."""
        self.metrics = registry
        if self.faults is not None:
            self.faults.stats.bind(registry)

    def reset(self, seed: Optional[int] = None) -> None:
        """Restore the network to its just-built dynamic state.

        Rewinds the virtual clock, probe counter, per-router IPID streams,
        rate limiters, and RNG streams to exactly what a freshly
        constructed ``Network(internet, seed)`` would hold, without paying
        for a topology rebuild.  The routing oracle is deliberately *not*
        reset: its memoized state (class routes, intra tables, step memo)
        is a pure function of the static topology, so keeping it warm
        cannot change behaviour — this is what lets a parallel worker run
        several VPs back-to-back with per-VP-fresh determinism while
        paying the route computations once.

        With a fault plan attached, its stats counters restart from zero
        (draw streams are pure functions of (seed, entity, time), which
        the rewound clock replays identically).
        """
        if seed is None:
            seed = self._seed
        self.now = 0.0
        self.probes_sent = 0
        self._ipid = {}
        self._limiters = {}
        self._rng = make_rng(seed, "network")
        self._host_ipid = make_rng(seed, "host-ipid")
        if self.faults is not None:
            self.faults.reset()
            if self.metrics.enabled:
                self.faults.stats.bind(self.metrics)

    # -- setup ---------------------------------------------------------------

    def add_vp(self, vp: VantagePoint) -> None:
        if vp.addr in self.vps:
            raise ProbeError("duplicate VP address")
        self.vps[vp.addr] = vp

    def advance(self, seconds: float) -> None:
        """Advance the virtual clock (e.g. Ally's five-minute waits)."""
        if seconds < 0:
            raise ProbeError("cannot rewind the clock")
        self.now += seconds

    # -- internals -------------------------------------------------------------

    def _policy(self, router: Router) -> RouterPolicy:
        return router.policy if router.policy is not None else _DEFAULT_POLICY

    def _ipid_state(self, router: Router) -> IPIDState:
        state = self._ipid.get(router.router_id)
        if state is None:
            policy = self._policy(router)
            state = IPIDState(
                policy.ipid_model,
                policy.ipid_velocity,
                make_rng(self.internet.seed, "ipid", str(router.router_id)),
            )
            self._ipid[router.router_id] = state
        return state

    def _rate_ok(self, router: Router) -> bool:
        policy = self._policy(router)
        if policy.rate_limit_pps is None:
            return True
        limiter = self._limiters.get(router.router_id)
        if limiter is None:
            limiter = RateLimiter(policy.rate_limit_pps)
            self._limiters[router.router_id] = limiter
        return limiter.allow(self.now)

    def _rtt(self, delay_ms: float, salt: int) -> float:
        jitter = ((int(delay_ms * 1000) * 2654435761 + salt) % 997) / 1000.0
        return 2.0 * delay_ms + jitter

    def _link_delay(self, link_id: int) -> float:
        """One-way latency of a link in ms: propagation (from IGP cost,
        which encodes geographic distance) plus current queueing delay."""
        link = self.internet.links[link_id]
        return link.igp_cost * 0.75 + self.congestion.delay_ms(
            link_id, self.now
        )

    def _reply_egress_addr(self, router: Router, toward: int) -> Optional[int]:
        """The address of the interface this router would transmit a reply
        from — the source of third-party addresses (§4 challenge 2)."""
        step = self.oracle.step(router.router_id, toward)
        if step.kind is StepKind.FORWARD and step.out_addr is not None:
            return step.out_addr
        addresses = router.addresses()
        return min(addresses) if addresses else None

    def _expired_source(self, router: Router, probe: Probe,
                        in_addr: Optional[int]) -> Optional[int]:
        policy = self._policy(router)
        if policy.vrouter:
            next_as = self.oracle.next_as_of(router.asn, probe.dst)
            if next_as is not None and next_as in policy.vrouter:
                return policy.vrouter[next_as]
        if policy.source_sel is SourceSel.REPLY_EGRESS:
            addr = self._reply_egress_addr(router, probe.src)
            if addr is not None:
                return addr
        if in_addr is not None:
            return in_addr
        return self._reply_egress_addr(router, probe.src)

    def _respond(self, router: Router, probe: Probe, kind: ResponseKind,
                 src: Optional[int], delay_ms: float) -> Optional[Response]:
        if src is None:
            return None
        if not self._rate_ok(router):
            return None
        ipid = self._ipid_state(router).next(self.now, src)
        return Response(
            src=src,
            kind=kind,
            ipid=ipid,
            quoted_dst=probe.dst,
            rtt=self._rtt(delay_ms, probe.dst & 0xFFFF),
            truth_router_id=router.router_id,
        )

    def _ttl_expired(self, router: Router, probe: Probe,
                     in_addr: Optional[int], delay_ms: float) -> Optional[Response]:
        policy = self._policy(router)
        if not policy.responds_ttl_expired:
            return None
        src = self._expired_source(router, probe, in_addr)
        return self._respond(router, probe, ResponseKind.TTL_EXPIRED, src,
                             delay_ms)

    def _arrival(self, router: Router, probe: Probe,
                 delay_ms: float) -> Optional[Response]:
        """The probe is addressed to one of this router's interfaces."""
        policy = self._policy(router)
        if probe.kind is ProbeKind.ICMP_ECHO:
            if not policy.responds_echo:
                return None
            # Echo replies are sourced from the probed address (§4: the
            # reply source gives no clue which interface the probe reached).
            return self._respond(router, probe, ResponseKind.ECHO_REPLY,
                                 probe.dst, delay_ms)
        if probe.kind is ProbeKind.UDP:
            if not policy.responds_udp:
                return None
            if policy.udp_reply_egress:
                src = self._reply_egress_addr(router, probe.src)
            else:
                src = probe.dst
            return self._respond(router, probe, ResponseKind.DEST_UNREACH_PORT,
                                 src, delay_ms)
        if probe.kind is ProbeKind.TCP_ACK:
            if not policy.responds_echo:
                return None
            return self._respond(router, probe, ResponseKind.TCP_RST,
                                 probe.dst, delay_ms)
        return None

    def _host_delivery(self, router: Router, probe: Probe, ttl: int,
                       delay_ms: float, policy_live: bool) -> Optional[Response]:
        """The probe reached the router hosting its destination prefix."""
        if ttl <= 0:
            return None
        if policy_live:
            # A live host answers echo (and UDP with port unreachable).
            ipid = self._host_ipid.randint(0, 0xFFFF)
            kind = (
                ResponseKind.ECHO_REPLY
                if probe.kind is ProbeKind.ICMP_ECHO
                else ResponseKind.DEST_UNREACH_PORT
            )
            return Response(
                src=probe.dst,
                kind=kind,
                ipid=ipid,
                quoted_dst=probe.dst,
                rtt=self._rtt(delay_ms + 0.5, probe.dst & 0xFFFF),
                truth_router_id=None,
            )
        # Dead address: some edge routers send host-unreachable, most drop.
        if (router.router_id * 2654435761 + probe.dst) % 10 < 3:
            policy = self._policy(router)
            if policy.responds_ttl_expired:
                src = self._expired_source(router, probe, None)
                return self._respond(
                    router, probe, ResponseKind.DEST_UNREACH_NET, src, delay_ms
                )
        return None

    # -- the walk --------------------------------------------------------------

    def send(self, probe: Probe) -> Optional[Response]:
        """Inject ``probe`` at its source VP; return the response or None.

        With a :class:`~repro.net.faults.FaultPlan` attached, the walk is
        subject to injected faults: withdrawn routes eat the probe at the
        start, dark (blacked-out) routers and lossy links eat it along the
        path, and generated replies can be suppressed (ICMP storms) or
        lost on the reverse path.  Without a plan none of these checks
        run — the zero-fault path is a strict no-op.
        """
        faults = self.faults
        response = self._walk(probe, faults)
        if response is not None and faults is not None:
            if (
                response.truth_router_id is not None
                and faults.storm_suppressed(response.truth_router_id, self.now)
            ):
                response = None
            elif faults.reply_lost(self.now):
                response = None
        self.metrics.inc(
            "probe.answered" if response is not None else "probe.unanswered"
        )
        return response

    def _walk(self, probe: Probe,
              faults: Optional[FaultPlan]) -> Optional[Response]:
        vp = self.vps.get(probe.src)
        if vp is None:
            raise ProbeError("probe source %r is not a registered VP" % probe.src)
        self.now += 1.0 / self.pps
        self.probes_sent += 1
        self.metrics.inc("probe.sent")

        if faults is not None and faults.route_withdrawn(probe.dst, self.now):
            return None

        router_id = vp.first_router
        in_addr: Optional[int] = None
        arrived_via_border = False
        ttl = probe.ttl
        hops = 0
        delay_ms = 0.5  # VP access segment

        while hops < _MAX_HOPS:
            hops += 1
            router = self.internet.routers[router_id]
            if faults is not None and faults.router_dark(router_id, self.now):
                return None
            step = self.oracle.step(router_id, probe.dst)

            if step.kind is StepKind.ARRIVE:
                return self._arrival(router, probe, delay_ms)

            ttl -= 1
            if ttl <= 0:
                return self._ttl_expired(router, probe, in_addr, delay_ms)

            policy = self._policy(router)
            if (
                arrived_via_border
                and policy.firewall
                and not (
                    policy.firewall_allow_echo
                    and probe.kind is ProbeKind.ICMP_ECHO
                )
            ):
                # Probes are not allowed deeper into this network.
                if policy.firewall_admin_reply and policy.responds_ttl_expired:
                    src = self._expired_source(router, probe, in_addr)
                    return self._respond(
                        router, probe, ResponseKind.DEST_UNREACH_ADMIN, src,
                        delay_ms
                    )
                return None

            if step.kind is StepKind.HOST:
                live = step.policy is not None and probe.dst in step.policy.live_hosts
                return self._host_delivery(router, probe, ttl, delay_ms, live)

            if step.kind is StepKind.UNREACHABLE:
                return None

            # FORWARD
            if step.link_id is not None:
                if faults is not None and faults.link_lost(
                    step.link_id, self.now
                ):
                    return None
                delay_ms += self._link_delay(step.link_id)
            router_id = step.next_router  # type: ignore[assignment]
            in_addr = step.in_addr
            arrived_via_border = step.crosses_border
        return None

    # -- debugging / validation helpers (truth!) --------------------------------

    def truth_path(self, src_addr: int, dst: int, max_hops: int = _MAX_HOPS):
        """Ground-truth router path for a probe — analysis and tests only."""
        vp = self.vps.get(src_addr)
        if vp is None:
            raise ProbeError("unknown VP")
        path = []
        router_id = vp.first_router
        for _ in range(max_hops):
            path.append(router_id)
            step = self.oracle.step(router_id, dst)
            if step.kind is not StepKind.FORWARD:
                break
            router_id = step.next_router
        return path
