"""Interdomain + intradomain routing over the ground-truth topology.

The oracle answers one question for the forwarding walk: *given this router
and this destination address, what happens next?*  Interdomain routing
follows the standard BGP policy model — valley-free export (Gao-Rexford)
with local preference customer > peer > provider, then shortest AS path,
then lowest next-hop ASN.  Egress selection among multiple border links to
the same next-hop AS is hot-potato: the link whose near-side router is
closest in IGP distance (§6's Level3 observation depends on this).

Selective announcement (``PrefixPolicy.restricted_links``) limits which
border links of the origin export a prefix — the Akamai-like behaviour of
Fig 15/16.

Route state is computed lazily per "routing class" (origin set +
announcement restriction) and per AS, so large scenarios only pay for the
(AS, destination) pairs actually traversed by probes.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..asgraph import ASGraph, Rel
from ..errors import RoutingError
from ..topology.model import Internet, LinkKind, PrefixPolicy
from ..trie import PrefixTrie

ClassKey = Tuple[Tuple[int, ...], Optional[FrozenSet[int]]]


def _class_fingerprint(key: ClassKey) -> int:
    """A deterministic 32-bit fingerprint of a routing class.

    Used to break IGP ties per destination class the way real BGP
    tie-breaks (oldest route / router id) spread prefixes over parallel
    links.  Must be stable across processes, so ``hash()`` is out.
    """
    origins, restricted = key
    value = 2166136261
    for asn in origins:
        value = (value ^ asn) * 16777619 & 0xFFFFFFFF
    if restricted:
        for link_id in sorted(restricted):
            value = (value ^ (link_id + 0x9E3779B9)) * 16777619 & 0xFFFFFFFF
    return value


class StepKind(enum.Enum):
    ARRIVE = "arrive"            # dst is an address on this router
    HOST = "host"                # this router hosts dst's prefix; host is next
    FORWARD = "forward"          # send over a link to next_router
    UNREACHABLE = "unreachable"  # no route


@dataclass
class Step:
    kind: StepKind
    next_router: Optional[int] = None
    link_id: Optional[int] = None
    out_addr: Optional[int] = None   # this router's address on the out link
    in_addr: Optional[int] = None    # next router's address on the link
    crosses_border: bool = False
    policy: Optional[PrefixPolicy] = None


class _ClassRoutes:
    """Lazily-evaluated BGP decision state for one routing class."""

    def __init__(
        self,
        graph: ASGraph,
        origins: Tuple[int, ...],
        restricted: Optional[FrozenSet[int]],
        allowed_first_hop,
    ) -> None:
        self._graph = graph
        self.origins = origins
        self.restricted = restricted
        # asn -> (path length, next-hop asn); next-hop == asn means origin.
        self.dist_c: Dict[int, Tuple[int, int]] = {}
        self.peer: Dict[int, Tuple[int, int]] = {}
        self._sel_memo: Dict[int, Optional[Tuple[int, int, int]]] = {}
        self._build_customer_and_peer(allowed_first_hop)

    def _build_customer_and_peer(self, allowed_first_hop) -> None:
        """Stage A: customer-class routes, BFS upward from the origins
        (provider and sibling edges only).  Stage B: one peer hop off any
        customer route."""
        graph = self._graph
        origin_set = set(self.origins)
        frontier = sorted(asn for asn in origin_set if asn in graph)
        for asn in frontier:
            self.dist_c[asn] = (0, asn)
        level = 0
        while frontier:
            level += 1
            next_frontier: List[int] = []
            for v in frontier:
                for n in sorted(graph.neighbors(v)):
                    rel = graph.relationship(v, n)
                    if rel not in (Rel.PROVIDER, Rel.SIBLING):
                        continue
                    if v in origin_set and not allowed_first_hop(v, n):
                        continue
                    if n not in self.dist_c:
                        self.dist_c[n] = (level, v)
                        next_frontier.append(n)
            frontier = next_frontier
        # Stage B: peers learn customer-class routes.
        for v in sorted(self.dist_c):
            length = self.dist_c[v][0]
            for n in sorted(graph.neighbors(v)):
                if graph.relationship(v, n) is not Rel.PEER:
                    continue
                if v in origin_set and not allowed_first_hop(v, n):
                    continue
                candidate = (length + 1, v)
                if n not in self.peer or candidate < self.peer[n]:
                    self.peer[n] = candidate

    def sel(self, asn: int, _stack: Optional[Set[int]] = None):
        """Selected route at ``asn``: (pref_rank, length, next_as) or None.

        pref_rank 0 = customer route, 1 = peer, 2 = provider/sibling.
        ``next_as == asn`` means this AS originates the prefix.
        """
        if asn in self._sel_memo:
            return self._sel_memo[asn]
        if _stack is None:
            _stack = set()
        if asn in _stack:
            return None  # sibling recursion guard; do not memoize
        _stack.add(asn)
        candidates: List[Tuple[int, int, int]] = []
        cust = self.dist_c.get(asn)
        if cust is not None:
            candidates.append((0, cust[0], cust[1]))
        peer = self.peer.get(asn)
        if peer is not None:
            candidates.append((1, peer[0], peer[1]))
        if not candidates:
            # Provider (and sibling) routes, recursively up the hierarchy.
            graph = self._graph
            best: Optional[Tuple[int, int]] = None
            for n in sorted(graph.neighbors(asn)):
                rel = graph.relationship(asn, n)
                if rel not in (Rel.PROVIDER, Rel.SIBLING):
                    continue
                upstream = self.sel(n, _stack)
                if upstream is None:
                    continue
                option = (upstream[1] + 1, n)
                if best is None or option < best:
                    best = option
            if best is not None:
                candidates.append((2, best[0], best[1]))
        _stack.discard(asn)
        chosen = min(candidates) if candidates else None
        if chosen is not None or not _stack:
            # Only memoize definitive answers (avoid caching results that
            # were suppressed by the recursion guard).
            self._sel_memo[asn] = chosen
        return chosen

    def next_as(self, asn: int) -> Optional[int]:
        chosen = self.sel(asn)
        return chosen[2] if chosen is not None else None


class RoutingOracle:
    """Forwarding decisions over one ground-truth Internet."""

    def __init__(self, internet: Internet) -> None:
        self.internet = internet
        self._announced: PrefixTrie = PrefixTrie()
        for policy in internet.prefix_policies.values():
            if policy.announced:
                self._announced.insert(policy.prefix, policy)
        self._links_between: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self._build_links_between()
        self._classes: Dict[ClassKey, _ClassRoutes] = {}
        self._intra: Dict[int, Dict[int, Dict[int, Tuple[float, int, int]]]] = {}
        self._egress_cache: Dict[Tuple[int, ClassKey], Optional[Tuple[int, int]]] = {}
        # Memoized forwarding decisions.  step() is a pure function of
        # (router, dst) over the static topology — every input it reads
        # (policies, intra tables, class routes, egress choice) is fixed at
        # construction — so the walk of probe N toward a destination pays
        # the route computation once and every later probe through the same
        # (router, dst) pair is a dict hit.  This is the collection hot
        # path: a traceroute re-walks the same prefix of routers once per
        # TTL, and sibling targets in a /24 share almost every hop.
        self._step_memo: Dict[Tuple[int, int], Step] = {}
        self.step_memo_hits = 0

    # -- static structure -----------------------------------------------------

    def _build_links_between(self) -> None:
        for link in self.internet.links.values():
            if link.kind is LinkKind.INTRA:
                continue
            routers = self.internet.routers
            for iface_a in link.interfaces:
                asn_a = routers[iface_a.router_id].asn
                for iface_b in link.interfaces:
                    asn_b = routers[iface_b.router_id].asn
                    if asn_a == asn_b:
                        continue
                    entries = self._links_between.setdefault((asn_a, asn_b), [])
                    entry = (iface_a.router_id, link.link_id)
                    if entry not in entries:
                        entries.append(entry)

    def links_between(self, asn: int, neighbor: int) -> List[Tuple[int, int]]:
        """(near router, link id) pairs for links from asn to neighbor."""
        return list(self._links_between.get((asn, neighbor), ()))

    def _allowed_first_hop(self, restricted: Optional[FrozenSet[int]]):
        if restricted is None:
            return lambda origin, neighbor: True

        def allowed(origin: int, neighbor: int) -> bool:
            return any(
                link_id in restricted
                for _, link_id in self._links_between.get((origin, neighbor), ())
            )

        return allowed

    # -- intra-AS tables --------------------------------------------------------

    def _intra_table(self, asn: int) -> Dict[int, Dict[int, Tuple[float, int, int]]]:
        """All-pairs shortest paths inside one AS.

        Returns src → dst → (distance, next-hop router, link id)."""
        table = self._intra.get(asn)
        if table is not None:
            return table
        routers = self.internet.ases[asn].router_ids
        adjacency: Dict[int, List[Tuple[int, int, float]]] = {r: [] for r in routers}
        for router_id in routers:
            for iface in self.internet.routers[router_id].interfaces:
                link = self.internet.links[iface.link_id]
                if link.kind is not LinkKind.INTRA:
                    continue
                for other in link.interfaces:
                    if other.router_id == router_id:
                        continue
                    if self.internet.routers[other.router_id].asn != asn:
                        continue
                    adjacency[router_id].append(
                        (other.router_id, link.link_id, link.igp_cost)
                    )
        table = {}
        for src in routers:
            dist: Dict[int, Tuple[float, int, int]] = {src: (0.0, src, 0)}
            heap: List[Tuple[float, int, int, int]] = [(0.0, src, src, 0)]
            while heap:
                d, node, first_hop, first_link = heapq.heappop(heap)
                current = dist.get(node)
                if current is not None and (d, first_hop) > (current[0], current[1]):
                    continue
                for neighbor, link_id, cost in adjacency[node]:
                    nd = d + cost
                    hop = neighbor if node == src else first_hop
                    hop_link = link_id if node == src else first_link
                    known = dist.get(neighbor)
                    if known is None or (nd, hop) < (known[0], known[1]):
                        dist[neighbor] = (nd, hop, hop_link)
                        heapq.heappush(heap, (nd, neighbor, hop, hop_link))
            table[src] = dist
        self._intra[asn] = table
        return table

    def igp_distance(self, src_router: int, dst_router: int) -> Optional[float]:
        asn = self.internet.routers[src_router].asn
        if self.internet.routers[dst_router].asn != asn:
            raise RoutingError("igp distance across ASes")
        entry = self._intra_table(asn).get(src_router, {}).get(dst_router)
        return entry[0] if entry is not None else None

    def _intra_step(self, router_id: int, target_router: int) -> Optional[Step]:
        """One hop along the intra-AS shortest path toward target_router."""
        asn = self.internet.routers[router_id].asn
        entry = self._intra_table(asn).get(router_id, {}).get(target_router)
        if entry is None:
            return None
        _, next_router, link_id = entry
        link = self.internet.links[link_id]
        return Step(
            StepKind.FORWARD,
            next_router=next_router,
            link_id=link_id,
            out_addr=link.iface_of(router_id).addr,
            in_addr=link.iface_of(next_router).addr,
            crosses_border=False,
        )

    # -- routing classes ---------------------------------------------------------

    def class_key(self, policy: PrefixPolicy) -> ClassKey:
        return (policy.origins, policy.restricted_links)

    def class_routes(self, key: ClassKey) -> _ClassRoutes:
        routes = self._classes.get(key)
        if routes is None:
            routes = _ClassRoutes(
                self.internet.graph,
                key[0],
                key[1],
                self._allowed_first_hop(key[1]),
            )
            self._classes[key] = routes
        return routes

    def lookup_policy(self, dst: int) -> Optional[PrefixPolicy]:
        return self._announced.lookup_value(dst)

    def next_as_of(self, asn: int, dst: int) -> Optional[int]:
        """The next-hop AS from ``asn`` toward ``dst`` (asn itself if it
        originates the covering prefix).  Used for virtual-router source
        selection and by tests."""
        policy = self.lookup_policy(dst)
        if policy is None:
            return None
        return self.class_routes(self.class_key(policy)).next_as(asn)

    # -- egress selection -----------------------------------------------------------

    def _egress(
        self, router_id: int, next_as: int, key: ClassKey
    ) -> Optional[Tuple[int, int]]:
        """Hot-potato egress: (near router, link id) toward next_as."""
        cache_key = (router_id, key)
        if cache_key in self._egress_cache:
            return self._egress_cache[cache_key]
        asn = self.internet.routers[router_id].asn
        origins, restricted = key
        candidates = self._links_between.get((asn, next_as), [])
        if restricted is not None and next_as in origins:
            candidates = [
                (router, link_id)
                for router, link_id in candidates
                if link_id in restricted
            ]
        table = self._intra_table(asn).get(router_id, {})
        options: List[Tuple[float, int, int]] = []
        for near_router, link_id in candidates:
            if near_router == router_id:
                distance = 0.0
            else:
                entry = table.get(near_router)
                if entry is None:
                    continue
                distance = entry[0]
            options.append((distance, near_router, link_id))
        if not options:
            self._egress_cache[cache_key] = None
            return None
        options.sort()
        # Hot potato with realistic tie-breaking: candidates within a small
        # IGP epsilon of the minimum are interchangeable to the IGP, and the
        # BGP tie-break (router id / oldest route) is effectively arbitrary
        # per prefix — model it as a stable per-class hash.  This is what
        # spreads destination prefixes across parallel links at one PoP
        # (and why Level3-style peers need many VPs to map, §6).
        minimum = options[0][0]
        near_equal = sorted(
            (opt for opt in options if opt[0] <= minimum + 0.25),
            key=lambda opt: (opt[1], opt[2]),
        )
        # The fingerprint is class-wide (not router-dependent) so adjacent
        # routers agree and packets cannot oscillate between tied egresses;
        # it must also be process-independent (unlike hash()) so runs are
        # reproducible.
        index = _class_fingerprint(key) % len(near_equal)
        chosen = near_equal[index]
        result = (chosen[1], chosen[2])
        self._egress_cache[cache_key] = result
        return result

    def _cross_link(self, router_id: int, link_id: int, to_asn: Optional[int],
                    to_router: Optional[int] = None) -> Optional[Step]:
        """Cross an interdomain or IXP link to the far side."""
        link = self.internet.links[link_id]
        routers = self.internet.routers
        far = None
        for iface in link.interfaces:
            if iface.router_id == router_id:
                continue
            if to_router is not None:
                if iface.router_id == to_router:
                    far = iface
                    break
            elif to_asn is not None and routers[iface.router_id].asn == to_asn:
                if far is None or iface.router_id < far.router_id:
                    far = iface
        if far is None:
            return None
        return Step(
            StepKind.FORWARD,
            next_router=far.router_id,
            link_id=link_id,
            out_addr=link.iface_of(router_id).addr,
            in_addr=far.addr,
            crosses_border=True,
        )

    # -- the main decision -------------------------------------------------------------

    def step(self, router_id: int, dst: int) -> Step:
        """Forwarding decision for a packet at ``router_id`` headed to
        ``dst``.  Memoized: decisions depend only on static topology, so
        repeated walks (every probe after the first toward a block) are
        dict lookups."""
        memo_key = (router_id, dst)
        cached = self._step_memo.get(memo_key)
        if cached is not None:
            self.step_memo_hits += 1
            return cached
        decision = self._step_uncached(router_id, dst)
        self._step_memo[memo_key] = decision
        return decision

    def _step_uncached(self, router_id: int, dst: int) -> Step:
        internet = self.internet
        router = internet.routers[router_id]

        # 1. Destined to an address on this router.
        iface = internet.addr_to_iface.get(dst)
        if iface is not None and iface.router_id == router_id:
            return Step(StepKind.ARRIVE)

        # 2. Destined to infrastructure we can route to directly: the owner
        #    router is in our AS, or sits across a link our AS touches.
        if iface is not None:
            owner = internet.routers[iface.router_id]
            if owner.asn == router.asn:
                step = self._intra_step(router_id, owner.router_id)
                if step is not None:
                    return step
            else:
                link = internet.links[iface.link_id]
                near_ids = [
                    i.router_id
                    for i in link.interfaces
                    if internet.routers[i.router_id].asn == router.asn
                ]
                if near_ids:
                    near = min(near_ids)
                    if near == router_id:
                        step = self._cross_link(
                            router_id, link.link_id, None, to_router=owner.router_id
                        )
                        if step is not None:
                            return step
                    else:
                        step = self._intra_step(router_id, near)
                        if step is not None:
                            return step

        # 3. Normal prefix routing.
        policy = self.lookup_policy(dst)
        if policy is None:
            return Step(StepKind.UNREACHABLE)
        key = self.class_key(policy)
        routes = self.class_routes(key)
        next_as = routes.next_as(router.asn)
        if next_as is None:
            return Step(StepKind.UNREACHABLE)
        if next_as == router.asn:
            host_router = policy.host_router.get(router.asn)
            if host_router is None or host_router == router_id:
                return Step(StepKind.HOST, policy=policy)
            step = self._intra_step(router_id, host_router)
            return step if step is not None else Step(StepKind.UNREACHABLE)
        egress = self._egress(router_id, next_as, key)
        if egress is None:
            return Step(StepKind.UNREACHABLE)
        near_router, link_id = egress
        if near_router == router_id:
            step = self._cross_link(router_id, link_id, next_as)
            return step if step is not None else Step(StepKind.UNREACHABLE)
        step = self._intra_step(router_id, near_router)
        return step if step is not None else Step(StepKind.UNREACHABLE)
