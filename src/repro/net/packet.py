"""Probe and response packet models.

Probes carry a ``flow_id`` because the collection stage uses Paris
traceroute (§5.3): keeping the flow identifier constant within a trace makes
load-balanced routers forward every probe of the trace the same way, which
the simulator honours when breaking ECMP ties.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class ProbeKind(enum.Enum):
    ICMP_ECHO = "icmp-echo"
    UDP = "udp"          # high-port UDP, elicits port unreachable
    TCP_ACK = "tcp-ack"  # elicits RST (modelled as a generic response)


class ResponseKind(enum.Enum):
    TTL_EXPIRED = "ttl-expired"
    ECHO_REPLY = "echo-reply"
    DEST_UNREACH_PORT = "unreach-port"
    DEST_UNREACH_ADMIN = "unreach-admin"
    DEST_UNREACH_NET = "unreach-net"
    TCP_RST = "tcp-rst"


@dataclass(frozen=True)
class Probe:
    """A single probe packet injected at a vantage point."""

    src: int
    dst: int
    ttl: int
    kind: ProbeKind = ProbeKind.ICMP_ECHO
    flow_id: int = 0


@dataclass(frozen=True)
class Response:
    """What came back (if anything).

    ``src`` is the source address of the response packet — the only
    addressing information a real prober gets.  ``ipid`` is the IP-ID of the
    response, the raw material of Ally/MIDAR alias resolution.

    ``truth_router_id`` is ground truth carried for validation and debugging
    only; measurement and inference code must never read it.
    """

    src: Optional[int]
    kind: ResponseKind
    ipid: int
    quoted_dst: int
    rtt: float
    truth_router_id: Optional[int] = None
