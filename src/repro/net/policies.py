"""Router response policies.

Each ground-truth router carries one :class:`RouterPolicy` describing how it
answers (or refuses to answer) probes.  The policy mix across a network is
what makes border inference hard; :mod:`repro.topology.challenges` assigns
policies so that every challenge class from §4 of the paper actually occurs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from .ipid import IPIDModel


class SourceSel(enum.Enum):
    """Source-address selection for ICMP time-exceeded messages."""

    INGRESS = "ingress"            # interface the probe arrived on (common)
    REPLY_EGRESS = "reply-egress"  # interface that transmits the reply
                                   # (RFC 1812 advice — third-party addresses)


@dataclass
class RouterPolicy:
    """How a router responds to probes."""

    responds_ttl_expired: bool = True
    responds_echo: bool = True
    responds_udp: bool = True          # port unreachable for UDP probes
    source_sel: SourceSel = SourceSel.INGRESS
    # Virtual-router behaviour (§4 challenge 4): when the packet's next-hop
    # AS has an entry here, the time-exceeded source is that address.
    vrouter: Dict[int, int] = field(default_factory=dict)
    # Mercator behaviour: when True, port-unreachable responses are sourced
    # from the interface transmitting the reply (so probing two addresses of
    # the router yields one common source — alias-resolvable).  When False,
    # the router answers from the probed address and Mercator learns nothing.
    udp_reply_egress: bool = True
    # Border firewall (§4 challenge 3): drop probes that try to transit this
    # router deeper into its AS; optionally send admin-prohibited instead of
    # dropping silently.
    firewall: bool = False
    firewall_admin_reply: bool = False
    # "Permitted flow" exception: ICMP echo passes through the firewall to
    # internal hosts (produces the §5.4.8 echo-reply-only neighbor pattern).
    firewall_allow_echo: bool = False
    # ICMP generation rate limit in responses/second (None = unlimited).
    rate_limit_pps: Optional[float] = None
    ipid_model: IPIDModel = IPIDModel.SHARED_COUNTER
    ipid_velocity: float = 50.0

    def is_fully_silent(self) -> bool:
        return not (self.responds_ttl_expired or self.responds_echo or self.responds_udp)


class RateLimiter:
    """Token bucket for ICMP generation."""

    def __init__(self, pps: float, burst: float = 5.0) -> None:
        self.pps = pps
        self.burst = burst
        self._tokens = burst
        self._last = 0.0

    def allow(self, now: float) -> bool:
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.pps)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False
