"""Link congestion model.

The motivating application of bdrmap (§2) is measuring *interdomain
congestion*: when peering disputes stall capacity upgrades, the border
link's queue fills during the daily busy period, adding latency that
time-series probing of the link's two ends can detect (Luckie et al.,
IMC 2014).

This module gives simulated links a diurnal queueing-delay profile.  A
congested link adds tens of milliseconds during its busy window; an
uncongested link adds (almost) nothing.  The forwarding walk accumulates
these delays into response RTTs, so the TSLP monitor in
:mod:`repro.congestion` sees exactly the signal the real system sees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

DAY = 86400.0


@dataclass(frozen=True)
class CongestionProfile:
    """A diurnal queueing profile for one link.

    ``busy_start``/``busy_end`` are seconds-of-day; during the busy window
    the queueing delay ramps up to ``peak_ms`` following a half-sine.
    ``base_ms`` is always present (light utilization).
    """

    base_ms: float = 0.2
    peak_ms: float = 30.0
    busy_start: float = 16.0 * 3600
    busy_end: float = 23.0 * 3600

    def delay_ms(self, now: float) -> float:
        time_of_day = now % DAY
        if not self.busy_start <= time_of_day < self.busy_end:
            return self.base_ms
        span = self.busy_end - self.busy_start
        phase = (time_of_day - self.busy_start) / span
        return self.base_ms + self.peak_ms * math.sin(math.pi * phase)


class CongestionSchedule:
    """Per-link congestion profiles (links without one are uncongested)."""

    def __init__(self) -> None:
        self._profiles: Dict[int, CongestionProfile] = {}

    def congest(self, link_id: int, profile: Optional[CongestionProfile] = None) -> None:
        self._profiles[link_id] = profile or CongestionProfile()

    def clear(self, link_id: int) -> None:
        self._profiles.pop(link_id, None)

    def profile(self, link_id: int) -> Optional[CongestionProfile]:
        return self._profiles.get(link_id)

    def delay_ms(self, link_id: int, now: float) -> float:
        profile = self._profiles.get(link_id)
        return profile.delay_ms(now) if profile is not None else 0.0

    def congested_links(self):
        return sorted(self._profiles)

    def __len__(self) -> int:
        return len(self._profiles)
