"""IP-ID counter models.

Ally (§5.3) infers two addresses are aliases when their responses draw
IP-ID values from one central counter; MIDAR's monotonic bounds test demands
strictly increasing samples.  Routers differ: some use a single central
counter (alias-resolvable), some keep one counter per interface, some
randomize, and some always send zero.  The counter also advances with the
router's *other* traffic, modelled as a velocity in IDs per second of
virtual time.
"""

from __future__ import annotations

import enum
import random
from typing import Dict, Optional


class IPIDModel(enum.Enum):
    SHARED_COUNTER = "shared"       # one counter per router → Ally works
    PER_INTERFACE = "per-interface" # counter per source address → Ally fails
    RANDOM = "random"               # pseudo-random IDs
    ZERO = "zero"                   # always zero (common for ICMP on some OSes)


class IPIDState:
    """Per-router IP-ID generator."""

    def __init__(
        self,
        model: IPIDModel,
        velocity: float,
        rng: random.Random,
        base: Optional[int] = None,
    ) -> None:
        self.model = model
        self.velocity = velocity
        self._rng = rng
        self._base = base if base is not None else rng.randint(0, 0xFFFF)
        self._sent = 0
        self._per_iface: Dict[int, int] = {}
        self._per_iface_sent: Dict[int, int] = {}

    def next(self, now: float, src_addr: Optional[int]) -> int:
        """The IP-ID of a response sent at virtual time ``now`` from
        ``src_addr``."""
        if self.model is IPIDModel.ZERO:
            return 0
        if self.model is IPIDModel.RANDOM:
            return self._rng.randint(0, 0xFFFF)
        drift = int(self.velocity * now)
        if self.model is IPIDModel.SHARED_COUNTER:
            self._sent += 1
            return (self._base + drift + self._sent) & 0xFFFF
        # PER_INTERFACE
        key = src_addr if src_addr is not None else -1
        if key not in self._per_iface:
            self._per_iface[key] = self._rng.randint(0, 0xFFFF)
            self._per_iface_sent[key] = 0
        self._per_iface_sent[key] += 1
        return (self._per_iface[key] + drift + self._per_iface_sent[key]) & 0xFFFF
