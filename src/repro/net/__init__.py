"""Packet-level forwarding simulator.

Walks probe packets hop-by-hop over the ground-truth router topology,
computing BGP-style interdomain routes (valley-free with customer > peer >
provider preference and hot-potato egress selection) and reproducing the
ICMP response idiosyncrasies bdrmap must survive: ingress vs reply-egress
source selection, third-party addresses, firewalls, silent routers, virtual
routers, echo-only responders, rate limiting, and the IPID counter behaviour
that alias resolution depends on.
"""

from .packet import Probe, ProbeKind, Response, ResponseKind
from .ipid import IPIDModel, IPIDState
from .policies import RouterPolicy, SourceSel
from .routing import RoutingOracle
from .faults import (
    FAULT_PROFILES,
    ChannelFaultPolicy,
    FaultConfig,
    FaultPlan,
    FaultStats,
    GilbertElliott,
    make_fault_plan,
)
from .network import Network, VantagePoint

__all__ = [
    "Probe",
    "ProbeKind",
    "Response",
    "ResponseKind",
    "IPIDModel",
    "IPIDState",
    "RouterPolicy",
    "SourceSel",
    "RoutingOracle",
    "Network",
    "VantagePoint",
    "FaultPlan",
    "FaultConfig",
    "FaultStats",
    "GilbertElliott",
    "ChannelFaultPolicy",
    "FAULT_PROFILES",
    "make_fault_plan",
]
