"""Fault injection for the simulated Internet (and the remote channel).

The real bdrmap runs on networks that lose probes, rate-limit ICMP in
bursts, reboot routers mid-run, withdraw routes, and stall scamper control
connections.  The simulator answers every probe deterministically, so none
of the measurement stack's tolerance to noise is exercised unless faults
are injected deliberately.  This module provides that injection, fully
deterministic under a seed:

* :class:`FaultPlan` — attached to a :class:`~repro.net.network.Network`,
  it drops probe packets per link (independent Bernoulli or Gilbert–Elliott
  bursty loss), silences routers during transient blackout windows,
  suppresses ICMP generation during rate-limit storms, and withdraws routes
  to destination prefixes during flap windows.
* :class:`ChannelFaultPolicy` — attached to a remote
  :class:`~repro.remote.protocol.Channel`, it drops, delays, and garbles
  replies and severs the control connection.

Determinism: blackout, storm, and flap windows are pure functions of
(seed, entity, virtual time) via an integer hash, so they do not depend on
probe order; per-packet loss draws use ``random.Random`` streams derived
from the seed, so an identical probe sequence sees identical faults.  A
``Network`` with ``faults=None`` (the default) performs no draws at all —
the zero-fault path is a strict no-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from ..rng import make_rng

__all__ = [
    "GilbertElliott",
    "FaultConfig",
    "FaultStats",
    "FaultPlan",
    "ChannelFaultPolicy",
    "FAULT_PROFILES",
    "CHANNEL_FAULT_PROFILES",
    "make_fault_plan",
    "make_channel_faults",
]


# ---------------------------------------------------------------- hashing

_MIX = 0x9E3779B97F4A7C15


def _hash01(seed: int, *values: int) -> float:
    """A stable hash of integers onto [0, 1) — cheap enough per packet."""
    state = (seed * _MIX) & 0xFFFFFFFFFFFFFFFF
    for value in values:
        state ^= (value & 0xFFFFFFFFFFFFFFFF) * _MIX
        state &= 0xFFFFFFFFFFFFFFFF
        state ^= state >> 29
        state = (state * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        state ^= state >> 32
    return state / 2.0**64


# ---------------------------------------------------------------- loss models


@dataclass(frozen=True)
class GilbertElliott:
    """Bursty loss: a two-state (good/bad) chain per link.

    State holding times are exponential with the given means (seconds of
    virtual time); each packet crossing the link is lost with the loss
    probability of the link's current state.  The classic model for links
    whose loss arrives in bursts (queue overflows, flapping optics) rather
    than as independent coin flips.
    """

    good_mean_s: float = 60.0   # mean sojourn in the good state
    bad_mean_s: float = 2.0     # mean sojourn in the bad state
    loss_good: float = 0.0      # per-packet loss probability while good
    loss_bad: float = 0.6       # per-packet loss probability while bad


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of a :class:`FaultPlan`.  All rates default to zero: a
    default-constructed config injects nothing."""

    # Independent per-link-crossing packet loss probability.
    loss_rate: float = 0.0
    # Bursty loss (applied in addition to the independent loss).
    burst: Optional[GilbertElliott] = None
    # Loss applied to the reply on its way back to the VP (the forward
    # walk already applies per-link loss; this models the reverse path).
    reply_loss_rate: float = 0.0
    # Transient router blackouts: each router goes dark (drops transit and
    # generates nothing) with this probability per blackout period, for
    # blackout_duration_s at a hash-derived phase.
    blackout_rate: float = 0.0
    blackout_period_s: float = 900.0
    blackout_duration_s: float = 30.0
    # ICMP rate-limit storms: recurring global windows during which an
    # affected subset of routers suppresses ICMP generation.
    storm_rate: float = 0.0            # fraction of routers hit per storm
    storm_period_s: float = 600.0
    storm_duration_s: float = 20.0
    storm_drop_prob: float = 0.9       # suppression prob. while stormed
    # Mid-run route withdrawals/flaps: per flap period, each /24 is
    # withdrawn with this probability for flap_duration_s (probes toward
    # it are dropped — the route is gone while the path reconverges).
    flap_rate: float = 0.0
    flap_period_s: float = 1200.0
    flap_duration_s: float = 45.0

    def is_noop(self) -> bool:
        return (
            self.loss_rate <= 0.0
            and self.burst is None
            and self.reply_loss_rate <= 0.0
            and self.blackout_rate <= 0.0
            and self.storm_rate <= 0.0
            and self.flap_rate <= 0.0
        )


#: Counter names, in the order the old dataclass declared them (the
#: serialized ``as_dict`` key order is part of the report format).
_FAULT_COUNTERS = (
    "link_loss",         # independent forward-path drops
    "burst_loss",        # Gilbert–Elliott forward-path drops
    "reply_loss",        # reverse-path reply drops
    "blackout_drops",    # packets eaten by dark routers
    "storm_suppressed",  # ICMP replies suppressed by storms
    "flap_drops",        # probes dropped by withdrawn routes
)


class FaultStats:
    """What a plan actually injected, for the run report.

    Counts live in a :class:`~repro.obs.metrics.MetricsRegistry` under
    ``fault.<name>`` — a private registry by default, or the run's
    shared one after :meth:`bind` — so the run report and ``repro
    metrics`` read the same slots instead of keeping duplicates.
    Attribute reads (``stats.link_loss``) keep working.
    """

    PREFIX = "fault."

    def __init__(self) -> None:
        self._registry = MetricsRegistry()

    def bind(self, registry: MetricsRegistry) -> None:
        """Repoint this view at a shared registry, carrying over any
        counts already accumulated privately."""
        if registry is self._registry or not registry.enabled:
            return
        for name in _FAULT_COUNTERS:
            count = self._registry.counter(self.PREFIX + name)
            if count:
                registry.inc(self.PREFIX + name, count)
        self._registry = registry

    def bump(self, name: str) -> None:
        self._registry.inc(self.PREFIX + name)

    def __getattr__(self, name: str) -> int:
        if name in _FAULT_COUNTERS:
            return self._registry.counter(self.PREFIX + name)
        raise AttributeError(name)

    @property
    def total(self) -> int:
        return sum(
            self._registry.counter(self.PREFIX + name)
            for name in _FAULT_COUNTERS
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            name: self._registry.counter(self.PREFIX + name)
            for name in _FAULT_COUNTERS
        }

    def summary(self) -> str:
        parts = [
            "%s=%d" % (name, count)
            for name, count in self.as_dict().items()
            if count
        ]
        return "faults injected: " + (", ".join(parts) if parts else "none")


class FaultPlan:
    """Seed-derived fault injection for one :class:`Network`.

    The plan is consulted by :meth:`Network.send` at three points: when a
    probe is about to cross a link (forward loss), when it sits at a router
    (blackouts), and when a response has been generated (reply loss and
    storm suppression).  Route withdrawal is checked once per probe.
    """

    def __init__(self, config: Optional[FaultConfig] = None,
                 seed: int = 0) -> None:
        self.config = config or FaultConfig()
        self.seed = seed
        self.stats = FaultStats()
        self._loss_rng = make_rng(seed, "faults", "loss")
        self._reply_rng = make_rng(seed, "faults", "reply")
        self._storm_rng = make_rng(seed, "faults", "storm")
        self._burst_rng = make_rng(seed, "faults", "burst")
        # Per-link Gilbert–Elliott chain: (in_bad_state, state_expires_at).
        self._ge_state: Dict[int, Tuple[bool, float]] = {}

    def reset(self) -> None:
        """Rewind to just-constructed state: fresh stats, fresh draw
        streams, and empty burst chains.  A :meth:`Network.reset` replays
        the plan identically because every window is a pure function of
        (seed, entity, time) and the per-packet streams restart."""
        self.stats = FaultStats()
        self._loss_rng = make_rng(self.seed, "faults", "loss")
        self._reply_rng = make_rng(self.seed, "faults", "reply")
        self._storm_rng = make_rng(self.seed, "faults", "storm")
        self._burst_rng = make_rng(self.seed, "faults", "burst")
        self._ge_state = {}

    # -- forward path ------------------------------------------------------

    def link_lost(self, link_id: int, now: float) -> bool:
        """Is a packet crossing ``link_id`` at ``now`` lost?"""
        cfg = self.config
        if cfg.loss_rate > 0.0 and self._loss_rng.random() < cfg.loss_rate:
            self.stats.bump("link_loss")
            return True
        if cfg.burst is not None and self._burst_lost(link_id, now):
            self.stats.bump("burst_loss")
            return True
        return False

    def _burst_lost(self, link_id: int, now: float) -> bool:
        ge = self.config.burst
        rng = self._burst_rng
        state = self._ge_state.get(link_id)
        if state is None:
            # Phase in: start good, with a hash-derived partial sojourn so
            # links do not all flip in lockstep.
            offset = _hash01(self.seed, 0x6C696E6B, link_id)
            state = (False, now + ge.good_mean_s * (0.1 + offset))
            self._ge_state[link_id] = state
        bad, until = state
        while now >= until:
            bad = not bad
            mean = ge.bad_mean_s if bad else ge.good_mean_s
            until += rng.expovariate(1.0 / mean) if mean > 0 else 0.0
            if mean <= 0:  # degenerate config: never dwell
                break
        self._ge_state[link_id] = (bad, until)
        loss = ge.loss_bad if bad else ge.loss_good
        return loss > 0.0 and rng.random() < loss

    # -- routers -----------------------------------------------------------

    def router_dark(self, router_id: int, now: float) -> bool:
        """Is ``router_id`` inside a transient blackout window at ``now``?

        A dark router forwards nothing and answers nothing — the simulated
        equivalent of a reboot or control-plane crash.  Windows are a pure
        function of (seed, router, period index), so the answer does not
        depend on how often it is asked.
        """
        cfg = self.config
        if cfg.blackout_rate <= 0.0:
            return False
        period = max(cfg.blackout_period_s, 1e-9)
        epoch = int(now / period)
        if _hash01(self.seed, 0xB1AC, router_id, epoch) >= cfg.blackout_rate:
            return False
        phase = _hash01(self.seed, 0xFA5E, router_id, epoch)
        start = (epoch + phase * 0.5) * period
        if start <= now < start + cfg.blackout_duration_s:
            self.stats.bump("blackout_drops")
            return True
        return False

    def storm_suppressed(self, router_id: int, now: float) -> bool:
        """Is an ICMP reply from ``router_id`` suppressed by a rate-limit
        storm at ``now``?"""
        cfg = self.config
        if cfg.storm_rate <= 0.0:
            return False
        period = max(cfg.storm_period_s, 1e-9)
        epoch = int(now / period)
        in_window = (now - epoch * period) < cfg.storm_duration_s
        if not in_window:
            return False
        if _hash01(self.seed, 0x5702, router_id, epoch) >= cfg.storm_rate:
            return False
        if self._storm_rng.random() < cfg.storm_drop_prob:
            self.stats.bump("storm_suppressed")
            return True
        return False

    # -- routes ------------------------------------------------------------

    def route_withdrawn(self, dst: int, now: float) -> bool:
        """Is the route toward ``dst``'s /24 withdrawn (flapping) at
        ``now``?  Probes toward it vanish while BGP reconverges."""
        cfg = self.config
        if cfg.flap_rate <= 0.0:
            return False
        period = max(cfg.flap_period_s, 1e-9)
        epoch = int(now / period)
        prefix = dst >> 8
        if _hash01(self.seed, 0xF1A9, prefix, epoch) >= cfg.flap_rate:
            return False
        phase = _hash01(self.seed, 0x70FF, prefix, epoch)
        start = (epoch + phase * 0.5) * period
        if start <= now < start + cfg.flap_duration_s:
            self.stats.bump("flap_drops")
            return True
        return False

    # -- reverse path ------------------------------------------------------

    def reply_lost(self, now: float) -> bool:
        """Is a generated reply lost on its way back to the VP?"""
        cfg = self.config
        if cfg.reply_loss_rate > 0.0 and (
            self._reply_rng.random() < cfg.reply_loss_rate
        ):
            self.stats.bump("reply_loss")
            return True
        return False


# ---------------------------------------------------------------- channel faults


@dataclass
class ChannelFaultPolicy:
    """Faults for the controller↔prober control connection (§5.8).

    Consulted once per :meth:`Channel.call` round trip; at most one fault
    fires per attempt.  ``drop`` loses the reply (the caller times out),
    ``garble`` corrupts the reply bytes (decode fails), ``sever`` kills the
    connection (the caller must reconnect), ``delay`` stalls the reply by
    ``delay_seconds`` of virtual time but delivers it.
    """

    drop_rate: float = 0.0
    garble_rate: float = 0.0
    sever_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed, "faults", "channel")

    def next_fault(self) -> Optional[str]:
        """The fault (if any) afflicting the next round trip."""
        draw = self._rng.random()
        for name, rate in (
            ("drop", self.drop_rate),
            ("garble", self.garble_rate),
            ("sever", self.sever_rate),
            ("delay", self.delay_rate),
        ):
            if draw < rate:
                return name
            draw -= rate
        return None

    def garble(self, data: bytes) -> bytes:
        """Deterministically corrupt a wire message."""
        if not data:
            return b"\xff"
        index = self._rng.randrange(len(data))
        # Truncate or flip — both must defeat the JSON decoder.
        if self._rng.random() < 0.5:
            return data[: max(1, index)]
        corrupted = bytearray(data)
        corrupted[index] ^= 0xFF
        return bytes(corrupted)


# ---------------------------------------------------------------- profiles

# Named presets for the CLI (`run --fault-profile`) and the chaos suite.
FAULT_PROFILES: Dict[str, Optional[FaultConfig]] = {
    "clean": None,
    "light": FaultConfig(loss_rate=0.01),
    "moderate": FaultConfig(
        loss_rate=0.02,
        burst=GilbertElliott(good_mean_s=120.0, bad_mean_s=3.0, loss_bad=0.5),
        reply_loss_rate=0.01,
        storm_rate=0.2,
    ),
    "heavy": FaultConfig(
        loss_rate=0.05,
        burst=GilbertElliott(good_mean_s=60.0, bad_mean_s=5.0, loss_bad=0.7),
        reply_loss_rate=0.03,
        blackout_rate=0.05,
        storm_rate=0.4,
        flap_rate=0.02,
    ),
}


def make_fault_plan(profile: str, seed: int = 0) -> Optional[FaultPlan]:
    """Build the named fault plan (``None`` for the clean profile)."""
    try:
        config = FAULT_PROFILES[profile]
    except KeyError:
        raise ValueError(
            "unknown fault profile %r (known: %s)"
            % (profile, ", ".join(sorted(FAULT_PROFILES)))
        ) from None
    return None if config is None else FaultPlan(config, seed=seed)


# Named channel-fault presets (rates only; the consumer derives one
# seeded policy per channel).  Used by the shard-kill chaos harness and
# `repro chaos --shards --channel-profile`.
CHANNEL_FAULT_PROFILES: Dict[str, Dict[str, float]] = {
    "clean": {},
    "flaky": {"drop_rate": 0.02, "garble_rate": 0.01},
    "lossy": {"drop_rate": 0.05, "garble_rate": 0.02, "sever_rate": 0.01},
    "hostile": {
        "drop_rate": 0.08,
        "garble_rate": 0.05,
        "sever_rate": 0.03,
        "delay_rate": 0.05,
        "delay_seconds": 2.0,
    },
}


def make_channel_faults(
    profile: str, seed: int = 0
) -> Optional[ChannelFaultPolicy]:
    """Build the named channel fault policy (``None`` when clean)."""
    try:
        rates = CHANNEL_FAULT_PROFILES[profile]
    except KeyError:
        raise ValueError(
            "unknown channel fault profile %r (known: %s)"
            % (profile, ", ".join(sorted(CHANNEL_FAULT_PROFILES)))
        ) from None
    if not rates:
        return None
    return ChannelFaultPolicy(seed=seed, **rates)
