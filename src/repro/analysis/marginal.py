"""Figure 15: marginal utility of additional VPs.

For selected neighbor networks, how many distinct router-level
interconnections are discovered as VPs are added?  The paper's extremes: a
selective-announcing CDN (Akamai) is fully visible from one VP, while a
hot-potato transit peer (Level3) needed 17 geographically diverse VPs to
reveal all 45 links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..core.report import BdrmapResult
from ..topology.model import Internet
from .linkid import truth_link_ids


@dataclass
class MarginalReport:
    # neighbor AS -> cumulative distinct links after k VPs (k = 1..N)
    curves: Dict[int, List[int]] = field(default_factory=dict)
    # neighbor AS -> per-VP discovered link identity sets
    per_vp: Dict[int, List[Set[Tuple]]] = field(default_factory=dict)

    def vps_to_full_coverage(self, neighbor_as: int) -> int:
        """VPs needed (in deployment order) to see every link ever seen."""
        curve = self.curves.get(neighbor_as, [])
        if not curve:
            return 0
        total = curve[-1]
        for index, value in enumerate(curve, start=1):
            if value == total:
                return index
        return len(curve)

    def total_links(self, neighbor_as: int) -> int:
        curve = self.curves.get(neighbor_as, [])
        return curve[-1] if curve else 0

    def single_vp_fraction(self, neighbor_as: int) -> float:
        curve = self.curves.get(neighbor_as, [])
        if not curve or not curve[-1]:
            return 0.0
        return curve[0] / curve[-1]

    def summary(self) -> str:
        lines = ["marginal utility of VPs:"]
        for asn in sorted(self.curves):
            lines.append(
                "  AS%-6d links=%d, first VP sees %.0f%%, full coverage at %d VPs"
                % (
                    asn,
                    self.total_links(asn),
                    100 * self.single_vp_fraction(asn),
                    self.vps_to_full_coverage(asn),
                )
            )
        return "\n".join(lines)


def marginal_utility(
    results: Sequence[BdrmapResult],
    internet: Internet,
    neighbor_ases: Sequence[int],
) -> MarginalReport:
    """Cumulative link-discovery curves, VPs in deployment order."""
    report = MarginalReport()
    for neighbor_as in neighbor_ases:
        per_vp: List[Set[Tuple]] = []
        for result in results:
            discovered: Set[Tuple] = set()
            for link in result.links_with(neighbor_as):
                discovered.update(truth_link_ids(result, internet, link))
            per_vp.append(discovered)
        cumulative: List[int] = []
        union: Set[Tuple] = set()
        for discovered in per_vp:
            union |= discovered
            cumulative.append(len(union))
        report.per_vp[neighbor_as] = per_vp
        report.curves[neighbor_as] = cumulative
    return report
