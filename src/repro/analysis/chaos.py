"""Chaos harness: bdrmap under escalating fault injection.

Runs the full pipeline over the same scenario at increasing packet-loss
levels (clean, then e.g. 1/5/10%) with retry/backoff probing enabled, and
scores each run against ground truth.  The point is the robustness
contract: under loss the pipeline must *degrade* — fewer links, slightly
lower accuracy, nonzero retry and degradation counters — rather than
crash or collapse.  :meth:`ChaosReport.degrades_gracefully` encodes that
check for tests and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.bdrmap import Bdrmap, BdrmapConfig, build_data_bundle
from ..core.collection import CollectionConfig
from ..net.faults import FaultConfig, FaultPlan, GilbertElliott
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..obs.trace import NULL_TRACER
from ..probing.retry import RetryPolicy
from .validation import validate_result


def _registry_retries(registry: MetricsRegistry) -> int:
    """Total probe retries recorded so far under any ``retry.*`` prefix."""
    return sum(
        value
        for name, value in registry.counters_with_prefix("retry.").items()
        if name.endswith(".retries")
    )


@dataclass
class ChaosRun:
    """One pipeline run at one fault level."""

    label: str
    loss_rate: float
    completed: bool
    accuracy: float = 0.0
    correct_links: int = 0
    total_links: int = 0
    probes_used: int = 0
    retries: int = 0
    faults_injected: int = 0
    error: Optional[str] = None

    def line(self) -> str:
        if not self.completed:
            return "  %-8s CRASHED: %s" % (self.label, self.error)
        return (
            "  %-8s accuracy=%5.1f%% (%d/%d links)  probes=%-6d "
            "retries=%-5d faults=%d"
            % (self.label, 100.0 * self.accuracy, self.correct_links,
               self.total_links, self.probes_used, self.retries,
               self.faults_injected)
        )


@dataclass
class ChaosReport:
    """Accuracy-vs-loss curve for one scenario."""

    scenario_name: str
    runs: List[ChaosRun] = field(default_factory=list)

    @property
    def baseline(self) -> Optional[ChaosRun]:
        for run in self.runs:
            if run.loss_rate == 0.0 and run.completed:
                return run
        return None

    def degrades_gracefully(self, max_drop: float = 0.35,
                            min_links_fraction: float = 0.5) -> bool:
        """True when every faulted run completed, kept accuracy within
        ``max_drop`` of the clean baseline, and still inferred at least
        ``min_links_fraction`` of the baseline's links."""
        baseline = self.baseline
        if baseline is None or baseline.total_links == 0:
            return False
        for run in self.runs:
            if not run.completed:
                return False
            if run.accuracy < baseline.accuracy - max_drop:
                return False
            if run.total_links < min_links_fraction * baseline.total_links:
                return False
        return True

    def summary(self) -> str:
        lines = ["chaos suite on %s:" % self.scenario_name]
        lines.extend(run.line() for run in self.runs)
        lines.append(
            "  graceful degradation: %s"
            % ("yes" if self.degrades_gracefully() else "NO")
        )
        return "\n".join(lines)


def run_chaos_suite(
    make_scenario: Optional[Callable[[], object]] = None,
    scenario_name: str = "mini",
    loss_rates: Sequence[float] = (0.0, 0.01, 0.05, 0.10),
    burst: bool = False,
    fault_seed: int = 7,
    retry: Optional[RetryPolicy] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer=None,
) -> ChaosReport:
    """Run bdrmap (first VP) once per loss rate and score each run.

    ``make_scenario`` must return a *fresh* scenario each call (virtual
    clocks and caches are mutated by a run); the default builds the
    ``mini`` topology.  Faulted runs get retry/backoff probing —
    ``retry`` overrides the default :class:`RetryPolicy`.

    ``metrics``/``tracer`` instrument the whole suite: per-level spans
    plus the shared counters every instrumented layer feeds.  Fault
    counters stay per-level (each level gets a fresh
    :class:`~repro.net.faults.FaultPlan` whose stats remain private), so
    ``ChaosRun.faults_injected`` is unchanged by instrumentation.
    """
    if metrics is None:
        metrics = NULL_REGISTRY
    if tracer is None:
        tracer = NULL_TRACER
    if make_scenario is None:
        from ..topology import build_scenario, mini

        def make_scenario():
            return build_scenario(mini())

    if retry is None:
        retry = RetryPolicy()
    burst_model: Optional[GilbertElliott] = None
    if burst:
        burst_model = burst if isinstance(burst, GilbertElliott) else GilbertElliott()
    report = ChaosReport(scenario_name=scenario_name)
    for loss_rate in loss_rates:
        label = "loss=%g%%" % (100.0 * loss_rate)
        scenario = make_scenario()
        if loss_rate > 0.0:
            config = FaultConfig(loss_rate=loss_rate, burst=burst_model)
            scenario.network.faults = FaultPlan(config, seed=fault_seed)
            bdr_config = BdrmapConfig(
                collection=CollectionConfig(retry=retry)
            )
        else:
            bdr_config = BdrmapConfig()
        # Share probe counters but NOT fault stats: assigning
        # ``network.metrics`` directly (instead of ``attach_metrics``)
        # leaves this level's FaultPlan counting into its own private
        # registry, so ``faults.stats.total`` below stays per-level.
        scenario.network.metrics = metrics
        retries_before = _registry_retries(metrics) if metrics.enabled else 0
        driver = Bdrmap(
            scenario.network, scenario.vps[0],
            build_data_bundle(scenario), bdr_config,
            metrics=metrics, tracer=tracer,
        )
        try:
            with tracer.span("chaos." + label, loss_rate=loss_rate):
                result = driver.run()
        except Exception as exc:  # noqa: BLE001 - the harness reports crashes
            report.runs.append(
                ChaosRun(
                    label=label,
                    loss_rate=loss_rate,
                    completed=False,
                    error="%s: %s" % (type(exc).__name__, exc),
                )
            )
            continue
        validation = validate_result(result, scenario.internet)
        faults = scenario.network.faults
        if metrics.enabled:
            # The registry accumulates across levels; the delta is this
            # level's share.
            retries = _registry_retries(metrics) - retries_before
        else:
            retries = 0
            if driver.collection is not None:
                retries += driver.collection.retry_stats.retries
                resolver = driver.collection.resolver
                if resolver is not None:
                    stats = getattr(resolver, "retry_stats", None)
                    if stats is not None:
                        retries += stats.retries
        report.runs.append(
            ChaosRun(
                label=label,
                loss_rate=loss_rate,
                completed=True,
                accuracy=validation.accuracy,
                correct_links=validation.correct,
                total_links=validation.total,
                probes_used=result.probes_used,
                retries=retries,
                faults_injected=faults.stats.total if faults else 0,
            )
        )
    return report
