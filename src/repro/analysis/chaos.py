"""Chaos harness: bdrmap under escalating fault injection.

Runs the full pipeline over the same scenario at increasing packet-loss
levels (clean, then e.g. 1/5/10%) with retry/backoff probing enabled, and
scores each run against ground truth.  The point is the robustness
contract: under loss the pipeline must *degrade* — fewer links, slightly
lower accuracy, nonzero retry and degradation counters — rather than
crash or collapse.  :meth:`ChaosReport.degrades_gracefully` encodes that
check for tests and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.bdrmap import Bdrmap, BdrmapConfig, build_data_bundle
from ..core.collection import CollectionConfig
from ..net.faults import (
    ChannelFaultPolicy,
    FaultConfig,
    FaultPlan,
    GilbertElliott,
)
from ..obs.health import build_health_report
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..obs.trace import NULL_TRACER
from ..probing.retry import RetryPolicy
from ..rng import make_rng
from .validation import validate_result


def _registry_retries(registry: MetricsRegistry) -> int:
    """Total probe retries recorded so far under any ``retry.*`` prefix."""
    return sum(
        value
        for name, value in registry.counters_with_prefix("retry.").items()
        if name.endswith(".retries")
    )


@dataclass
class ChaosRun:
    """One pipeline run at one fault level."""

    label: str
    loss_rate: float
    completed: bool
    accuracy: float = 0.0
    correct_links: int = 0
    total_links: int = 0
    probes_used: int = 0
    retries: int = 0
    faults_injected: int = 0
    error: Optional[str] = None

    def line(self) -> str:
        if not self.completed:
            return "  %-8s CRASHED: %s" % (self.label, self.error)
        return (
            "  %-8s accuracy=%5.1f%% (%d/%d links)  probes=%-6d "
            "retries=%-5d faults=%d"
            % (self.label, 100.0 * self.accuracy, self.correct_links,
               self.total_links, self.probes_used, self.retries,
               self.faults_injected)
        )


@dataclass
class ChaosReport:
    """Accuracy-vs-loss curve for one scenario."""

    scenario_name: str
    runs: List[ChaosRun] = field(default_factory=list)

    @property
    def baseline(self) -> Optional[ChaosRun]:
        for run in self.runs:
            if run.loss_rate == 0.0 and run.completed:
                return run
        return None

    def degrades_gracefully(self, max_drop: float = 0.35,
                            min_links_fraction: float = 0.5) -> bool:
        """True when every faulted run completed, kept accuracy within
        ``max_drop`` of the clean baseline, and still inferred at least
        ``min_links_fraction`` of the baseline's links."""
        baseline = self.baseline
        if baseline is None or baseline.total_links == 0:
            return False
        for run in self.runs:
            if not run.completed:
                return False
            if run.accuracy < baseline.accuracy - max_drop:
                return False
            if run.total_links < min_links_fraction * baseline.total_links:
                return False
        return True

    def summary(self) -> str:
        lines = ["chaos suite on %s:" % self.scenario_name]
        lines.extend(run.line() for run in self.runs)
        lines.append(
            "  graceful degradation: %s"
            % ("yes" if self.degrades_gracefully() else "NO")
        )
        return "\n".join(lines)


def run_chaos_suite(
    make_scenario: Optional[Callable[[], object]] = None,
    scenario_name: str = "mini",
    loss_rates: Sequence[float] = (0.0, 0.01, 0.05, 0.10),
    burst: bool = False,
    fault_seed: int = 7,
    retry: Optional[RetryPolicy] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer=None,
) -> ChaosReport:
    """Run bdrmap (first VP) once per loss rate and score each run.

    ``make_scenario`` must return a *fresh* scenario each call (virtual
    clocks and caches are mutated by a run); the default builds the
    ``mini`` topology.  Faulted runs get retry/backoff probing —
    ``retry`` overrides the default :class:`RetryPolicy`.

    ``metrics``/``tracer`` instrument the whole suite: per-level spans
    plus the shared counters every instrumented layer feeds.  Fault
    counters stay per-level (each level gets a fresh
    :class:`~repro.net.faults.FaultPlan` whose stats remain private), so
    ``ChaosRun.faults_injected`` is unchanged by instrumentation.
    """
    if metrics is None:
        metrics = NULL_REGISTRY
    if tracer is None:
        tracer = NULL_TRACER
    if make_scenario is None:
        from ..topology import build_scenario, mini

        def make_scenario():
            return build_scenario(mini())

    if retry is None:
        retry = RetryPolicy()
    burst_model: Optional[GilbertElliott] = None
    if burst:
        burst_model = burst if isinstance(burst, GilbertElliott) else GilbertElliott()
    report = ChaosReport(scenario_name=scenario_name)
    for loss_rate in loss_rates:
        label = "loss=%g%%" % (100.0 * loss_rate)
        scenario = make_scenario()
        if loss_rate > 0.0:
            config = FaultConfig(loss_rate=loss_rate, burst=burst_model)
            scenario.network.faults = FaultPlan(config, seed=fault_seed)
            bdr_config = BdrmapConfig(
                collection=CollectionConfig(retry=retry)
            )
        else:
            bdr_config = BdrmapConfig()
        # Share probe counters but NOT fault stats: assigning
        # ``network.metrics`` directly (instead of ``attach_metrics``)
        # leaves this level's FaultPlan counting into its own private
        # registry, so ``faults.stats.total`` below stays per-level.
        scenario.network.metrics = metrics
        retries_before = _registry_retries(metrics) if metrics.enabled else 0
        driver = Bdrmap(
            scenario.network, scenario.vps[0],
            build_data_bundle(scenario), bdr_config,
            metrics=metrics, tracer=tracer,
        )
        try:
            with tracer.span("chaos." + label, loss_rate=loss_rate):
                result = driver.run()
        except Exception as exc:  # noqa: BLE001 - the harness reports crashes
            report.runs.append(
                ChaosRun(
                    label=label,
                    loss_rate=loss_rate,
                    completed=False,
                    error="%s: %s" % (type(exc).__name__, exc),
                )
            )
            continue
        validation = validate_result(result, scenario.internet)
        faults = scenario.network.faults
        if metrics.enabled:
            # The registry accumulates across levels; the delta is this
            # level's share.
            retries = _registry_retries(metrics) - retries_before
        else:
            retries = 0
            if driver.collection is not None:
                retries += driver.collection.retry_stats.retries
                resolver = driver.collection.resolver
                if resolver is not None:
                    stats = getattr(resolver, "retry_stats", None)
                    if stats is not None:
                        retries += stats.retries
        report.runs.append(
            ChaosRun(
                label=label,
                loss_rate=loss_rate,
                completed=True,
                accuracy=validation.accuracy,
                correct_links=validation.correct,
                total_links=validation.total,
                probes_used=result.probes_used,
                retries=retries,
                faults_injected=faults.stats.total if faults else 0,
            )
        )
    return report

# ---------------------------------------------------------------- shard chaos
#
# The serving-tier counterpart of the suite above: instead of faulting the
# measurement plane, these scenarios kill replicas of the sharded read
# path (repro.serving.server) mid-batch and mid-epoch-swap and audit every
# answer against single-process oracles.  The robustness contract is
# *never wrong*: an answer is either byte-identical to the oracle for the
# epoch it claims, or explicitly marked degraded.


class KillableTransport:
    """An in-process shard transport that can die on schedule.

    ``kill_after`` arms a crash after that many total exchanges — the
    deterministic stand-in for "the process died right after acking the
    prepare" that the mid-swap scenario needs.
    """

    def __init__(self, artifact_path: str, shard_id: int = 0,
                 cache_size: int = 4096) -> None:
        from ..serving.shard import InProcessTransport

        self._inner = InProcessTransport(
            artifact_path, shard_id=shard_id, cache_size=cache_size
        )
        self.kill_after: Optional[int] = None

    @property
    def shard_id(self) -> int:
        return self._inner.shard_id

    @property
    def alive(self) -> bool:
        return self._inner.alive

    @property
    def exchanges(self) -> int:
        return self._inner.exchanges

    def exchange(self, data: bytes, deadline_s: float) -> bytes:
        out = self._inner.exchange(data, deadline_s)
        if self.kill_after is not None \
                and self._inner.exchanges >= self.kill_after:
            self.kill_after = None
            self._inner.kill()
        return out

    def kill(self) -> None:
        self._inner.kill()

    def restart(self, artifact_path: str, token: int = 0) -> None:
        self._inner.restart(artifact_path, token)

    def close(self) -> None:
        self._inner.close()


@dataclass
class ShardChaosRun:
    """One shard-kill scenario's audit."""

    label: str
    completed: bool
    answers: int = 0
    degraded: int = 0
    mismatched: int = 0      # not degraded AND wrong for claimed epoch
    kills: int = 0
    restarts: int = 0
    failovers: int = 0
    converged: bool = False
    degraded_keys: Tuple[Tuple[str, int], ...] = ()
    error: Optional[str] = None
    # SLO-scored HealthReport dict captured after the scenario settles
    # (only when the harness runs with telemetry enabled).
    health: Optional[Dict[str, object]] = None

    def line(self) -> str:
        if not self.completed:
            return "  %-12s CRASHED: %s" % (self.label, self.error)
        return (
            "  %-12s answers=%-5d degraded=%-4d mismatched=%-3d "
            "kills=%d restarts=%d failovers=%d converged=%s"
            % (self.label, self.answers, self.degraded, self.mismatched,
               self.kills, self.restarts, self.failovers,
               "yes" if self.converged else "NO")
        )


@dataclass
class ShardChaosReport:
    """Audit of the sharded tier under replica kills."""

    shards: int
    runs: List[ShardChaosRun] = field(default_factory=list)

    def degrades_gracefully(self) -> bool:
        """True when every scenario completed, never answered wrong,
        restarted every killed replica, and re-converged."""
        if not self.runs:
            return False
        for run in self.runs:
            if not run.completed or run.mismatched:
                return False
            if run.kills and run.restarts < run.kills:
                return False
            if not run.converged:
                return False
        return True

    def summary(self) -> str:
        lines = ["shard chaos (%d replicas):" % self.shards]
        lines.extend(run.line() for run in self.runs)
        lines.append(
            "  graceful degradation: %s"
            % ("yes" if self.degrades_gracefully() else "NO")
        )
        return "\n".join(lines)


def _audit_answers(answers, requests, oracles, committed_epoch,
                   run: ShardChaosRun) -> None:
    """Check a wave of answers: each must match the oracle for the epoch
    it claims, or carry the degraded marker."""
    oracle_answers: Dict[int, List] = {
        epoch: oracle.batch(list(requests))
        for epoch, oracle in oracles.items()
    }
    for position, answer in enumerate(answers):
        run.answers += 1
        if answer.degraded:
            run.degraded += 1
            run.degraded_keys += ((answer.op, answer.key),)
            if answer.value is None:
                continue  # shed/unavailable: no value to be wrong about
        expected = oracle_answers.get(answer.epoch)
        if expected is None or answer.value != expected[position].value:
            if not answer.degraded:
                run.mismatched += 1
            continue
        if not answer.degraded and answer.epoch != committed_epoch:
            # A stale epoch passed off as fresh: the exact failure the
            # degraded marker exists to prevent.
            run.mismatched += 1


def run_shard_chaos(
    artifact_path: str,
    workload: Sequence[Tuple[str, int]],
    swap_path: Optional[str] = None,
    swap_epoch: int = 2,
    shards: int = 3,
    batch_size: int = 32,
    seed: int = 7,
    faults: Optional[ChannelFaultPolicy] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer=None,
) -> ShardChaosReport:
    """Kill replicas of a sharded server mid-batch and mid-swap and
    audit every answer against single-process oracles.

    Two scenarios run (the second only when ``swap_path`` is given):

    * ``kill-mid-batch`` — a seeded replica dies between query waves;
      the tier must fail over (answers stay byte-identical to the
      oracle) and the supervisor must restart the replica.
    * ``kill-mid-swap`` — a replica dies after acking phase one of an
      epoch swap but before its commit; the tier commits anyway, the
      dead replica restarts from the *committed* artifact, and until it
      does every answer is either new-epoch-correct or explicitly
      degraded.

    Fully deterministic: the kill schedule derives from ``seed`` via
    ``repro.rng`` and the tier runs in-process on a virtual clock, so
    the same seed reproduces the same degraded-answer set.
    """
    from ..io import load_border_map
    from ..serving.server import RestartPolicy, ShardedBorderServer, \
        VirtualClock
    from ..serving.service import BorderMapService
    from ..serving.shard import ShardChannel

    if metrics is None:
        metrics = NULL_REGISTRY
    if tracer is None:
        tracer = NULL_TRACER
    report = ShardChaosReport(shards=shards)
    workload = list(workload)
    old_map = load_border_map(artifact_path)
    oracles = {old_map.epoch: BorderMapService(old_map)}
    new_epoch = old_map.epoch
    if swap_path is not None:
        new_map = load_border_map(swap_path)
        oracles[swap_epoch] = BorderMapService(new_map)
        new_epoch = swap_epoch

    def build_server():
        clock = VirtualClock()
        transports = [
            KillableTransport(artifact_path, shard_id=shard_id)
            for shard_id in range(shards)
        ]
        channels = []
        for shard_id, transport in enumerate(transports):
            policy = None
            if faults is not None:
                policy = ChannelFaultPolicy(
                    drop_rate=faults.drop_rate,
                    garble_rate=faults.garble_rate,
                    sever_rate=faults.sever_rate,
                    delay_rate=faults.delay_rate,
                    delay_seconds=faults.delay_seconds,
                    seed=seed * 1000003 + shard_id,
                )
            channels.append(ShardChannel(
                transport, faults=policy, deadline_s=5.0,
                clock_advance=clock.advance,
            ))
        server = ShardedBorderServer(
            channels, artifact_path=artifact_path, epoch=old_map.epoch,
            clock=clock, reset_timeout_s=1.0,
            restart_policy=RestartPolicy(base_s=0.5, seed=seed),
            metrics=metrics, tracer=tracer,
        )
        return server, clock, transports

    def settle(server, clock, run, limit=12):
        """Tick (advancing time past breaker/backoff windows) until the
        tier converges on the committed token, within ``limit`` passes."""
        for _ in range(limit):
            clock.advance(2.0)
            server.tick()
            if server.supervisor.healthy_count() == shards \
                    and server.converged():
                run.converged = True
                return

    waves = [
        workload[start:start + batch_size]
        for start in range(0, len(workload), batch_size)
    ]

    # -- scenario 1: a replica dies between query waves ----------------------
    rng = make_rng(seed, "chaos", "shardkill")
    run = ShardChaosRun(label="kill-mid-batch", completed=False)
    try:
        server, clock, transports = build_server()
        kill_wave = rng.randrange(max(len(waves) - 1, 1))
        victim = rng.randrange(shards)
        for index, wave in enumerate(waves):
            if index == kill_wave:
                transports[victim].kill()
                run.kills += 1
            answers = server.batch(wave)
            _audit_answers(answers, wave, oracles, old_map.epoch, run)
            server.tick()
        settle(server, clock, run)
        run.restarts = sum(s.restarts for s in server.supervisor.shards)
        run.failovers = server.failovers
        if server.telemetry:
            # Same harvest path production monitoring uses: fold shard
            # registry deltas home, then score the settled tier.
            run.health = build_health_report(server).to_dict()
        run.completed = True
        server.close()
    except Exception as exc:  # noqa: BLE001 - the harness reports crashes
        run.error = "%s: %s" % (type(exc).__name__, exc)
    report.runs.append(run)

    if swap_path is None:
        return report

    # -- scenario 2: a replica dies between prepare and commit ---------------
    rng = make_rng(seed, "chaos", "swapkill")
    run = ShardChaosRun(label="kill-mid-swap", completed=False)
    try:
        server, clock, transports = build_server()
        half = max(len(waves) // 2, 1)
        for wave in waves[:half]:
            answers = server.batch(wave)
            _audit_answers(answers, wave, oracles, old_map.epoch, run)
        victim = rng.randrange(shards)
        # Arm the crash: the victim acks exactly one more exchange (the
        # prepare) and dies before its commit arrives.
        transports[victim].kill_after = transports[victim].exchanges + 1
        run.kills += 1
        token = server.swap(swap_path, epoch=swap_epoch)
        if token is None:
            raise AssertionError("swap rolled back with a live majority")
        for wave in waves[half:]:
            answers = server.batch(wave)
            _audit_answers(answers, wave, oracles, swap_epoch, run)
            server.tick()
        settle(server, clock, run)
        # Post-convergence probe: the restarted replica must now serve
        # the committed epoch for keys it homes.
        answers = server.batch(waves[0])
        _audit_answers(answers, waves[0], oracles, swap_epoch, run)
        run.mismatched += sum(
            1 for answer in answers if answer.epoch != new_epoch
        )
        run.restarts = sum(s.restarts for s in server.supervisor.shards)
        run.failovers = server.failovers
        if server.telemetry:
            run.health = build_health_report(server).to_dict()
        run.completed = True
        server.close()
    except Exception as exc:  # noqa: BLE001 - the harness reports crashes
        run.error = "%s: %s" % (type(exc).__name__, exc)
    report.runs.append(run)
    return report
