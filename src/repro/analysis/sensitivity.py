"""Sensitivity of inference accuracy to the environment's hostility.

The paper's accuracy was measured on four real networks — fixed, unknown
mixtures of the §4 pathologies.  The simulator lets us ask the question the
paper could not: *how fast does accuracy degrade as each pathology's rate
grows?*  This harness sweeps one challenge rate at a time and records link
accuracy and neighbor coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Sequence

from ..core.bdrmap import build_data_bundle, run_bdrmap
from ..topology import build_scenario
from ..topology.challenges import ChallengeConfig
from ..topology.scenarios import ScenarioConfig
from .validation import neighbor_coverage, validate_result


@dataclass
class SweepPoint:
    rate: float
    accuracy: float
    coverage: float
    links: int


@dataclass
class SensitivityReport:
    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    def accuracy_drop(self) -> float:
        """Accuracy at the lowest rate minus accuracy at the highest."""
        if len(self.points) < 2:
            return 0.0
        return self.points[0].accuracy - self.points[-1].accuracy

    def min_accuracy(self) -> float:
        return min(point.accuracy for point in self.points) if self.points else 0.0

    def summary(self) -> str:
        lines = ["sensitivity to %s:" % self.parameter]
        for point in self.points:
            lines.append(
                "  rate %.2f → accuracy %5.1f%%, coverage %5.1f%%, %d links"
                % (point.rate, 100 * point.accuracy, 100 * point.coverage,
                   point.links)
            )
        return "\n".join(lines)


def sweep_challenge_rate(
    base_config: ScenarioConfig,
    parameter: str,
    rates: Sequence[float],
) -> SensitivityReport:
    """Re-generate and re-measure the scenario at each rate of one
    ``ChallengeConfig`` field, everything else held fixed (same seed, so
    the underlying topology is identical — only router behaviour moves)."""
    if not hasattr(ChallengeConfig(), parameter):
        raise ValueError("unknown challenge parameter %r" % parameter)
    report = SensitivityReport(parameter=parameter)
    for rate in rates:
        challenges = replace(base_config.challenges, **{parameter: rate})
        config = replace(base_config, challenges=challenges)
        scenario = build_scenario(config)
        data = build_data_bundle(scenario)
        result = run_bdrmap(scenario, data=data)
        validation = validate_result(result, scenario.internet)
        _, _, coverage = neighbor_coverage(result, scenario.internet)
        report.points.append(
            SweepPoint(
                rate=rate,
                accuracy=validation.accuracy,
                coverage=coverage,
                links=validation.total,
            )
        )
    return report
