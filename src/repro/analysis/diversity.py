"""Figure 14: per-prefix diversity of border routers and next-hop ASes.

From N VPs in one network, for every routed destination prefix: how many
distinct border routers carried probes toward it, and how many distinct
next-hop ASes?  The paper found <2% of prefixes leave via one router from
every VP, 73% via 5–15 routers, and 67% via the same next-hop AS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..addr import Prefix
from ..bgp import BGPView
from ..core.report import BdrmapResult
from ..topology.model import Internet


@dataclass
class DiversityReport:
    per_prefix_routers: Dict[Prefix, Set[int]] = field(default_factory=dict)
    per_prefix_nextas: Dict[Prefix, Set[int]] = field(default_factory=dict)

    def router_count_cdf(self) -> List[Tuple[int, float]]:
        return _cdf([len(v) for v in self.per_prefix_routers.values()])

    def nextas_count_cdf(self) -> List[Tuple[int, float]]:
        return _cdf([len(v) for v in self.per_prefix_nextas.values()])

    def fraction_routers_between(self, lo: int, hi: int) -> float:
        counts = [len(v) for v in self.per_prefix_routers.values()]
        if not counts:
            return 0.0
        return sum(1 for c in counts if lo <= c <= hi) / len(counts)

    def fraction_single_router(self) -> float:
        return self.fraction_routers_between(1, 1)

    def fraction_single_nextas(self) -> float:
        counts = [len(v) for v in self.per_prefix_nextas.values()]
        if not counts:
            return 0.0
        return sum(1 for c in counts if c == 1) / len(counts)

    def summary(self) -> str:
        return (
            "diversity over %d prefixes: single-router %.1f%%, "
            "5-15 routers %.1f%%, >15 routers %.1f%%, single next-AS %.1f%%"
            % (
                len(self.per_prefix_routers),
                100 * self.fraction_single_router(),
                100 * self.fraction_routers_between(5, 15),
                100
                * (
                    1.0
                    - self.fraction_routers_between(0, 15)
                ),
                100 * self.fraction_single_nextas(),
            )
        )


def _cdf(counts: Sequence[int]) -> List[Tuple[int, float]]:
    if not counts:
        return []
    ordered = sorted(counts)
    total = len(ordered)
    points: List[Tuple[int, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / total)
        else:
            points.append((value, index / total))
    return points


def diversity_analysis(
    results: Sequence[BdrmapResult],
    view: BGPView,
    internet: Internet,
) -> DiversityReport:
    """Cross-VP per-prefix border/next-hop diversity.

    Router identity across VPs uses ground truth (each VP builds its own
    inferred graph; the generator arbitrates which inferred routers are the
    same device)."""
    report = DiversityReport()
    for result in results:
        vp_family = result.vp_ases
        for path in result.graph.paths:
            found = view.lookup(path.dst)
            if found is None:
                continue
            prefix = found[0]
            border_rid: Optional[int] = None
            next_owner: Optional[int] = None
            for index, rid in enumerate(path.routers):
                router = result.graph.routers.get(rid)
                if router is None:
                    continue
                if router.owner == result.focal_asn:
                    border_rid = rid
                    next_owner = None
                    for later_rid in path.routers[index + 1:]:
                        later = result.graph.routers.get(later_rid)
                        if later is not None and later.owner is not None and (
                            later.owner not in vp_family
                        ):
                            next_owner = later.owner
                            break
            if border_rid is None:
                continue
            border = result.graph.routers[border_rid]
            truth_ids = {
                internet.router_of_addr(addr).router_id
                for addr in border.addrs
                if internet.router_of_addr(addr) is not None
            }
            if not truth_ids:
                continue
            report.per_prefix_routers.setdefault(prefix, set()).add(min(truth_ids))
            if next_owner is not None:
                report.per_prefix_nextas.setdefault(prefix, set()).add(next_owner)
    return report
