"""Router-ownership accuracy and baseline comparison.

Two scoreboards the paper motivates:

* **link accuracy** of the canonical IP-AS transition method (§1, [44]) vs
  bdrmap's — the headline "why heuristics matter" comparison;
* **router-ownership accuracy** over every annotated router, vs the ~71%
  the best prior heuristic achieved (Huffaker et al. [17]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Set, Tuple

from ..bgp import BGPView
from ..core.baseline import NaiveLink, naive_owner
from ..core.report import BdrmapResult
from ..topology.model import Internet, LinkKind


@dataclass
class OwnershipReport:
    scored: int = 0
    correct: int = 0
    by_method: str = ""

    @property
    def accuracy(self) -> float:
        return self.correct / self.scored if self.scored else 0.0

    def summary(self) -> str:
        return "%s ownership: %d/%d routers correct (%.1f%%)" % (
            self.by_method, self.correct, self.scored, 100 * self.accuracy
        )


def _truth_owner_family(internet: Internet, addr: int) -> Set[int]:
    owner = internet.owner_of_addr(addr)
    if owner is None:
        return set()
    return set(internet.sibling_asns(owner))


def score_bdrmap_ownership(
    result: BdrmapResult, internet: Internet
) -> OwnershipReport:
    """Score every owner-annotated inferred router against ground truth.

    An inferred router is correct when its inferred owner is the true
    operator (or a sibling) of the routers behind its addresses.  Routers
    merging addresses of several true routers are judged by majority.
    """
    report = OwnershipReport(by_method="bdrmap")
    for router in result.graph.routers.values():
        if router.owner is None or not router.addrs:
            continue
        votes = 0
        total = 0
        for addr in router.addrs:
            family = _truth_owner_family(internet, addr)
            if not family:
                continue
            total += 1
            if router.owner in family:
                votes += 1
        if not total:
            continue
        report.scored += 1
        if votes * 2 >= total:
            report.correct += 1
    return report


def score_naive_ownership(
    result: BdrmapResult, view: BGPView, internet: Internet
) -> OwnershipReport:
    """The canonical method on exactly the same address population: each
    observed address owned by its longest-matching-prefix origin."""
    report = OwnershipReport(by_method="naive IP-AS")
    for router in result.graph.routers.values():
        for addr in router.addrs:
            family = _truth_owner_family(internet, addr)
            if not family:
                continue
            owner = naive_owner(view, addr)
            if owner is None:
                continue
            report.scored += 1
            if owner in family:
                report.correct += 1
    return report


@dataclass
class NaiveLinkReport:
    total: int = 0
    correct: int = 0
    judgements: List[Tuple[NaiveLink, str]] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    def summary(self) -> str:
        return "naive IP-AS links: %d/%d correct (%.1f%%)" % (
            self.correct, self.total, 100 * self.accuracy
        )


def validate_naive_links(
    links: Iterable[NaiveLink], internet: Internet, focal_asn: int
) -> NaiveLinkReport:
    """Judge canonical-method links with the same standard as §5.6: the
    near address must sit on a router that truly borders the claimed AS."""
    report = NaiveLinkReport()
    vp_family = set(internet.sibling_asns(focal_asn))
    for link in links:
        report.total += 1
        near_router = internet.router_of_addr(link.near_addr)
        if near_router is None:
            report.judgements.append((link, "no-router"))
            continue
        neighbors: Set[int] = set()
        for link_id in near_router.link_ids():
            truth_link = internet.links[link_id]
            if truth_link.kind is LinkKind.INTRA:
                continue
            for iface in truth_link.interfaces:
                owner = internet.routers[iface.router_id].asn
                if owner not in vp_family and iface.router_id != near_router.router_id:
                    neighbors.add(owner)
        family = set()
        for neighbor in neighbors:
            family |= internet.sibling_asns(neighbor)
        if link.neighbor_as in family:
            report.correct += 1
            report.judgements.append((link, "correct"))
        elif neighbors:
            report.judgements.append((link, "wrong-as"))
        else:
            report.judgements.append((link, "no-link"))
    return report
