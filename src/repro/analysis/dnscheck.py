"""DNS-based development checks (§5.1).

The authors developed bdrmap without ground truth, sanity-checking
inferences against interface hostnames where available and manually
reviewing suspicious patterns — in particular, border routers with high
out-degree into routers of a single neighbor AS, which usually signalled a
wrong inference.  DNS could not be used for *automated validation* (stale
and organization-labelled names), but agreement rates were a useful
development signal.  These helpers reproduce that workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.report import BdrmapResult
from ..datasets.dns import ReverseDNS


@dataclass
class DNSCheckReport:
    checked: int = 0
    agree: int = 0
    disagreements: List[Tuple[int, int, int]] = field(default_factory=list)
    # (router rid, inferred owner, DNS-hinted ASN)
    unnamed: int = 0

    @property
    def agreement(self) -> float:
        return self.agree / self.checked if self.checked else 0.0

    def summary(self) -> str:
        return (
            "DNS sanity check: %d/%d named neighbor routers agree (%.1f%%), "
            "%d unnamed"
            % (self.agree, self.checked, 100 * self.agreement, self.unnamed)
        )


def dns_sanity_check(
    result: BdrmapResult,
    dns: ReverseDNS,
    siblings: Optional[Dict[int, frozenset]] = None,
) -> DNSCheckReport:
    """Compare inferred neighbor-router owners against hostname AS hints.

    Only hostnames carrying an explicit AS number participate; agreement
    counts sibling matches (per the provided sibling map) as agreement.
    """
    report = DNSCheckReport()
    for rid, owner, _reason in result.neighbor_routers():
        router = result.graph.routers[rid]
        hints = {
            hint
            for addr in sorted(router.all_addrs())
            if (hint := dns.asn_hint(addr)) is not None
        }
        if not hints:
            report.unnamed += 1
            continue
        report.checked += 1
        family = {owner}
        if siblings is not None:
            family |= set(siblings.get(owner, frozenset()))
        if hints & family:
            report.agree += 1
        else:
            report.disagreements.append((rid, owner, min(hints)))
    return report


def degree_anomalies(
    result: BdrmapResult, min_out_degree: int = 5
) -> List[Tuple[int, int, int]]:
    """§5.1's manual red flag: a *neighbor* router with many successors all
    owned by one (different) AS is probably misattributed.

    Returns (rid, inferred owner, dominant successor AS) triples worth a
    human look.
    """
    flags: List[Tuple[int, int, int]] = []
    graph = result.graph
    for rid, owner, _reason in result.neighbor_routers():
        successors = graph.successors(rid)
        if len(successors) < min_out_degree:
            continue
        successor_owners = [
            graph.routers[s].owner
            for s in successors
            if s in graph.routers and graph.routers[s].owner is not None
        ]
        if not successor_owners:
            continue
        dominant = max(set(successor_owners), key=successor_owners.count)
        if (
            dominant != owner
            and successor_owners.count(dominant) >= len(successor_owners) * 0.8
        ):
            flags.append((rid, owner, dominant))
    return flags
