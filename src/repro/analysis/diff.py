"""Diffing bdrmap runs — longitudinal interconnection monitoring.

The deployed system re-runs bdrmap on a cadence; what operators and
researchers consume is the *delta*: which neighbors appeared, which
interconnections were added or turned down, which moved to a different
border router.  Link identity across runs uses the near-side interface
addresses plus the neighbor AS (stable operational identifiers a real
monitor has; router ids are run-local).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from ..addr import ntoa
from ..core.report import BdrmapResult

LinkKey = Tuple[int, FrozenSet[int]]  # (neighbor AS, near-side addresses)


def _link_keys(result: BdrmapResult) -> Set[LinkKey]:
    keys: Set[LinkKey] = set()
    for link in result.links:
        near = result.graph.routers.get(link.near_rid)
        addrs = frozenset(near.addrs) if near is not None else frozenset()
        keys.add((link.neighbor_as, addrs))
    return keys


def _match(key: LinkKey, pool: Set[LinkKey]) -> Optional[LinkKey]:
    """Same neighbor + overlapping near addresses → same physical link.

    Candidates are tried in sorted order so the match — and therefore the
    whole diff — is deterministic even when several candidates overlap
    (set iteration order varies across processes with hash
    randomization; a longitudinal monitor must produce one canonical
    delta for one pair of maps)."""
    neighbor, addrs = key
    for candidate in sorted(pool, key=lambda k: (k[0], sorted(k[1]))):
        if candidate[0] == neighbor and (candidate[1] & addrs or not addrs):
            return candidate
    return None


@dataclass
class RunDiff:
    """Differences between two runs from the same VP."""

    gained_neighbors: Set[int] = field(default_factory=set)
    lost_neighbors: Set[int] = field(default_factory=set)
    added_links: List[LinkKey] = field(default_factory=list)
    removed_links: List[LinkKey] = field(default_factory=list)
    stable_links: int = 0

    @property
    def changed(self) -> bool:
        return bool(
            self.gained_neighbors
            or self.lost_neighbors
            or self.added_links
            or self.removed_links
        )

    def summary(self) -> str:
        lines = [
            "diff: +%d/-%d neighbors, +%d/-%d links, %d stable"
            % (
                len(self.gained_neighbors),
                len(self.lost_neighbors),
                len(self.added_links),
                len(self.removed_links),
                self.stable_links,
            )
        ]
        for neighbor, addrs in self.added_links:
            shown = ",".join(ntoa(a) for a in sorted(addrs)[:3]) or "?"
            lines.append("  + AS%d at %s" % (neighbor, shown))
        for neighbor, addrs in self.removed_links:
            shown = ",".join(ntoa(a) for a in sorted(addrs)[:3]) or "?"
            lines.append("  - AS%d at %s" % (neighbor, shown))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-ready canonical form (epoch chains embed this)."""
        return {
            "gained_neighbors": sorted(self.gained_neighbors),
            "lost_neighbors": sorted(self.lost_neighbors),
            "added_links": [
                [neighbor, sorted(addrs)]
                for neighbor, addrs in self.added_links
            ],
            "removed_links": [
                [neighbor, sorted(addrs)]
                for neighbor, addrs in self.removed_links
            ],
            "stable_links": self.stable_links,
        }


def _diff_key_sets(
    diff: RunDiff, before_keys: Set[LinkKey], after_keys: Set[LinkKey]
) -> RunDiff:
    unmatched_before = set(before_keys)
    for key in sorted(after_keys, key=lambda k: (k[0], sorted(k[1]))):
        matched = _match(key, unmatched_before)
        if matched is not None:
            unmatched_before.discard(matched)
            diff.stable_links += 1
        else:
            diff.added_links.append(key)
    diff.removed_links = sorted(
        unmatched_before, key=lambda k: (k[0], sorted(k[1]))
    )
    return diff


def diff_results(before: BdrmapResult, after: BdrmapResult) -> RunDiff:
    """Compare two runs (ideally from the same VP)."""
    diff = RunDiff()
    diff.gained_neighbors = after.neighbor_ases() - before.neighbor_ases()
    diff.lost_neighbors = before.neighbor_ases() - after.neighbor_ases()
    return _diff_key_sets(diff, _link_keys(before), _link_keys(after))


def _border_map_link_keys(bmap) -> Set[LinkKey]:
    keys: Set[LinkKey] = set()
    for link in bmap.links:
        near = bmap.routers[link.near_router]
        keys.add((link.neighbor_as, frozenset(near.addrs)))
    return keys


def diff_border_maps(before, after) -> RunDiff:
    """Compare two compiled :class:`~repro.serving.bordermap.BorderMap`
    epochs — the longitudinal delta a serving deployment publishes when
    it hot-swaps a recompiled map."""
    diff = RunDiff()
    before_neighbors = set(before.neighbor_ases())
    after_neighbors = set(after.neighbor_ases())
    diff.gained_neighbors = after_neighbors - before_neighbors
    diff.lost_neighbors = before_neighbors - after_neighbors
    return _diff_key_sets(
        diff, _border_map_link_keys(before), _border_map_link_keys(after)
    )
