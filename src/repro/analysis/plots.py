"""Terminal plots for the figure analyses.

The paper's figures are CDFs (Fig 14), discovery curves (Fig 15), and a
longitude scatter (Fig 16); these helpers render the same data as ASCII so
examples and the CLI can show the *shape* without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple


def text_cdf(
    points: Sequence[Tuple[float, float]],
    width: int = 50,
    height: int = 12,
    label: str = "",
) -> str:
    """Render CDF points (value, cumulative fraction) as an ASCII chart."""
    if not points:
        return "(no data)"
    lo = min(v for v, _ in points)
    hi = max(v for v, _ in points)
    span = max(hi - lo, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    for value, fraction in points:
        col = min(width - 1, int((value - lo) / span * (width - 1)))
        row = min(height - 1, int((1.0 - fraction) * (height - 1)))
        grid[row][col] = "*"
    lines = []
    if label:
        lines.append(label)
    for index, row in enumerate(grid):
        fraction = 1.0 - index / (height - 1)
        lines.append("%4.0f%% |%s" % (100 * fraction, "".join(row)))
    lines.append("      +%s" % ("-" * width))
    lines.append("       %-8g%*s" % (lo, width - 8, "%g" % hi))
    return "\n".join(lines)


def text_curve(
    series: Dict[str, Sequence[float]],
    width: int = 50,
    height: int = 12,
    x_label: str = "",
) -> str:
    """Render one or more named curves (index → value) on a shared chart.

    Each series gets the first letter of its name as its mark.
    """
    if not series or all(not values for values in series.values()):
        return "(no data)"
    max_y = max(max(values) for values in series.values() if values)
    max_x = max(len(values) for values in series.values())
    if max_y <= 0 or max_x <= 1:
        return "(degenerate data)"
    grid = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        mark = name[0] if name else "*"
        for index, value in enumerate(values):
            col = min(width - 1, int(index / (max_x - 1) * (width - 1)))
            row = min(height - 1, int((1.0 - value / max_y) * (height - 1)))
            grid[row][col] = mark
    lines = []
    for index, row in enumerate(grid):
        value = max_y * (1.0 - index / (height - 1))
        lines.append("%6.1f |%s" % (value, "".join(row)))
    lines.append("       +%s" % ("-" * width))
    if x_label:
        lines.append("        %s" % x_label)
    legend = "  ".join("%s=%s" % (name[0], name) for name in series)
    lines.append("        %s" % legend)
    return "\n".join(lines)


def text_scatter_rows(
    rows: Sequence[Tuple[float, Sequence[float]]],
    width: int = 60,
    lo: float = -125.0,
    hi: float = -70.0,
) -> str:
    """Fig 16-style rows: one line per VP ('o' = the VP, '*' = links)."""
    lines = []
    span = hi - lo

    def col(value: float) -> int:
        return max(0, min(width - 1, int((value - lo) / span * (width - 1))))

    for vp_lon, link_lons in rows:
        row = [" "] * width
        for lon in link_lons:
            row[col(lon)] = "*"
        vp_col = col(vp_lon)
        row[vp_col] = "o" if row[vp_col] == " " else "@"
        lines.append("|%s|" % "".join(row))
    lines.append("west%seast" % (" " * (width - 6)))
    return "\n".join(lines)
