"""Evaluation harnesses: §5.6 validation against ground truth, Table 1
coverage/heuristic breakdown, and the §6 interconnection analyses
(Figures 14, 15, 16).  This is the only layer allowed to read the
generator's ground truth."""

from .chaos import (
    ChaosReport,
    ChaosRun,
    ShardChaosReport,
    ShardChaosRun,
    run_chaos_suite,
    run_shard_chaos,
)
from .validation import LinkJudgement, ValidationReport, validate_result
from .coverage import CoverageReport, coverage_table, format_table1, pass_table
from .diversity import DiversityReport, diversity_analysis
from .marginal import MarginalReport, marginal_utility
from .geo import GeoReport, geography_analysis
from .dnscheck import DNSCheckReport, degree_anomalies, dns_sanity_check
from .diff import RunDiff, diff_border_maps, diff_results
from .ownership import (
    NaiveLinkReport,
    OwnershipReport,
    score_bdrmap_ownership,
    score_naive_ownership,
    validate_naive_links,
)

__all__ = [
    "ChaosReport",
    "ChaosRun",
    "ShardChaosReport",
    "ShardChaosRun",
    "run_chaos_suite",
    "run_shard_chaos",
    "RunDiff",
    "diff_results",
    "diff_border_maps",
    "NaiveLinkReport",
    "OwnershipReport",
    "score_bdrmap_ownership",
    "score_naive_ownership",
    "validate_naive_links",
    "DNSCheckReport",
    "degree_anomalies",
    "dns_sanity_check",
    "LinkJudgement",
    "ValidationReport",
    "validate_result",
    "CoverageReport",
    "coverage_table",
    "pass_table",
    "format_table1",
    "DiversityReport",
    "diversity_analysis",
    "MarginalReport",
    "marginal_utility",
    "GeoReport",
    "geography_analysis",
]
