"""§5.6 validation: score inferred links against generator ground truth.

The unit of validation is the same as the paper's: an inferred interdomain
link — (near router, neighbor AS) — judged correct when the ground truth
topology has a border link at that router to that AS (or to a sibling of
that AS, which the paper counted separately as "sibling of the correct
AS").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..core.report import BdrmapResult, InferredLink
from ..topology.model import Internet


@dataclass(frozen=True)
class LinkJudgement:
    link: InferredLink
    verdict: str          # "correct" | "sibling" | "wrong-as" | "no-link"
    truth_neighbors: Tuple[int, ...]  # ASes truly attached at that router

    @property
    def is_correct(self) -> bool:
        return self.verdict in ("correct", "sibling")


@dataclass
class ValidationReport:
    judgements: List[LinkJudgement] = field(default_factory=list)
    by_reason: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.judgements)

    @property
    def correct(self) -> int:
        return sum(1 for j in self.judgements if j.is_correct)

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    def verdict_counts(self) -> Counter:
        return Counter(j.verdict for j in self.judgements)

    def summary(self) -> str:
        counts = self.verdict_counts()
        lines = [
            "validation: %d/%d links correct (%.1f%%)"
            % (self.correct, self.total, 100.0 * self.accuracy),
            "  verdicts: %s"
            % ", ".join("%s=%d" % (k, v) for k, v in sorted(counts.items())),
        ]
        for reason in sorted(self.by_reason):
            good, total = self.by_reason[reason]
            lines.append(
                "  %-18s %3d/%3d (%.1f%%)"
                % (reason, good, total, 100.0 * good / total if total else 0.0)
            )
        return "\n".join(lines)


def _truth_router_ids(result: BdrmapResult, internet: Internet, rid: int) -> Set[int]:
    """Ground-truth router ids behind an inferred router's addresses."""
    router = result.graph.routers.get(rid)
    if router is None:
        return set()
    found: Set[int] = set()
    for addr in router.all_addrs():
        truth = internet.router_of_addr(addr)
        if truth is not None:
            found.add(truth.router_id)
    return found


def _truth_neighbor_ases(
    internet: Internet, truth_rids: Set[int], vp_family: Set[int]
) -> Set[int]:
    """ASes truly attached across border links at these routers."""
    neighbors: Set[int] = set()
    for truth_rid in truth_rids:
        router = internet.routers.get(truth_rid)
        if router is None:
            continue
        for link_id in router.link_ids():
            link = internet.links[link_id]
            if link.kind.value == "intra":
                continue
            for iface in link.interfaces:
                owner = internet.routers[iface.router_id].asn
                if owner not in vp_family and iface.router_id != truth_rid:
                    neighbors.add(owner)
    return neighbors


def validate_result(result: BdrmapResult, internet: Internet) -> ValidationReport:
    """Judge every inferred link against ground truth."""
    report = ValidationReport()
    vp_family = set(internet.sibling_asns(result.focal_asn))
    reason_counts: Dict[str, List[int]] = {}

    for link in result.links:
        near_truth = _truth_router_ids(result, internet, link.near_rid)
        # The near side may (correctly) include several true routers when
        # §5.4.7 merged them; judge against the union of their borders.
        truth_neighbors = _truth_neighbor_ases(internet, near_truth, vp_family)
        if link.neighbor_as in truth_neighbors:
            verdict = "correct"
        else:
            sibling_hit = any(
                link.neighbor_as in internet.sibling_asns(asn)
                for asn in truth_neighbors
            )
            if sibling_hit:
                verdict = "sibling"
            elif truth_neighbors:
                verdict = "wrong-as"
            else:
                verdict = "no-link"
        judgement = LinkJudgement(
            link=link,
            verdict=verdict,
            truth_neighbors=tuple(sorted(truth_neighbors)),
        )
        report.judgements.append(judgement)
        bucket = reason_counts.setdefault(link.reason, [0, 0])
        bucket[1] += 1
        if judgement.is_correct:
            bucket[0] += 1

    report.by_reason = {
        reason: (good, total) for reason, (good, total) in reason_counts.items()
    }
    return report


def neighbor_coverage(
    result: BdrmapResult, internet: Internet
) -> Tuple[int, int, float]:
    """How many true BGP-adjacent neighbors got at least one inferred link
    (ground-truth flavour of Table 1's coverage row)."""
    vp_family = set(internet.sibling_asns(result.focal_asn))
    true_neighbors = {
        asn
        for member in vp_family
        for asn in internet.graph.neighbors(member)
        if asn not in vp_family
    }
    inferred = result.neighbor_ases()
    covered = len(true_neighbors & inferred)
    return covered, len(true_neighbors), (
        covered / len(true_neighbors) if true_neighbors else 0.0
    )
