"""Mapping inferred links to ground-truth link identities.

Cross-VP analyses (Figs 14–16) must decide when two VPs observed the *same*
physical interconnection.  The generator knows; this helper translates an
inferred link into the set of ground-truth link ids it plausibly matches.
Only the analysis layer uses it.
"""

from __future__ import annotations

from typing import Set, Tuple

from ..core.report import BdrmapResult, InferredLink
from ..topology.model import Internet, LinkKind


def truth_near_routers(
    result: BdrmapResult, internet: Internet, link: InferredLink
) -> Set[int]:
    router = result.graph.routers.get(link.near_rid)
    if router is None:
        return set()
    found: Set[int] = set()
    for addr in router.all_addrs():
        truth = internet.router_of_addr(addr)
        if truth is not None:
            found.add(truth.router_id)
    return found


def truth_link_ids(
    result: BdrmapResult, internet: Internet, link: InferredLink
) -> Set[Tuple]:
    """Ground-truth identities for an inferred link.

    Prefers true link ids found via the far router's addresses; falls back
    to a (near-router, neighbor-AS) tuple for silent far sides.
    """
    near = truth_near_routers(result, internet, link)
    ids: Set[Tuple] = set()
    if link.far_rid is not None:
        far = result.graph.routers.get(link.far_rid)
        if far is not None:
            for addr in far.all_addrs():
                iface = internet.addr_to_iface.get(addr)
                if iface is None:
                    continue
                truth_link = internet.links[iface.link_id]
                if truth_link.kind is LinkKind.INTRA:
                    continue
                members = {i.router_id for i in truth_link.interfaces}
                if not near or members & near:
                    ids.add(("link", truth_link.link_id))
    if not ids:
        for near_rid in sorted(near):
            ids.add(("attach", near_rid, link.neighbor_as))
    return ids
