"""Table 1: BGP coverage and heuristic breakdown.

Classifies the VP network's BGP-observed neighbors by inferred relationship
(customer / peer / provider), reports how many were also found by bdrmap,
attributes each inferred *neighbor router* to the heuristic that owned it,
and separates links visible only in traceroute (the "trace" column).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..asgraph import Rel
from ..core.bdrmap import DataBundle
from ..core.heuristics import table1_row_order
from ..core.report import BdrmapResult

CLASSES = ("cust", "peer", "prov", "trace")

# Display order of heuristic rows, mirroring Table 1 — derived from the
# pass registry so a new registered pass shows up here automatically.
ROW_ORDER = table1_row_order()


@dataclass
class CoverageReport:
    """The data behind one network's columns of Table 1."""

    name: str
    bgp_neighbors: Dict[str, Set[int]] = field(default_factory=dict)
    bdrmap_neighbors: Dict[str, Set[int]] = field(default_factory=dict)
    trace_only_neighbors: Set[int] = field(default_factory=set)
    # (heuristic row, class) -> neighbor-router count
    router_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    neighbor_router_totals: Dict[str, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        observed = sum(len(v) for v in self.bgp_neighbors.values())
        found = sum(
            len(self.bdrmap_neighbors.get(cls, set()) & self.bgp_neighbors.get(cls, set()))
            for cls in ("cust", "peer", "prov")
        )
        return found / observed if observed else 0.0

    def row_fraction(self, row: str, cls: str) -> float:
        total = self.neighbor_router_totals.get(cls, 0)
        if not total:
            return 0.0
        return self.router_counts.get((row, cls), 0) / total


def _neighbor_class(data: DataBundle, asn: int) -> str:
    rel = data.rels.relationship(data.focal_asn, asn)
    if rel is Rel.CUSTOMER:
        return "cust"
    if rel is Rel.PEER:
        return "peer"
    if rel is Rel.PROVIDER:
        return "prov"
    return "trace"


def coverage_table(result: BdrmapResult, data: DataBundle,
                   name: str = "") -> CoverageReport:
    report = CoverageReport(name=name or result.vp_name)
    bgp_neighbors = data.view.neighbors_of_group(data.vp_ases)
    for cls in CLASSES:
        report.bgp_neighbors[cls] = set()
        report.bdrmap_neighbors[cls] = set()
    for asn in bgp_neighbors:
        cls = _neighbor_class(data, asn)
        if cls != "trace":
            report.bgp_neighbors[cls].add(asn)

    inferred_neighbors = result.neighbor_ases()
    for asn in inferred_neighbors:
        if asn in bgp_neighbors:
            report.bdrmap_neighbors[_neighbor_class(data, asn)].add(asn)
        else:
            report.trace_only_neighbors.add(asn)
            report.bdrmap_neighbors["trace"].add(asn)

    # Attribute each inferred neighbor router (the far side of a link, or a
    # §5.4.8 silent attachment) to its heuristic and neighbor class.
    counted: Set[Tuple[Optional[int], int, str]] = set()
    counts: Counter = Counter()
    totals: Counter = Counter()
    for link in result.links:
        cls = (
            _neighbor_class(data, link.neighbor_as)
            if link.neighbor_as in bgp_neighbors
            else "trace"
        )
        key = (link.far_rid, link.neighbor_as, link.reason)
        if key in counted:
            continue
        counted.add(key)
        counts[(link.reason, cls)] += 1
        totals[cls] += 1
    report.router_counts = dict(counts)
    report.neighbor_router_totals = dict(totals)
    return report


def pass_table(run_report) -> str:
    """Per-heuristic-pass assignment counts straight from a
    :class:`~repro.core.orchestrator.RunReport` — no re-walk of the router
    graph needed, because every pass already counted its assignments under
    its Table 1 label while running."""
    reason_totals = run_report.reason_totals()
    per_vp = [(vp.vp_name, vp.reason_counts) for vp in run_report.vp_reports]
    width = max((len(name) for name, _ in per_vp), default=8)
    lines = [
        "%-20s %7s  %s"
        % ("Table 1 row", "total",
           " ".join("%*s" % (width, name) for name, _ in per_vp))
    ]
    for label in ROW_ORDER + ["vp"]:
        if not reason_totals.get(label):
            continue
        lines.append(
            "%-20s %7d  %s"
            % (label, reason_totals[label],
               " ".join("%*d" % (width, counts.get(label, 0))
                        for _, counts in per_vp))
        )
    lines.append(
        "%-20s %7d  %s"
        % ("assignments", sum(reason_totals.values()),
           " ".join("%*d" % (width, sum(counts.values()))
                    for _, counts in per_vp))
    )
    return "\n".join(lines)


def table1_csv(reports: List[CoverageReport]) -> str:
    """Table 1 as CSV (one row per network × heuristic × class), for
    downstream plotting."""
    lines = ["network,row,class,value"]
    for report in reports:
        for cls in ("cust", "peer", "prov"):
            lines.append(
                "%s,observed_in_bgp,%s,%d"
                % (report.name, cls, len(report.bgp_neighbors[cls]))
            )
            lines.append(
                "%s,observed_in_bdrmap,%s,%d"
                % (
                    report.name,
                    cls,
                    len(report.bdrmap_neighbors[cls] & report.bgp_neighbors[cls]),
                )
            )
        lines.append(
            "%s,observed_in_bdrmap,trace,%d"
            % (report.name, len(report.trace_only_neighbors))
        )
        lines.append("%s,coverage,,%.4f" % (report.name, report.coverage))
        for row in ROW_ORDER:
            for cls in CLASSES:
                count = report.router_counts.get((row, cls), 0)
                if count:
                    lines.append(
                        '%s,"%s",%s,%.4f'
                        % (report.name, row, cls, report.row_fraction(row, cls))
                    )
        for cls in CLASSES:
            lines.append(
                "%s,neighbor_routers,%s,%d"
                % (report.name, cls, report.neighbor_router_totals.get(cls, 0))
            )
    return "\n".join(lines) + "\n"


def format_table1(reports: List[CoverageReport]) -> str:
    """Render reports side by side in the shape of Table 1."""
    lines: List[str] = []
    header = ["%-20s" % ""]
    for report in reports:
        header.append("| %-28s" % report.name)
    lines.append("".join(header))
    sub = ["%-20s" % ""]
    for _ in reports:
        sub.append("| %6s %6s %6s %6s " % ("cust", "peer", "prov", "trace"))
    lines.append("".join(sub))

    def row(label: str, cells) -> str:
        parts = ["%-20s" % label]
        for cell in cells:
            parts.append("| %s" % cell)
        return "".join(parts)

    lines.append(
        row(
            "Observed in BGP",
            [
                "%6d %6d %6d %6s "
                % (
                    len(r.bgp_neighbors["cust"]),
                    len(r.bgp_neighbors["peer"]),
                    len(r.bgp_neighbors["prov"]),
                    "",
                )
                for r in reports
            ],
        )
    )
    lines.append(
        row(
            "Observed in bdrmap",
            [
                "%6d %6d %6d %6d "
                % (
                    len(r.bdrmap_neighbors["cust"] & r.bgp_neighbors["cust"]),
                    len(r.bdrmap_neighbors["peer"] & r.bgp_neighbors["peer"]),
                    len(r.bdrmap_neighbors["prov"] & r.bgp_neighbors["prov"]),
                    len(r.trace_only_neighbors),
                )
                for r in reports
            ],
        )
    )
    lines.append(
        row(
            "Coverage of BGP",
            ["%27.1f%% " % (100.0 * r.coverage) for r in reports],
        )
    )
    for label in ROW_ORDER:
        if not any(
            r.router_counts.get((label, cls), 0)
            for r in reports
            for cls in CLASSES
        ):
            continue
        cells = []
        for r in reports:
            cells.append(
                "%6s %6s %6s %6s "
                % tuple(
                    (
                        "%.1f%%" % (100.0 * r.row_fraction(label, cls))
                        if r.router_counts.get((label, cls))
                        else ""
                    )
                    for cls in CLASSES
                )
            )
        lines.append(row(label, cells))
    lines.append(
        row(
            "Neighbor routers",
            [
                "%6d %6d %6d %6d "
                % tuple(r.neighbor_router_totals.get(cls, 0) for cls in CLASSES)
                for r in reports
            ],
        )
    )
    return "\n".join(lines)
