"""Figure 16: geographic reach of each VP.

Each row of the figure is one VP (positioned by its longitude); the marks
are the longitudes of the VP-side routers of the interdomain links that VP
observed for a given neighbor.  Akamai-style selective announcement makes
every VP see every link; Level3-style hot-potato routing makes each VP see
only nearby links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.report import BdrmapResult
from ..topology.model import Internet
from .linkid import truth_near_routers


@dataclass
class GeoReport:
    # neighbor AS -> list of (vp longitude, sorted link longitudes)
    rows: Dict[int, List[Tuple[float, List[float]]]] = field(default_factory=dict)

    def longitude_spread(self, neighbor_as: int) -> float:
        """Mean per-VP spread (max-min longitude) of observed links."""
        spreads = [
            max(lons) - min(lons)
            for _, lons in self.rows.get(neighbor_as, [])
            if lons
        ]
        return sum(spreads) / len(spreads) if spreads else 0.0

    def mean_distance_to_vp(self, neighbor_as: int) -> float:
        """Mean |link longitude - VP longitude| — small for hot-potato
        neighbors, large for selective announcers."""
        deltas: List[float] = []
        for vp_lon, lons in self.rows.get(neighbor_as, []):
            deltas.extend(abs(lon - vp_lon) for lon in lons)
        return sum(deltas) / len(deltas) if deltas else 0.0

    def summary(self) -> str:
        lines = ["geography of observed links:"]
        for asn in sorted(self.rows):
            lines.append(
                "  AS%-6d mean |link lon - vp lon| = %.1f°, mean spread = %.1f°"
                % (asn, self.mean_distance_to_vp(asn), self.longitude_spread(asn))
            )
        return "\n".join(lines)


def _vp_longitude(result: BdrmapResult, internet: Internet) -> Optional[float]:
    iface = internet.addr_to_iface.get(result.vp_addr)
    if iface is not None:
        router = internet.routers[iface.router_id]
        pop = _pop_of(internet, router.pop_id)
        return pop.city.lon if pop else None
    # VP addresses are hosts, not router interfaces: find via its prefix's
    # hosting router — fall back to the first trace's first router.
    for path in result.graph.paths:
        for rid in path.routers:
            router = result.graph.routers.get(rid)
            if router is None or not router.addrs:
                continue
            truth = internet.router_of_addr(min(router.addrs))
            if truth is not None:
                pop = _pop_of(internet, truth.pop_id)
                return pop.city.lon if pop else None
    return None


def _pop_of(internet: Internet, pop_id: int):
    for node in internet.ases.values():
        for pop in node.pops:
            if pop.pop_id == pop_id:
                return pop
    return None


def geography_analysis(
    results: Sequence[BdrmapResult],
    internet: Internet,
    neighbor_ases: Sequence[int],
    dns=None,
) -> GeoReport:
    """Locate the VP-side routers of each observed link.

    With ``dns`` (a :class:`repro.datasets.dns.ReverseDNS`), locations come
    from airport codes embedded in interface hostnames — the paper's §6
    methodology ("we used the location information embedded in reverse DNS
    mappings").  Without it, ground-truth PoP locations are used.  DNS mode
    is noisier: unnamed interfaces drop out and stale names mislocate a few
    links, exactly as in real data.
    """
    report = GeoReport()
    pop_index = {}
    for node in internet.ases.values():
        for pop in node.pops:
            pop_index[pop.pop_id] = pop
    for neighbor_as in neighbor_ases:
        rows: List[Tuple[float, List[float]]] = []
        for result in results:
            vp_lon = _vp_longitude(result, internet)
            if vp_lon is None:
                continue
            longitudes: Set[float] = set()
            for link in result.links_with(neighbor_as):
                if dns is not None:
                    near = result.graph.routers.get(link.near_rid)
                    if near is None:
                        continue
                    for addr in near.all_addrs():
                        city = dns.city_hint(addr)
                        if city is not None:
                            longitudes.add(city.lon)
                    continue
                for truth_rid in truth_near_routers(result, internet, link):
                    router = internet.routers.get(truth_rid)
                    if router is None:
                        continue
                    pop = pop_index.get(router.pop_id)
                    if pop is not None:
                        longitudes.add(pop.city.lon)
            rows.append((vp_lon, sorted(longitudes)))
        report.rows[neighbor_as] = rows
    return report
