"""bdrmap reproduction: inference of borders between IP networks.

Public API quickstart::

    from repro import build_scenario, mini, run_bdrmap

    scenario = build_scenario(mini())
    result = run_bdrmap(scenario)
    print(result.summary())

Layers (bottom-up): :mod:`repro.topology` generates a synthetic Internet
with ground truth; :mod:`repro.net` forwards probe packets over it;
:mod:`repro.bgp` and :mod:`repro.datasets` derive the public input data of
§5.2; :mod:`repro.probing` and :mod:`repro.alias` implement the measurement
tools; :mod:`repro.core` is bdrmap itself; :mod:`repro.analysis` scores
results against ground truth and regenerates the paper's tables and
figures.
"""

from .addr import AddressBlock, Prefix, aton, ntoa
from .topology import (
    build_scenario,
    large_access,
    mini,
    re_network,
    small_access,
    tier1,
)
from .core import Bdrmap, BdrmapConfig, BdrmapResult, build_data_bundle
from .core.bdrmap import run_bdrmap

__version__ = "1.0.0"

__all__ = [
    "Prefix",
    "AddressBlock",
    "aton",
    "ntoa",
    "build_scenario",
    "mini",
    "re_network",
    "large_access",
    "tier1",
    "small_access",
    "Bdrmap",
    "BdrmapConfig",
    "BdrmapResult",
    "build_data_bundle",
    "run_bdrmap",
    "__version__",
]
