"""Command-line interface.

Mirrors how a released ``sc_bdrmap`` would be driven, against the built-in
scenarios::

    python -m repro scenario --name large_access        # topology stats
    python -m repro run --name re_network --out run.json --validate
    python -m repro show run.json                       # inspect an archive
    python -m repro study --name large_access --vps 6   # the §6 analyses
    python -m repro table1 --names re_network tier1     # Table 1 columns
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from . import build_data_bundle, build_scenario
from .analysis import (
    coverage_table,
    diversity_analysis,
    format_table1,
    geography_analysis,
    marginal_utility,
    validate_result,
)
from .analysis.validation import neighbor_coverage
from .core.bdrmap import Bdrmap, run_bdrmap
from .io import load_result, save_result
from .topology import SCENARIO_FACTORIES, scenario_config

# The CLI's scenario table is the shared registry: the same names the
# parallel engine's ScenarioSpec uses to rebuild scenarios in workers.
_SCENARIOS: Dict[str, Callable] = SCENARIO_FACTORIES


def _build(name: str, seed: Optional[int]):
    return build_scenario(scenario_config(name, seed=seed))


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    """The observability flags shared by run / chaos / serve-bench."""
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the shared metrics registry (JSON) here; "
                             "inspect with `repro metrics PATH`")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write the span trace (JSON lines) here; "
                             "inspect with `repro trace PATH`")


def _make_obs(args: argparse.Namespace, clock=None, seed: int = 0):
    """Build (metrics, tracer) from the ``--*-out`` flags, or Nones.

    ``clock`` supplies span timestamps (e.g. the network's virtual
    clock); left None, the tracer uses its deterministic internal tick —
    never wall time, so same-seed traces are byte-identical.
    """
    from .obs import MetricsRegistry, Tracer

    metrics = MetricsRegistry() if args.metrics_out else None
    tracer = Tracer(clock=clock, seed=seed) if args.trace_out else None
    return metrics, tracer


def _write_obs(args: argparse.Namespace, metrics, tracer) -> None:
    if metrics is not None:
        metrics.write_json(args.metrics_out)
        print("metrics written to %s" % args.metrics_out)
    if tracer is not None:
        tracer.write_jsonl(args.trace_out)
        print("trace written to %s (%d spans)"
              % (args.trace_out, len(tracer.spans)))


def _cmd_scenario(args: argparse.Namespace) -> int:
    scenario = _build(args.name, args.seed)
    stats = scenario.internet.stats()
    print("scenario %s (seed %d)" % (args.name, scenario.config.asgen.seed))
    for key in sorted(stats):
        print("  %-22s %d" % (key, stats[key]))
    print("  %-22s %d" % ("vps", len(scenario.vps)))
    print("  %-22s AS%d (siblings: %s)" % (
        "focal network", scenario.focal_asn,
        ",".join(str(a) for a in scenario.vp_as_list)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .core.bdrmap import BdrmapConfig
    from .core.heuristics import HeuristicConfig

    scenario = _build(args.name, args.seed)
    data = build_data_bundle(scenario)
    config = BdrmapConfig(
        heuristics=HeuristicConfig(use_refinement=args.refine)
    )
    if args.fault_profile != "clean":
        from .net.faults import make_fault_plan
        from .probing.retry import RetryPolicy

        scenario.network.faults = make_fault_plan(
            args.fault_profile, seed=args.fault_seed
        )
        # Faulted runs get retry/backoff probing so loss is recoverable.
        config.collection.retry = RetryPolicy()
    if args.share_stop_sets:
        config.collection.share_stop_sets = True
    # Span timestamps come from the simulation's virtual clock, so a
    # trace is a map of where simulated time went — and deterministic.
    metrics, tracer = _make_obs(
        args, clock=lambda: scenario.network.now, seed=args.seed or 0
    )
    if args.all_vps:
        return _run_all_vps(args, scenario, data, config, metrics, tracer)
    if not 0 <= args.vp < len(scenario.vps):
        print("error: scenario has %d VPs" % len(scenario.vps), file=sys.stderr)
        return 2
    if metrics is not None:
        scenario.network.attach_metrics(metrics)
    driver = Bdrmap(
        scenario.network, scenario.vps[args.vp], data, config,
        metrics=metrics, tracer=tracer,
    )
    result = driver.run()
    print(result.summary())
    if scenario.network.faults is not None:
        print(scenario.network.faults.stats.summary())
    if args.links:
        print(result.link_table())
    if args.validate:
        report = validate_result(result, scenario.internet)
        print(report.summary())
        covered, total, fraction = neighbor_coverage(result, scenario.internet)
        print("neighbor coverage: %d/%d (%.1f%%)" % (covered, total, 100 * fraction))
    if args.out:
        save_result(result, args.out)
        print("saved to %s" % args.out)
    if args.bundle:
        from .io import save_bundle

        save_bundle(args.bundle, scenario, data, collection=driver.collection)
        print("inputs + traces bundled to %s/" % args.bundle)
    _write_obs(args, metrics, tracer)
    return 0


def _run_all_vps(args, scenario, data, config, metrics=None, tracer=None) -> int:
    """``run --all-vps``: the orchestrated multi-VP run (§5.8).

    ``--workers N`` switches to the parallel collection engine: VPs are
    sharded across worker processes, each running against its own
    simulator under per-VP isolation, and the merged run is byte-identical
    for any worker count (``--workers 1`` is the inline baseline).
    """
    if args.workers is not None:
        from .core.parallel import ParallelOrchestrator, ScenarioSpec

        spec = ScenarioSpec.make(
            args.name,
            seed=args.seed,
            fault_profile=args.fault_profile,
            fault_seed=args.fault_seed,
        )
        orchestrator = ParallelOrchestrator(
            spec,
            scenario=scenario,
            data=data,
            config=config,
            workers=args.workers,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            metrics=metrics,
            tracer=tracer,
        )
    else:
        from .core.orchestrator import MultiVPOrchestrator

        orchestrator = MultiVPOrchestrator(
            scenario,
            data=data,
            config=config,
            share_alias_evidence=not args.no_shared_aliases,
            interleave=not args.sequential,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            metrics=metrics,
            tracer=tracer,
        )
    run = orchestrator.run()
    if orchestrator.resumed_vps:
        print(
            "resumed from %s: skipped %s"
            % (args.checkpoint, ", ".join(sorted(orchestrator.resumed_vps)))
        )
    print(run.report.summary())
    if args.links:
        for result in run.results:
            print()
            print("%s:" % result.vp_name)
            print(result.link_table())
    if args.validate:
        for result in run.results:
            report = validate_result(result, scenario.internet)
            covered, total, fraction = neighbor_coverage(
                result, scenario.internet
            )
            print("%s: %s" % (result.vp_name, report.summary()))
            print(
                "%s: neighbor coverage %d/%d (%.1f%%)"
                % (result.vp_name, covered, total, 100 * fraction)
            )
    if args.out:
        from .io import save_report

        save_report(run.report, args.out)
        print("report saved to %s" % args.out)
    if args.run_out:
        from .io import orchestrated_run_to_dict

        with open(args.run_out, "w") as handle:
            json.dump(orchestrated_run_to_dict(run), handle,
                      indent=1, sort_keys=True)
        print("run saved to %s" % args.run_out)
    _write_obs(args, metrics, tracer)
    return 0


def _load_or_fail(loader, path: str, what: str):
    """Load an archive, turning the predictable failure modes (missing
    file, not JSON, unknown schema version) into a clear CLI error
    instead of a traceback.  Returns None after printing the error."""
    from .errors import DataError

    try:
        return loader(path)
    except FileNotFoundError:
        print("error: %s %r does not exist" % (what, path), file=sys.stderr)
    except IsADirectoryError:
        print("error: %s %r is a directory, not a file" % (what, path),
              file=sys.stderr)
    except json.JSONDecodeError as exc:
        print("error: %s %r is not valid JSON (%s)" % (what, path, exc),
              file=sys.stderr)
    except DataError as exc:
        print("error: cannot read %s %r: %s" % (what, path, exc),
              file=sys.stderr)
    except OSError as exc:
        print("error: cannot open %s %r: %s" % (what, path, exc),
              file=sys.stderr)
    return None


def _cmd_report(args: argparse.Namespace) -> int:
    """Inspect an archived run report."""
    from .analysis.coverage import pass_table
    from .io import load_report

    report = _load_or_fail(load_report, args.path, "report")
    if report is None:
        return 2
    print(report.summary())
    if args.passes or args.format == "table":
        print()
        print(pass_table(report))
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    """Compile results (from a checkpoint or result files) into a
    BorderMap artifact."""
    from .io import load_checkpoint, save_border_map
    from .serving import compile_border_map

    results = []
    if args.checkpoint:
        loaded = _load_or_fail(load_checkpoint, args.checkpoint, "checkpoint")
        if loaded is None:
            return 2
        results.extend(loaded[0])
    for path in args.results:
        result = _load_or_fail(load_result, path, "result")
        if result is None:
            return 2
        results.append(result)
    if not results:
        print("error: nothing to compile (give --checkpoint and/or results)",
              file=sys.stderr)
        return 2
    view = rels = None
    source = args.checkpoint or ",".join(args.results)
    if args.name:
        scenario = _build(args.name, args.seed)
        data = build_data_bundle(scenario)
        view, rels = data.view, data.rels
        source += " + %s bundle" % args.name
    bmap = compile_border_map(
        results, view=view, rels=rels, epoch=args.epoch, source=source
    )
    save_border_map(bmap, args.out, format=args.format)
    print("compiled epoch %d border map from %d result(s): %s"
          % (bmap.epoch, len(results),
             ", ".join("%s=%d" % (k, v)
                       for k, v in sorted(bmap.stats().items()))))
    print("saved to %s (%s)" % (args.out, args.format))
    return 0


def _parse_query(text: str):
    """One query: ``owner A.B.C.D``, ``border A.B.C.D``, ``neighbors ASN``."""
    from .addr import aton

    parts = text.split()
    if len(parts) != 2 or parts[0] not in ("owner", "border", "neighbors"):
        raise ValueError(
            "bad query %r (want 'owner IP', 'border IP', or 'neighbors ASN')"
            % text
        )
    op, operand = parts
    key = int(operand) if op == "neighbors" else aton(operand)
    return op, key


def _format_answer(answer) -> str:
    from .addr import ntoa

    value = answer.value
    if value is None:
        body = "no answer"
    elif answer.op == "owner":
        where = ("router %d" % value.router
                 if value.router is not None else "prefix")
        body = "AS%d (%s, via %s)" % (value.asn, value.source, where)
    elif answer.op == "border":
        body = "; ".join(
            "%s r%d -> AS%d (%s, %s)"
            % (link.vp_name, link.near_router, link.neighbor_as,
               link.relationship, link.reason)
            for link in value
        ) or "no border observed"
    else:
        body = "AS%d: %s, %d link(s), confidence %.2f" % (
            value.asn, value.relationship, len(value.links),
            value.best_confidence,
        )
    key = str(answer.key) if answer.op == "neighbors" else ntoa(answer.key)
    line = "%-9s %-15s -> %s" % (answer.op, key, body)
    if answer.degraded:
        line += "  [degraded: %s]" % (answer.note or "unspecified")
    return line


def _gather_queries(query_args, batch_path):
    """Flatten CLI query tokens (plus an optional batch file) into
    (op, key) pairs; prints the error and returns None on bad input.

    The shell splits ``owner 1.2.3.4 neighbors 64500`` into single
    tokens; quoted whole queries arrive pre-joined.  Flatten and
    re-pair so both spellings work.
    """
    from .errors import AddressError

    requests = []
    try:
        tokens = [t for text in query_args for t in text.split()]
        if len(tokens) % 2:
            raise ValueError(
                "queries come in pairs: 'owner IP', 'border IP', "
                "or 'neighbors ASN' (got %r)" % " ".join(tokens)
            )
        for start in range(0, len(tokens), 2):
            requests.append(
                _parse_query(" ".join(tokens[start:start + 2]))
            )
        if batch_path:
            with open(batch_path) as handle:
                for line in handle:
                    line = line.strip()
                    if line and not line.startswith("#"):
                        requests.append(_parse_query(line))
    except (ValueError, AddressError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return None
    except OSError as exc:
        print("error: cannot read batch file: %s" % exc, file=sys.stderr)
        return None
    return requests


def _cmd_query(args: argparse.Namespace) -> int:
    """Answer queries against a compiled BorderMap artifact (JSON or
    binary — sniffed by magic unless --format forces a loader)."""
    from .io import load_border_map
    from .serving import BorderMapService

    if args.format == "binary":
        from .serving import load_compiled_map

        loader = load_compiled_map
    elif args.format == "json":
        def loader(path):
            with open(path) as handle:
                return load_border_map(handle)
    else:
        loader = load_border_map
    bmap = _load_or_fail(loader, args.map, "border map")
    if bmap is None:
        return 2
    requests = _gather_queries(args.query, args.batch)
    if requests is None:
        return 2
    if not requests:
        print("error: no queries (give QUERY arguments or --batch FILE)",
              file=sys.stderr)
        return 2
    service = BorderMapService(bmap)
    for answer in service.batch(requests):
        print(_format_answer(answer))
    if args.stats:
        print()
        print(service.summary())
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """End-to-end serving throughput: infer, compile, benchmark."""
    from .serving.bench import run_compiled_benchmark, run_serving_benchmark

    if args.format == "binary":
        # The compiled-data-plane race: flat array-backed map vs the
        # dict engine, plus the mmap-vs-JSON artifact load race.
        summary = run_compiled_benchmark(
            scenario_name=args.name,
            seed=args.seed,
            queries=args.queries,
            repeats=args.repeats,
            build=_build,
        )
        print(summary.text())
        if args.out:
            summary.write_json(args.out)
            print("wrote %s" % args.out)
        if summary.speedup_lookup < args.min_speedup:
            print(
                "error: compiled lookups are only %.1fx the dict engine "
                "(want >= %.1fx)"
                % (summary.speedup_lookup, args.min_speedup),
                file=sys.stderr,
            )
            return 1
        return 0

    metrics, tracer = _make_obs(args, seed=args.seed or 0)
    summary = run_serving_benchmark(
        scenario_name=args.name,
        seed=args.seed,
        queries=args.queries,
        repeats=args.repeats,
        batch_size=args.batch_size,
        build=_build,
        metrics=metrics,
        tracer=tracer,
    )
    print(summary.text())
    if args.out:
        summary.write_json(args.out)
        print("wrote %s" % args.out)
    _write_obs(args, metrics, tracer)
    if summary.speedup_batched < args.min_speedup:
        print(
            "error: warm batched path is only %.1fx the naive baseline "
            "(want >= %.1fx)" % (summary.speedup_batched, args.min_speedup),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Answer queries through the fault-tolerant sharded tier (or run
    its open-loop load benchmark with --bench)."""
    if args.bench and args.use_async:
        from .serving.bench import run_async_benchmark

        summary = run_async_benchmark(
            scenario_name=args.name,
            seed=args.seed,
            requests=args.requests,
            dup_factor=args.dup_factor,
            shards=args.shards,
            build=_build,
        )
        print(summary.text())
        if args.out:
            summary.write_json(args.out)
            print("wrote %s" % args.out)
        return 0
    if args.bench:
        from .serving.bench import run_service_benchmark

        summary = run_service_benchmark(
            scenario_name=args.name,
            seed=args.seed,
            requests=args.requests,
            burst=args.burst,
            shards=args.shards,
            max_inflight=args.max_inflight,
            offered_qps=args.offered_qps,
            build=_build,
        )
        print(summary.text())
        if args.out:
            summary.write_json(args.out)
            print("wrote %s" % args.out)
        return 0

    from .io import load_border_map
    from .serving import close_backend
    from .serving.server import make_local_server, make_process_server

    if not args.map:
        print("error: serve needs --map ARTIFACT (or --bench)",
              file=sys.stderr)
        return 2
    # One probe load up front: validates the artifact and reads its
    # epoch before any shard is started.
    probe = _load_or_fail(load_border_map, args.map, "border map")
    if probe is None:
        return 2
    epoch = probe.epoch
    close_backend(probe)
    requests = _gather_queries(args.query, args.batch)
    if requests is None:
        return 2
    if not requests:
        print("error: no queries (give QUERY arguments or --batch FILE)",
              file=sys.stderr)
        return 2
    clock = None
    if args.processes:
        server = make_process_server(
            args.map, epoch=epoch, shards=args.shards,
            max_inflight=args.max_inflight,
        )
    else:
        server, clock = make_local_server(
            args.map, epoch=epoch, shards=args.shards,
            max_inflight=args.max_inflight,
        )
    frontend = None
    if args.use_async:
        from .serving.frontend import make_async_frontend

        frontend = make_async_frontend(server)

    def _answer(batch_requests):
        if frontend is not None:
            return frontend.batch_sync(batch_requests)
        return server.batch(batch_requests)

    try:
        for answer in _answer(requests):
            print(_format_answer(answer))
        if args.swap:
            swap_epoch = (args.swap_epoch if args.swap_epoch is not None
                          else epoch + 1)
            if frontend is not None:
                token = frontend.swap_sync(args.swap, epoch=swap_epoch)
            else:
                token = server.swap(args.swap, epoch=swap_epoch)
            if token is None:
                print("error: swap rolled back; still serving epoch %d"
                      % server.committed_epoch, file=sys.stderr)
                return 1
            for _ in range(10):
                if clock is not None:
                    clock.advance(2.0)
                server.tick()
                if server.converged():
                    break
            print("swapped to %s (epoch %d, token %d)"
                  % (args.swap, server.committed_epoch, token))
            for answer in _answer(requests):
                print(_format_answer(answer))
        if args.stats:
            print()
            if frontend is not None:
                print(frontend.summary())
            else:
                print(server.summary())
    finally:
        if frontend is not None:
            frontend.close()
        server.close()
    return 0


def _telemetry_server(args: argparse.Namespace):
    """Stand up a sharded server with telemetry on for health/top.

    Returns ``(server, clock, workload)`` — ``clock`` is None for
    process-backed shards — or None when the artifact cannot load.
    The workload is a deterministic sample derived from the map itself,
    used to exercise the tier so latency histograms have data.
    """
    from .io import load_border_map
    from .obs import MetricsRegistry, Tracer
    from .serving import close_backend, make_workload
    from .serving.server import make_local_server, make_process_server

    probe = _load_or_fail(load_border_map, args.map, "border map")
    if probe is None:
        return None
    epoch = probe.epoch
    workload = make_workload(probe, None, args.queries, seed=args.seed)
    close_backend(probe)
    metrics = MetricsRegistry()
    tracer = Tracer(seed=args.seed)
    clock = None
    if args.processes:
        server = make_process_server(
            args.map, epoch=epoch, shards=args.shards,
            max_inflight=args.max_inflight, metrics=metrics, tracer=tracer,
        )
    else:
        server, clock = make_local_server(
            args.map, epoch=epoch, shards=args.shards,
            max_inflight=args.max_inflight, metrics=metrics, tracer=tracer,
        )
    return server, clock, workload


def _slo_from_args(args: argparse.Namespace):
    from .obs import SLO

    return SLO(
        p99_ms=args.slo_p99_ms,
        shed_rate=args.slo_shed_rate,
        degraded_rate=args.slo_degraded_rate,
        min_healthy_fraction=args.slo_min_healthy,
        require_converged=not args.no_require_converged,
    )


def _cmd_health(args: argparse.Namespace) -> int:
    """One-shot SLO health report for the sharded tier.

    Drives a sample workload through the server (so the harvested
    latency histograms have data), runs a supervision pass, harvests
    every shard's registry, and prints the scored report — a table by
    default, JSON with ``--json`` (the scripting surface), Prometheus
    text with ``--prom``.  Exit code 1 when any SLO check fails.
    """
    from .obs import build_health_report, render_prometheus

    made = _telemetry_server(args)
    if made is None:
        return 2
    server, clock, workload = made
    try:
        for start in range(0, len(workload), args.max_inflight):
            server.batch(workload[start:start + args.max_inflight])
        if clock is not None:
            clock.advance(1.0)
        server.tick()
        report = build_health_report(server, slo=_slo_from_args(args))
        if args.json:
            print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
        elif args.prom:
            print(render_prometheus(server.metrics), end="")
        else:
            print(report.table())
        if args.metrics_out:
            server.metrics.write_json(args.metrics_out)
        if args.trace_out:
            server.write_merged_trace(args.trace_out)
        return 0 if report.ok else 1
    finally:
        server.close()


def _cmd_top(args: argparse.Namespace) -> int:
    """A refreshing live health table — htop for the shard tier.

    Each refresh drives one admission-sized wave of the sample
    workload, ticks the supervisor (harvesting shard telemetry), and
    redraws the SLO-scored table.  ``--iterations 0`` runs until
    interrupted.
    """
    import time

    from .obs import build_health_report

    made = _telemetry_server(args)
    if made is None:
        return 2
    server, clock, workload = made
    slo = _slo_from_args(args)
    refreshed = 0
    position = 0
    try:
        while args.iterations == 0 or refreshed < args.iterations:
            if workload:
                wave = [
                    workload[(position + i) % len(workload)]
                    for i in range(min(args.max_inflight, len(workload)))
                ]
                position += len(wave)
                server.batch(wave)
            if clock is not None:
                clock.advance(1.0)
            server.tick()
            report = build_health_report(server, slo=slo)
            refreshed += 1
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            tail = "" if args.iterations == 0 else "/%d" % args.iterations
            print("repro top — refresh %d%s  (interval %.1fs)"
                  % (refreshed, tail, args.interval))
            print(report.table())
            sys.stdout.flush()
            more = args.iterations == 0 or refreshed < args.iterations
            if more and args.interval > 0:
                time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    """Offline inference over an archived bundle — no probing at all."""
    from .core.bdrmap import BdrmapConfig, infer_from_collection
    from .core.heuristics import HeuristicConfig
    from .io import load_bundle

    data, collection = load_bundle(args.bundle)
    if collection is None:
        print("error: bundle has no traces.json", file=sys.stderr)
        return 2
    config = BdrmapConfig(
        heuristics=HeuristicConfig(use_refinement=args.refine)
    )
    result = infer_from_collection(collection, data, config=config)
    print(result.summary())
    if args.links:
        print(result.link_table())
    if args.out:
        save_result(result, args.out)
        print("saved to %s" % args.out)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Print one router's decision provenance from a saved result."""
    result = _load_or_fail(load_result, args.path, "result")
    if result is None:
        return 2
    if "." in args.router:
        from .addr import aton
        from .errors import AddressError

        try:
            addr = aton(args.router)
        except AddressError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        rid = result.graph.by_addr.get(addr)
        if rid is None:
            print("error: %s is not an observed interface in %s"
                  % (args.router, args.path), file=sys.stderr)
            return 2
    else:
        try:
            rid = int(args.router)
        except ValueError:
            print("error: ROUTER must be a router id or a dotted-quad "
                  "interface address (got %r)" % args.router, file=sys.stderr)
            return 2
    print(result.explain(rid))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Pretty-print a metrics registry written by ``--metrics-out``."""
    from .obs import load_metrics, registry_from_dict

    payload = _load_or_fail(load_metrics, args.path, "metrics file")
    if payload is None:
        return 2
    registry = registry_from_dict(payload)
    if args.prefix:
        for name, value in sorted(
            registry.counters_with_prefix(args.prefix).items()
        ):
            print("%-44s %12d" % (name, value))
    else:
        print(registry.summary())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Profile a span trace written by ``--trace-out``."""
    from .obs import format_span_tree, load_trace, profile_spans, \
        profile_table

    spans = _load_or_fail(load_trace, args.path, "trace file")
    if spans is None:
        return 2
    if args.tree:
        print(format_span_tree(spans))
    else:
        print(profile_table(profile_spans(spans)))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    result = load_result(args.path)
    print(result.summary())
    if args.links:
        print(result.link_table())
    if args.explain is not None:
        print(result.explain(args.explain))
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    factory = _SCENARIOS[args.name]
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.vps is not None and args.name == "large_access":
        kwargs["n_vps"] = args.vps
    scenario = build_scenario(factory(**kwargs))
    data = build_data_bundle(scenario)
    results = [Bdrmap(scenario.network, vp, data).run() for vp in scenario.vps]
    print("measured %d VPs" % len(results))
    diversity = diversity_analysis(results, data.view, scenario.internet)
    print(diversity.summary())
    study_ases = scenario.state.dense_peer_asns + scenario.state.cdn_peer_asns
    if study_ases:
        marginal = marginal_utility(results, scenario.internet, study_ases)
        print(marginal.summary())
        geo = geography_analysis(results, scenario.internet, study_ases)
        print(geo.summary())
        if args.plot:
            from .analysis.plots import text_curve, text_scatter_rows

            curves = {}
            if scenario.state.dense_peer_asns:
                curves["dense"] = marginal.curves[
                    scenario.state.dense_peer_asns[0]
                ]
            if scenario.state.cdn_peer_asns:
                curves["cdn"] = marginal.curves[scenario.state.cdn_peer_asns[0]]
            print()
            print("Fig 15 (links discovered vs VPs):")
            print(text_curve(curves, x_label="VPs added"))
            for asn in study_ases[:2]:
                print()
                print("Fig 16 rows for AS%d (o = VP, * = links):" % asn)
                print(text_scatter_rows(geo.rows[asn]))
    return 0


def _cmd_congest(args: argparse.Namespace) -> int:
    """The §2 application: map borders, induce congestion, detect it."""
    from .congestion import (
        TSLPMonitor,
        detect_congestion,
        probe_targets_from_result,
    )
    from .net.congestion import CongestionProfile
    from .topology.model import LinkKind

    scenario = _build(args.name, args.seed)
    data = build_data_bundle(scenario)
    result = run_bdrmap(scenario, data=data)
    targets = probe_targets_from_result(result)
    congested = set()
    for target in targets:
        if len(congested) >= args.links:
            break
        iface = scenario.internet.addr_to_iface.get(target.far_addr)
        if iface is None:
            continue
        link = scenario.internet.links[iface.link_id]
        if link.kind is LinkKind.INTRA:
            continue
        scenario.network.congestion.congest(
            link.link_id, CongestionProfile(peak_ms=args.peak_ms)
        )
        congested.add((target.near_rid, target.far_rid))
    monitor = TSLPMonitor(
        scenario.network, scenario.vps[0].addr, targets, interval=1800.0
    )
    report = monitor.run(duration=args.days * 86400.0)
    hits = false_alarms = 0
    for key, series in sorted(report.series.items()):
        assessment = detect_congestion(series)
        detected = assessment.verdict.value == "congested"
        if detected and key in congested:
            hits += 1
        elif detected:
            false_alarms += 1
    print(
        "monitored %d links for %d days: detected %d/%d congested, "
        "%d false alarms"
        % (len(targets), args.days, hits, len(congested), false_alarms)
    )
    return 0


def _cmd_shard_chaos(args: argparse.Namespace) -> int:
    """Kill replicas of the sharded serving tier mid-batch and mid-swap
    and audit every answer against a single-process oracle."""
    import os
    import tempfile

    from .analysis.chaos import run_shard_chaos
    from .io import save_border_map
    from .net.faults import ChannelFaultPolicy
    from .serving import compile_border_map, make_workload

    scenario = _build(args.name, args.seed)
    data = build_data_bundle(scenario)
    result = run_bdrmap(scenario, data=data)
    bmap = compile_border_map(
        [result], view=data.view, rels=data.rels, epoch=1,
        source="shard-chaos %s" % args.name,
    )
    swap_map = compile_border_map(
        [result], view=data.view, rels=data.rels, epoch=2,
        source="shard-chaos swap %s" % args.name,
    )
    workload = make_workload(bmap, data.view, args.queries,
                             seed=args.fault_seed)
    faults = None
    if args.channel_profile:
        from .net.faults import make_channel_faults

        faults = make_channel_faults(args.channel_profile)
    elif args.drop or args.garble or args.sever:
        faults = ChannelFaultPolicy(
            drop_rate=args.drop, garble_rate=args.garble,
            sever_rate=args.sever,
        )
    metrics, tracer = _make_obs(args, seed=args.fault_seed)
    with tempfile.TemporaryDirectory(prefix="bdrmap-chaos-") as workdir:
        old_path = os.path.join(workdir, "map-epoch1.json")
        new_path = os.path.join(workdir, "map-epoch2.json")
        save_border_map(bmap, old_path)
        save_border_map(swap_map, new_path)
        report = run_shard_chaos(
            old_path, workload, swap_path=new_path, swap_epoch=2,
            shards=args.shards, seed=args.fault_seed, faults=faults,
            metrics=metrics, tracer=tracer,
        )
    print(report.summary())
    _write_obs(args, metrics, tracer)
    return 0 if report.degrades_gracefully() else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos suite: accuracy vs escalating packet loss (or,
    with --shards, replica kills against the sharded serving tier)."""
    if args.shards:
        return _cmd_shard_chaos(args)

    from .analysis.chaos import run_chaos_suite

    def make_scenario():
        return _build(args.name, args.seed)

    metrics, tracer = _make_obs(args, seed=args.seed or 0)
    report = run_chaos_suite(
        make_scenario=make_scenario,
        scenario_name=args.name,
        loss_rates=tuple(rate / 100.0 for rate in args.loss),
        burst=args.burst,
        fault_seed=args.fault_seed,
        metrics=metrics,
        tracer=tracer,
    )
    print(report.summary())
    _write_obs(args, metrics, tracer)
    return 0 if report.degrades_gracefully() else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    reports = []
    for name in args.names:
        scenario = _build(name, args.seed)
        data = build_data_bundle(scenario)
        result = run_bdrmap(scenario, data=data)
        reports.append(coverage_table(result, data, name))
    if args.csv:
        from .analysis.coverage import table1_csv

        print(table1_csv(reports), end="")
    else:
        print(format_table1(reports))
    return 0


def _cmd_epoch(args: argparse.Namespace) -> int:
    from .core.epochs import EpochRunner, apply_seeded_churn, replay_chain

    scenario = _build(args.name, args.seed)
    metrics, tracer = _make_obs(
        args, clock=lambda: scenario.network.now, seed=args.seed or 0
    )
    runner = EpochRunner(
        scenario,
        out_dir=args.out_dir,
        source="cli:%s" % args.name,
        force_full=args.full,
        metrics=metrics,
        tracer=tracer,
    )
    churn_seed = args.churn_seed
    if churn_seed is None:
        churn_seed = scenario.config.asgen.seed
    for epoch in range(args.epochs):
        if epoch:
            events = apply_seeded_churn(
                scenario, seed=churn_seed, epoch=epoch,
                fraction=args.churn,
            )
            print("epoch %d churn: %s" % (
                epoch, ", ".join(e.kind for e in events)))
        record = runner.run_epoch()
        cost = record.cost
        print(
            "epoch %d [%s]: probes=%d traces=%d+%d replayed "
            "routers=%d live+%d replayed compile=%.1fms "
            "sections=%d patched"
            % (
                record.epoch, record.mode, cost.probes,
                cost.traces_probed, cost.traces_replayed,
                cost.routers_live, cost.routers_replayed,
                cost.compile_seconds * 1e3, cost.sections_patched,
            )
        )
        if record.diff is not None:
            diff = record.diff
            print(
                "  diff: +%d/-%d neighbors, +%d/-%d links, %d stable"
                % (
                    len(diff["gained_neighbors"]),
                    len(diff["lost_neighbors"]),
                    len(diff["added_links"]),
                    len(diff["removed_links"]),
                    diff["stable_links"],
                )
            )
    chain_path = runner.save_chain()
    if chain_path is not None:
        print("epoch chain written to %s" % chain_path)
    if args.verify:
        if chain_path is None:
            print("--verify needs --out-dir (no artifacts were saved)",
                  file=sys.stderr)
            return 2
        verified = replay_chain(chain_path)
        print("chain replay verified %d artifacts (patches reproduce "
              "every epoch byte-for-byte)" % len(verified))
    _write_obs(args, metrics, tracer)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="bdrmap reproduction (IMC 2016)"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_scenario = subparsers.add_parser("scenario", help="print topology stats")
    p_scenario.add_argument("--name", choices=sorted(_SCENARIOS), default="mini")
    p_scenario.add_argument("--seed", type=int, default=None)
    p_scenario.set_defaults(func=_cmd_scenario)

    p_run = subparsers.add_parser("run", help="run bdrmap from one VP")
    p_run.add_argument("--name", choices=sorted(_SCENARIOS), default="mini")
    p_run.add_argument("--seed", type=int, default=None)
    p_run.add_argument("--vp", type=int, default=0)
    p_run.add_argument("--out", default=None, help="save result JSON here")
    p_run.add_argument("--links", action="store_true", help="print link table")
    p_run.add_argument("--validate", action="store_true",
                       help="score against ground truth")
    p_run.add_argument("--refine", action="store_true",
                       help="enable the bdrmapIT-style ownership refinement")
    p_run.add_argument("--bundle", default=None, metavar="DIR",
                       help="archive the §5.2 inputs + traces for offline "
                            "re-analysis with `infer`")
    p_run.add_argument("--all-vps", action="store_true",
                       help="orchestrate every VP of the scenario (§5.8); "
                            "--out then saves the run report")
    p_run.add_argument("--sequential", action="store_true",
                       help="with --all-vps: run VPs one after another "
                            "instead of interleaving their probing")
    p_run.add_argument("--workers", type=int, default=None, metavar="N",
                       help="with --all-vps: shard VPs across N worker "
                            "processes (per-VP isolation; results are "
                            "byte-identical for any N, and --workers 1 "
                            "is the inline baseline)")
    p_run.add_argument("--run-out", default=None, metavar="PATH",
                       help="with --all-vps: save the full serialized "
                            "run (report + every per-VP result) here — "
                            "the byte-identity yardstick across "
                            "--workers counts")
    p_run.add_argument("--share-stop-sets", action="store_true",
                       help="share the doubletree stop set across target "
                            "ASes (fewer redundant border crossings, at "
                            "some per-target egress fidelity cost)")
    p_run.add_argument("--no-shared-aliases", action="store_true",
                       help="with --all-vps: give each VP its own alias "
                            "resolver instead of sharing evidence")
    p_run.add_argument("--fault-profile", default="clean",
                       choices=["clean", "light", "moderate", "heavy"],
                       help="inject faults (loss, storms, blackouts, "
                            "flaps) at the named severity; non-clean "
                            "profiles enable retry/backoff probing")
    p_run.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the deterministic fault plan")
    p_run.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="with --all-vps: write per-VP progress here "
                            "after each VP completes")
    p_run.add_argument("--resume", action="store_true",
                       help="with --all-vps --checkpoint: reload the "
                            "checkpoint and skip already-completed VPs")
    _add_obs_args(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_report = subparsers.add_parser(
        "report", help="inspect a saved multi-VP run report"
    )
    p_report.add_argument("path", help="report JSON from `run --all-vps --out`")
    p_report.add_argument("--passes", action="store_true",
                          help="print the per-heuristic-pass table")
    p_report.add_argument("--format", choices=("text", "table"),
                          default="text",
                          help="'table' appends the per-pass summary "
                               "(which §5.4 pass claimed how many routers)")
    p_report.set_defaults(func=_cmd_report)

    p_compile = subparsers.add_parser(
        "compile", help="compile results into a served BorderMap artifact"
    )
    p_compile.add_argument("results", nargs="*",
                           help="result JSON files from `run --out`")
    p_compile.add_argument("--checkpoint", default=None, metavar="PATH",
                           help="also compile every result in this "
                                "checkpoint from `run --all-vps --checkpoint`")
    p_compile.add_argument("--out", required=True,
                           help="write the border map artifact here")
    p_compile.add_argument("--epoch", type=int, default=0,
                           help="epoch tag for the artifact (hot-swap "
                                "ordering)")
    p_compile.add_argument("--name", choices=sorted(_SCENARIOS), default=None,
                           help="rebuild this scenario's data bundle to "
                                "include the BGP LPM index and relationship "
                                "labels")
    p_compile.add_argument("--seed", type=int, default=None)
    p_compile.add_argument("--format", choices=("json", "binary"),
                           default="json",
                           help="'binary' writes the mmap-able flat "
                                "artifact (zero-copy load, pages shared "
                                "across worker processes); 'json' the "
                                "human-readable dict artifact")
    p_compile.set_defaults(func=_cmd_compile)

    p_query = subparsers.add_parser(
        "query", help="answer queries against a compiled border map"
    )
    p_query.add_argument("map", help="artifact from `compile --out`")
    p_query.add_argument("query", nargs="*",
                         help="queries like 'owner 1.2.3.4', "
                              "'border 1.2.3.4', 'neighbors 64500'")
    p_query.add_argument("--batch", default=None, metavar="FILE",
                         help="file of queries, one per line (# comments ok)")
    p_query.add_argument("--stats", action="store_true",
                         help="print service/cache statistics")
    p_query.add_argument("--format", choices=("auto", "json", "binary"),
                         default="auto",
                         help="force the artifact loader (default: sniff "
                              "the file magic)")
    p_query.set_defaults(func=_cmd_query)

    p_bench = subparsers.add_parser(
        "serve-bench", help="serving throughput: infer, compile, benchmark"
    )
    p_bench.add_argument("--name", choices=sorted(_SCENARIOS), default="mini")
    p_bench.add_argument("--seed", type=int, default=None)
    p_bench.add_argument("--queries", type=int, default=2000,
                         help="distinct queries in the workload")
    p_bench.add_argument("--repeats", type=int, default=5,
                         help="passes over the workload per timed path")
    p_bench.add_argument("--batch-size", type=int, default=64)
    p_bench.add_argument("--out", default=None, metavar="PATH",
                         help="write the machine-readable summary here "
                              "(BENCH_serving.json)")
    p_bench.add_argument("--min-speedup", type=float, default=1.0,
                         help="exit nonzero unless warm batched beats the "
                              "naive baseline by this factor (--format "
                              "binary: unless compiled lookups beat the "
                              "dict engine by this factor)")
    p_bench.add_argument("--format", choices=("json", "binary"),
                         default="json",
                         help="'binary' benches the compiled flat data "
                              "plane against the dict engine (writes "
                              "BENCH_compiled.json with --out)")
    _add_obs_args(p_bench)
    p_bench.set_defaults(func=_cmd_serve_bench)

    p_serve = subparsers.add_parser(
        "serve",
        help="answer queries through the fault-tolerant sharded tier",
    )
    p_serve.add_argument("query", nargs="*",
                         help="'owner IP' | 'border IP' | 'neighbors ASN'")
    p_serve.add_argument("--map", default=None,
                         help="compiled BorderMap artifact (JSON or binary)")
    p_serve.add_argument("--batch", default=None, metavar="FILE",
                         help="file with one query per line")
    p_serve.add_argument("--shards", type=int, default=3,
                         help="replica count")
    p_serve.add_argument("--max-inflight", type=int, default=256,
                         help="admission-control cap per batch wave")
    p_serve.add_argument("--processes", action="store_true",
                         help="spawn one OS process per shard (default: "
                              "in-process replicas on a virtual clock)")
    p_serve.add_argument("--swap", default=None, metavar="PATH",
                         help="after answering, two-phase hot-swap to this "
                              "artifact and answer again")
    p_serve.add_argument("--swap-epoch", type=int, default=None,
                         help="epoch the --swap artifact serves as "
                              "(default: current epoch + 1)")
    p_serve.add_argument("--stats", action="store_true",
                         help="print server + supervisor summary")
    p_serve.add_argument("--bench", action="store_true",
                         help="run the open-loop load benchmark instead of "
                              "answering queries (writes BENCH_service.json "
                              "with --out)")
    p_serve.add_argument("--async", dest="use_async", action="store_true",
                         help="route through the coalescing async front "
                              "end (with --bench: race it against the "
                              "sync batch path, writes BENCH_async.json "
                              "with --out)")
    p_serve.add_argument("--dup-factor", type=int, default=8,
                         help="duplicate-heavy workload skew for "
                              "--bench --async")
    p_serve.add_argument("--name", choices=sorted(_SCENARIOS),
                         default="mini", help="scenario for --bench")
    p_serve.add_argument("--seed", type=int, default=None)
    p_serve.add_argument("--requests", type=int, default=2000,
                         help="open-loop arrivals for --bench")
    p_serve.add_argument("--burst", type=int, default=256,
                         help="overload burst size for --bench")
    p_serve.add_argument("--offered-qps", type=float, default=2000.0,
                         help="nominal arrival rate for --bench")
    p_serve.add_argument("--out", default=None, metavar="PATH",
                         help="write BENCH_service.json here (--bench)")
    p_serve.set_defaults(func=_cmd_serve)

    def _add_tier_args(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--map", required=True,
                            help="compiled BorderMap artifact (JSON or "
                                 "binary)")
        parser.add_argument("--shards", type=int, default=3,
                            help="replica count")
        parser.add_argument("--max-inflight", type=int, default=64,
                            help="admission-control cap per wave")
        parser.add_argument("--processes", action="store_true",
                            help="spawn one OS process per shard")
        parser.add_argument("--queries", type=int, default=200,
                            help="sample workload size used to exercise "
                                 "the tier (0: report on an idle tier)")
        parser.add_argument("--seed", type=int, default=0,
                            help="workload + trace seed")
        parser.add_argument("--slo-p99-ms", type=float, default=250.0,
                            help="objective: tier-wide p99 query ms")
        parser.add_argument("--slo-shed-rate", type=float, default=0.05,
                            help="objective: max shed fraction")
        parser.add_argument("--slo-degraded-rate", type=float,
                            default=0.05,
                            help="objective: max degraded fraction")
        parser.add_argument("--slo-min-healthy", type=float, default=0.5,
                            help="objective: min healthy replica fraction")
        parser.add_argument("--no-require-converged", action="store_true",
                            help="don't fail the SLO on an unconverged "
                                 "tier")

    p_health = subparsers.add_parser(
        "health",
        help="one-shot SLO health report for the sharded tier",
    )
    _add_tier_args(p_health)
    p_health.add_argument("--json", action="store_true",
                          help="machine-readable report (the scripting "
                               "surface)")
    p_health.add_argument("--prom", action="store_true",
                          help="Prometheus text exposition of the "
                               "harvested registry")
    p_health.add_argument("--metrics-out", default=None, metavar="PATH",
                          help="also write the harvested registry (JSON) "
                               "here")
    p_health.add_argument("--trace-out", default=None, metavar="PATH",
                          help="also write the merged cross-process span "
                               "trace (JSONL) here")
    p_health.set_defaults(func=_cmd_health)

    p_top = subparsers.add_parser(
        "top", help="live refreshing health table for the sharded tier"
    )
    _add_tier_args(p_top)
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="seconds between refreshes")
    p_top.add_argument("--iterations", type=int, default=0,
                       help="refresh count (0: until interrupted)")
    p_top.add_argument("--no-clear", action="store_true",
                       help="append refreshes instead of clearing the "
                            "screen (for logs/tests)")
    p_top.set_defaults(func=_cmd_top)

    p_infer = subparsers.add_parser(
        "infer", help="re-run inference over an archived bundle (no probing)"
    )
    p_infer.add_argument("bundle", help="bundle directory from `run --bundle`")
    p_infer.add_argument("--links", action="store_true")
    p_infer.add_argument("--refine", action="store_true")
    p_infer.add_argument("--out", default=None)
    p_infer.set_defaults(func=_cmd_infer)

    p_show = subparsers.add_parser("show", help="inspect a saved result")
    p_show.add_argument("path")
    p_show.add_argument("--links", action="store_true")
    p_show.add_argument("--explain", type=int, default=None, metavar="RID",
                        help="explain one inferred router's ownership")
    p_show.set_defaults(func=_cmd_show)

    p_explain = subparsers.add_parser(
        "explain",
        help="print one router's ownership rationale and the exact "
             "heuristic-pass chain (decision provenance) that produced it",
    )
    p_explain.add_argument("path", help="result JSON from `run --out`")
    p_explain.add_argument("router",
                           help="router id (e.g. 7) or one of its interface "
                                "addresses (e.g. 10.0.3.1)")
    p_explain.set_defaults(func=_cmd_explain)

    p_metrics = subparsers.add_parser(
        "metrics", help="pretty-print a --metrics-out registry dump"
    )
    p_metrics.add_argument("path", help="JSON from `run --metrics-out`")
    p_metrics.add_argument("--prefix", default=None, metavar="PFX",
                           help="show only counters under this prefix "
                                "(e.g. 'pass.' or 'retry.')")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_trace = subparsers.add_parser(
        "trace", help="profile a --trace-out span trace"
    )
    p_trace.add_argument("path", help="JSONL from `run --trace-out`")
    p_trace.add_argument("--tree", action="store_true",
                         help="render the span tree (parent/child "
                              "nesting, including cross-process worker "
                              "spans) instead of the profile table")
    p_trace.set_defaults(func=_cmd_trace)

    p_study = subparsers.add_parser("study", help="the §6 multi-VP analyses")
    p_study.add_argument("--name", choices=sorted(_SCENARIOS),
                         default="large_access")
    p_study.add_argument("--seed", type=int, default=None)
    p_study.add_argument("--vps", type=int, default=None)
    p_study.add_argument("--plot", action="store_true",
                         help="render ASCII figures")
    p_study.set_defaults(func=_cmd_study)

    p_congest = subparsers.add_parser(
        "congest", help="§2: monitor inferred borders for congestion"
    )
    p_congest.add_argument("--name", choices=sorted(_SCENARIOS), default="mini")
    p_congest.add_argument("--seed", type=int, default=None)
    p_congest.add_argument("--links", type=int, default=3,
                           help="how many links to congest")
    p_congest.add_argument("--days", type=int, default=2)
    p_congest.add_argument("--peak-ms", type=float, default=35.0)
    p_congest.set_defaults(func=_cmd_congest)

    p_chaos = subparsers.add_parser(
        "chaos", help="run the pipeline under escalating packet loss"
    )
    p_chaos.add_argument("--name", choices=sorted(_SCENARIOS), default="mini")
    p_chaos.add_argument("--seed", type=int, default=None)
    p_chaos.add_argument("--loss", type=float, nargs="+",
                         default=[0.0, 1.0, 5.0, 10.0], metavar="PCT",
                         help="loss percentages to sweep (0 = baseline)")
    p_chaos.add_argument("--burst", action="store_true",
                         help="use Gilbert-Elliott bursty loss on top of "
                              "independent loss")
    p_chaos.add_argument("--fault-seed", type=int, default=7)
    p_chaos.add_argument("--shards", type=int, default=0, metavar="N",
                         help="instead of packet loss, kill replicas of an "
                              "N-shard serving tier mid-batch and mid-swap "
                              "and audit every answer against the oracle")
    p_chaos.add_argument("--queries", type=int, default=200,
                         help="workload size for --shards mode")
    p_chaos.add_argument("--drop", type=float, default=0.0,
                         help="shard-channel drop rate (--shards mode)")
    p_chaos.add_argument("--garble", type=float, default=0.0,
                         help="shard-channel garble rate (--shards mode)")
    p_chaos.add_argument("--sever", type=float, default=0.0,
                         help="shard-channel sever rate (--shards mode)")
    p_chaos.add_argument("--channel-profile", default=None,
                         choices=("clean", "flaky", "lossy", "hostile"),
                         help="named shard-channel fault preset "
                              "(overrides --drop/--garble/--sever)")
    _add_obs_args(p_chaos)
    p_chaos.set_defaults(func=_cmd_chaos)

    p_epoch = subparsers.add_parser(
        "epoch",
        help="longitudinal runs: seeded churn + incremental re-inference "
             "with in-place compiled-map patching",
    )
    p_epoch.add_argument("--name", choices=sorted(_SCENARIOS), default="mini")
    p_epoch.add_argument("--seed", type=int, default=None)
    p_epoch.add_argument("--epochs", type=int, default=3,
                         help="how many measurement epochs to run")
    p_epoch.add_argument("--churn", type=float, default=0.05,
                         help="fraction of interdomain links mutated "
                              "between epochs")
    p_epoch.add_argument("--churn-seed", type=int, default=None,
                         help="seed for the deterministic churn stream "
                              "(default: the scenario seed)")
    p_epoch.add_argument("--out-dir", default=None, metavar="DIR",
                         help="save per-epoch artifacts, patches, and "
                              "chain.json here")
    p_epoch.add_argument("--full", action="store_true",
                         help="disable all caches: recompute every epoch "
                              "from scratch (the byte-identity baseline)")
    p_epoch.add_argument("--verify", action="store_true",
                         help="after the run, replay every patch onto the "
                              "previous artifact and byte-compare against "
                              "the epoch's own artifact")
    _add_obs_args(p_epoch)
    p_epoch.set_defaults(func=_cmd_epoch)

    p_table1 = subparsers.add_parser("table1", help="print Table 1 columns")
    p_table1.add_argument("--names", nargs="+", choices=sorted(_SCENARIOS),
                          default=["re_network"])
    p_table1.add_argument("--seed", type=int, default=None)
    p_table1.add_argument("--csv", action="store_true",
                          help="emit machine-readable CSV")
    p_table1.set_defaults(func=_cmd_table1)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
