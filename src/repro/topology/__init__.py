"""Synthetic Internet generator — the ground-truth substrate.

The paper measures the real Internet; offline we generate a synthetic one
whose AS-level structure, router-level structure, addressing practice, and
traceroute idiosyncrasies reproduce the seven challenge classes of §4.  The
:class:`~repro.topology.model.Internet` object holds full ground truth;
probing and inference layers only ever see what packets reveal.
"""

from .model import (
    Internet,
    ASNode,
    ASKind,
    Org,
    PoP,
    Router,
    Interface,
    Link,
    LinkKind,
    IXP,
    PrefixPolicy,
)
from .geography import City, CITIES, geo_distance
from .asgen import ASGenConfig, generate_as_level
from .routergen import build_router_level
from .challenges import ChallengeConfig, apply_challenges
from .scenarios import (
    ScenarioConfig,
    SCENARIO_FACTORIES,
    build_scenario,
    scenario_config,
    re_network,
    large_access,
    tier1,
    small_access,
    cdn_network,
    mini,
)

__all__ = [
    "Internet",
    "ASNode",
    "ASKind",
    "Org",
    "PoP",
    "Router",
    "Interface",
    "Link",
    "LinkKind",
    "IXP",
    "PrefixPolicy",
    "City",
    "CITIES",
    "geo_distance",
    "ASGenConfig",
    "generate_as_level",
    "build_router_level",
    "ChallengeConfig",
    "apply_challenges",
    "ScenarioConfig",
    "SCENARIO_FACTORIES",
    "build_scenario",
    "scenario_config",
    "re_network",
    "large_access",
    "tier1",
    "small_access",
    "cdn_network",
    "mini",
]
