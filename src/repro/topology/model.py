"""Ground-truth data model for the synthetic Internet.

Everything the generator decides — who owns which router, which link is an
interdomain border, which prefix is announced where — lives here.  The
probing layer sees none of it directly; it only sees ICMP responses.  The
analysis layer reads this model to score bdrmap's inferences (§5.6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..addr import Prefix, ntoa
from ..asgraph import ASGraph, Rel
from ..errors import TopologyError
from ..trie import PrefixTrie
from .geography import City


class ASKind(enum.Enum):
    """Coarse business role of an AS; drives topology and policy choices."""

    TIER1 = "tier1"
    TRANSIT = "transit"       # tier-2 / regional transit
    ACCESS = "access"         # eyeball / broadband
    CDN = "cdn"
    CONTENT = "content"
    ENTERPRISE = "enterprise"
    STUB = "stub"
    RESEARCH = "research"     # R&E network
    IXP_RS = "ixp_rs"         # IXP route-server AS


@dataclass
class Org:
    """An organization; may operate several sibling ASes (§4 challenge 5)."""

    org_id: str
    name: str
    asns: List[int] = field(default_factory=list)


@dataclass
class PoP:
    """A point of presence of one AS in one city."""

    pop_id: int
    asn: int
    city: City


class LinkKind(enum.Enum):
    INTERDOMAIN = "interdomain"   # point-to-point border link
    IXP = "ixp"                   # shared IXP peering fabric
    INTRA = "intra"               # internal link within one AS


@dataclass
class Interface:
    """One interface: an (address, router, link) binding.

    ``addr`` may be None for interfaces we model as unnumbered (never
    observed in traceroute).
    """

    addr: Optional[int]
    router_id: int
    link_id: int

    def __repr__(self) -> str:
        shown = ntoa(self.addr) if self.addr is not None else "unnumbered"
        return "Interface(%s r%d l%d)" % (shown, self.router_id, self.link_id)


@dataclass
class Link:
    """A link between interfaces.

    For INTERDOMAIN links, ``subnet`` is the /30 or /31 (rarely larger)
    assigned to the link and ``supplier_asn`` records which AS's address
    space numbers it — the crux of §4 challenge 1.
    """

    link_id: int
    kind: LinkKind
    interfaces: List[Interface] = field(default_factory=list)
    subnet: Optional[Prefix] = None
    supplier_asn: Optional[int] = None
    ixp_id: Optional[int] = None
    igp_cost: float = 1.0

    def other(self, router_id: int) -> Interface:
        """The interface on the far side of a two-ended link."""
        others = [i for i in self.interfaces if i.router_id != router_id]
        if len(others) != 1:
            raise TopologyError(
                "link %d is not point-to-point from r%d" % (self.link_id, router_id)
            )
        return others[0]

    def iface_of(self, router_id: int) -> Interface:
        for iface in self.interfaces:
            if iface.router_id == router_id:
                return iface
        raise TopologyError("r%d not on link %d" % (router_id, self.link_id))


@dataclass
class Router:
    """A ground-truth router owned by exactly one AS."""

    router_id: int
    asn: int
    pop_id: int
    is_border: bool = False
    interfaces: List[Interface] = field(default_factory=list)
    policy: Any = None  # repro.net.policies.RouterPolicy, attached later

    def addresses(self) -> List[int]:
        return [i.addr for i in self.interfaces if i.addr is not None]

    def link_ids(self) -> List[int]:
        return [i.link_id for i in self.interfaces]


@dataclass
class IXP:
    """An Internet exchange point with a shared peering fabric."""

    ixp_id: int
    name: str
    fabric: Prefix
    rs_asn: Optional[int]
    city: City
    members: Dict[int, int] = field(default_factory=dict)  # asn -> fabric addr
    fabric_link_id: Optional[int] = None


@dataclass
class PrefixPolicy:
    """How one prefix is originated, hosted, and announced.

    ``origins``: ASes that originate it in BGP (empty = unrouted, §4
    challenges around unannounced infrastructure).
    ``host_router``: per-origin router where probes toward the prefix are
    delivered inside the origin AS.
    ``restricted_links``: if not None, the prefix is announced to direct
    neighbors only over these border link ids (selective announcement, the
    Akamai behaviour of Fig 15/16).
    ``live_hosts``: addresses that answer ICMP echo.
    """

    prefix: Prefix
    origins: Tuple[int, ...]
    host_router: Dict[int, int] = field(default_factory=dict)
    restricted_links: Optional[FrozenSet[int]] = None
    live_hosts: FrozenSet[int] = frozenset()

    @property
    def announced(self) -> bool:
        return bool(self.origins)


@dataclass
class ASNode:
    """One AS and its resources."""

    asn: int
    kind: ASKind
    org_id: str
    name: str = ""
    pops: List[PoP] = field(default_factory=list)
    router_ids: List[int] = field(default_factory=list)
    prefixes: List[Prefix] = field(default_factory=list)       # allocated space
    infra_prefix: Optional[Prefix] = None                      # internal numbering
    infra_announced: bool = True


class Internet:
    """The complete synthetic Internet, including all ground truth."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.graph = ASGraph()                  # ground-truth relationships
        self.ases: Dict[int, ASNode] = {}
        self.orgs: Dict[str, Org] = {}
        self.routers: Dict[int, Router] = {}
        self.links: Dict[int, Link] = {}
        self.ixps: Dict[int, IXP] = {}
        self.prefix_policies: Dict[Prefix, PrefixPolicy] = {}
        self.addr_to_iface: Dict[int, Interface] = {}
        self.rir_delegations: List[Tuple[str, Prefix]] = []  # (opaque org id, prefix)
        self._origin_trie: Optional[PrefixTrie] = None
        self._next_router_id = 1
        self._next_link_id = 1
        self._next_pop_id = 1

    # -- construction helpers (used by the generators) ----------------------

    def add_org(self, org: Org) -> None:
        self.orgs[org.org_id] = org

    def add_as(self, node: ASNode) -> None:
        if node.asn in self.ases:
            raise TopologyError("duplicate AS%d" % node.asn)
        self.ases[node.asn] = node
        self.graph.add_as(node.asn)

    def new_pop(self, asn: int, city: City) -> PoP:
        pop = PoP(self._next_pop_id, asn, city)
        self._next_pop_id += 1
        self.ases[asn].pops.append(pop)
        return pop

    def new_router(self, asn: int, pop_id: int, is_border: bool = False) -> Router:
        router = Router(self._next_router_id, asn, pop_id, is_border)
        self._next_router_id += 1
        self.routers[router.router_id] = router
        self.ases[asn].router_ids.append(router.router_id)
        return router

    def new_link(
        self,
        kind: LinkKind,
        endpoints: List[Tuple[int, Optional[int]]],
        subnet: Optional[Prefix] = None,
        supplier_asn: Optional[int] = None,
        ixp_id: Optional[int] = None,
        igp_cost: float = 1.0,
    ) -> Link:
        """Create a link; ``endpoints`` is a list of (router_id, addr)."""
        link = Link(
            self._next_link_id,
            kind,
            subnet=subnet,
            supplier_asn=supplier_asn,
            ixp_id=ixp_id,
            igp_cost=igp_cost,
        )
        self._next_link_id += 1
        for router_id, addr in endpoints:
            iface = Interface(addr, router_id, link.link_id)
            link.interfaces.append(iface)
            self.routers[router_id].interfaces.append(iface)
            if addr is not None:
                if addr in self.addr_to_iface:
                    raise TopologyError("address %s assigned twice" % ntoa(addr))
                self.addr_to_iface[addr] = iface
        self.links[link.link_id] = link
        self._origin_trie = None
        return link

    def add_prefix_policy(self, policy: PrefixPolicy) -> None:
        self.prefix_policies[policy.prefix] = policy
        self._origin_trie = None

    # -- ground-truth queries ------------------------------------------------

    def origin_trie(self) -> PrefixTrie:
        """Trie of *announced* prefixes → origin tuple (ground truth)."""
        if self._origin_trie is None:
            trie: PrefixTrie = PrefixTrie()
            for policy in self.prefix_policies.values():
                if policy.announced:
                    trie.insert(policy.prefix, policy.origins)
            self._origin_trie = trie
        return self._origin_trie

    def true_origins(self, addr: int) -> Tuple[int, ...]:
        found = self.origin_trie().lookup_value(addr)
        return found if found is not None else ()

    def owner_of_addr(self, addr: int) -> Optional[int]:
        """The AS operating the router that holds ``addr`` (ground truth)."""
        iface = self.addr_to_iface.get(addr)
        if iface is None:
            return None
        return self.routers[iface.router_id].asn

    def router_of_addr(self, addr: int) -> Optional[Router]:
        iface = self.addr_to_iface.get(addr)
        if iface is None:
            return None
        return self.routers[iface.router_id]

    def interdomain_links(self, asn: Optional[int] = None) -> Iterator[Link]:
        """All border links, optionally restricted to those touching ``asn``."""
        for link in self.links.values():
            if link.kind is LinkKind.INTRA:
                continue
            if asn is None:
                yield link
                continue
            owners = {self.routers[i.router_id].asn for i in link.interfaces}
            if asn in owners:
                yield link

    def border_pairs(self, asn: int) -> Set[Tuple[int, int]]:
        """Ground-truth set of (near router, neighbor AS) border attachments
        for ``asn``, counting IXP fabrics per (router, member) pair."""
        pairs: Set[Tuple[int, int]] = set()
        for link in self.interdomain_links(asn):
            near = [
                i for i in link.interfaces if self.routers[i.router_id].asn == asn
            ]
            far = [
                i for i in link.interfaces if self.routers[i.router_id].asn != asn
            ]
            for near_iface in near:
                for far_iface in far:
                    pairs.add(
                        (near_iface.router_id, self.routers[far_iface.router_id].asn)
                    )
        return pairs

    def sibling_asns(self, asn: int) -> FrozenSet[int]:
        return frozenset(self.graph.sibling_set(asn))

    def routers_of(self, asn: int) -> List[Router]:
        return [self.routers[rid] for rid in self.ases[asn].router_ids]

    def relationship(self, a: int, b: int) -> Optional[Rel]:
        return self.graph.relationship(a, b)

    def stats(self) -> Dict[str, int]:
        """Summary counts, handy for logging and tests."""
        return {
            "ases": len(self.ases),
            "orgs": len(self.orgs),
            "routers": len(self.routers),
            "links": len(self.links),
            "interdomain_links": sum(1 for _ in self.interdomain_links()),
            "prefixes": len(self.prefix_policies),
            "announced_prefixes": sum(
                1 for p in self.prefix_policies.values() if p.announced
            ),
            "addresses": len(self.addr_to_iface),
            "ixps": len(self.ixps),
        }
