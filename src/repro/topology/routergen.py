"""Router-level topology generation.

Expands the AS-level graph into routers, PoPs, intra-AS links, interdomain
point-to-point links (with /30 and /31 subnets supplied by one side, usually
the provider — §4 challenge 1), IXP fabrics (§4 challenge 6), and prefix
origination/hosting.  The density knobs reproduce §6: a focal access network
can hold ~45 router-level links with one dense (Level3-like) peer spread
across its PoPs, and CDN peers whose prefixes are announced selectively per
link (Akamai-like).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..addr import Prefix
from ..asgraph import Rel
from ..rng import make_rng
from .addressing import SubnetPool
from .asgen import GenState
from .geography import CITIES, City, geo_distance
from .model import ASKind, ASNode, LinkKind, PoP, PrefixPolicy, Router

_POP_PLAN = {
    ASKind.TIER1: (8, 12),
    ASKind.TRANSIT: (3, 6),
    ASKind.ACCESS: (4, 8),
    ASKind.CDN: (6, 10),
    ASKind.CONTENT: (1, 2),
    ASKind.ENTERPRISE: (1, 1),
    ASKind.STUB: (1, 1),
    ASKind.RESEARCH: (2, 3),
    ASKind.IXP_RS: (0, 0),
}

# How many interdomain links a single border router hosts before we open
# another one at the same PoP.
_BORDER_FANOUT = 8


@dataclass
class RouterGenInfo:
    """Artifacts the scenario layer needs after router generation."""

    focal_access_subnets: Dict[int, Prefix] = field(default_factory=dict)
    focal_agg_router: Dict[int, int] = field(default_factory=dict)  # pop -> router
    link_counts: Dict[Tuple[int, int], int] = field(default_factory=dict)


class _Builder:
    def __init__(self, state: GenState, dense_link_count: int, cdn_link_count: int):
        self.state = state
        self.internet = state.internet
        self.rng = make_rng(state.config.seed, "routergen")
        self.dense_link_count = dense_link_count
        self.cdn_link_count = cdn_link_count
        self.pools = state.pools  # shared with later generation stages
        self.core_of_pop: Dict[int, int] = {}   # pop_id -> core router id
        self.borders: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self.info = RouterGenInfo()

    # -- helpers ------------------------------------------------------------

    def pool(self, asn: int) -> SubnetPool:
        if asn not in self.pools:
            node = self.internet.ases[asn]
            if node.infra_prefix is None:
                raise ValueError("AS%d has no infrastructure prefix" % asn)
            self.pools[asn] = SubnetPool(node.infra_prefix)
        return self.pools[asn]

    def intra_link(self, asn: int, r1: int, r2: int, cost: float) -> None:
        subnet = self.pool(asn).alloc_subnet(31)
        self.internet.new_link(
            LinkKind.INTRA,
            [(r1, subnet.addr), (r2, subnet.addr + 1)],
            subnet=subnet,
            supplier_asn=asn,
            igp_cost=cost,
        )

    def border_router(self, asn: int, pop: PoP) -> Router:
        """A border router at ``pop`` with spare link capacity."""
        key = (asn, pop.pop_id)
        entries = self.borders.setdefault(key, [])
        for index, (router_id, used) in enumerate(entries):
            if used < _BORDER_FANOUT:
                entries[index] = (router_id, used + 1)
                return self.internet.routers[router_id]
        router = self.internet.new_router(asn, pop.pop_id, is_border=True)
        entries.append((router.router_id, 1))
        core = self.core_of_pop.get(pop.pop_id)
        if core is not None and core != router.router_id:
            self.intra_link(asn, core, router.router_id, 1.0)
        return router

    def nearest_pop(self, node: ASNode, city: City) -> PoP:
        return min(node.pops, key=lambda p: (geo_distance(p.city, city), p.pop_id))

    # -- stage 1: PoPs, cores, intra links -----------------------------------

    def build_intra(self) -> None:
        for node in sorted(self.internet.ases.values(), key=lambda n: n.asn):
            if node.kind is ASKind.IXP_RS:
                continue
            lo, hi = _POP_PLAN[node.kind]
            if node.asn == self.state.focal_asn:
                count = self.state.config.focal.n_pops
            else:
                count = self.rng.randint(lo, hi) if hi else 0
            count = max(count, 1)
            cities = self.rng.sample(CITIES, min(count, len(CITIES)))
            cores: List[Tuple[PoP, Router]] = []
            for city in cities:
                pop = self.internet.new_pop(node.asn, city)
                core = self.internet.new_router(node.asn, pop.pop_id)
                self.core_of_pop[pop.pop_id] = core.router_id
                cores.append((pop, core))
            # Geographic ring (west to east and back) plus random chords.
            cores.sort(key=lambda pc: pc[0].city.lon)
            for (pop_a, core_a), (pop_b, core_b) in zip(cores, cores[1:]):
                cost = 1.0 + geo_distance(pop_a.city, pop_b.city) / 500.0
                self.intra_link(node.asn, core_a.router_id, core_b.router_id, cost)
            if len(cores) > 3:
                # Close the ring.
                pop_a, core_a = cores[0]
                pop_b, core_b = cores[-1]
                cost = 1.0 + geo_distance(pop_a.city, pop_b.city) / 500.0
                self.intra_link(node.asn, core_a.router_id, core_b.router_id, cost)
                for _ in range(len(cores) // 3):
                    (pop_a, core_a), (pop_b, core_b) = self.rng.sample(cores, 2)
                    cost = 1.0 + geo_distance(pop_a.city, pop_b.city) / 500.0
                    self.intra_link(node.asn, core_a.router_id, core_b.router_id, cost)
            # Focal PoPs get an aggregation router where VPs attach.
            if node.asn == self.state.focal_asn:
                for pop, core in cores:
                    agg = self.internet.new_router(node.asn, pop.pop_id)
                    self.intra_link(node.asn, core.router_id, agg.router_id, 1.0)
                    self.info.focal_agg_router[pop.pop_id] = agg.router_id

    # -- stage 2: interdomain links -------------------------------------------

    def link_count_for(self, a: ASNode, b: ASNode, rel_b: Rel) -> int:
        """How many router-level links this AS pair gets (rel_b is b from
        a's view)."""
        focal = self.state.focal_asn
        pair = {a.asn, b.asn}
        if focal in pair and rel_b is Rel.PEER:
            other = b.asn if a.asn == focal else a.asn
            if other in self.state.dense_peer_asns:
                return self.dense_link_count
            if other in self.state.cdn_peer_asns:
                return self.cdn_link_count
            # Large networks peer at several locations (§6).
            return self.rng.randint(3, min(8, max(3, len(self.internet.ases[focal].pops))))
        if focal in pair and rel_b in (Rel.PROVIDER, Rel.CUSTOMER):
            customer = a if rel_b is Rel.PROVIDER else b
            if customer.asn == focal:
                # The focal network multihomes to each provider at many
                # PoPs — this is what gives most destination prefixes
                # 5-15 potential egress routers (Fig 14).
                return self.rng.randint(
                    5, min(12, max(5, len(self.internet.ases[focal].pops)))
                )
        kinds = {a.kind, b.kind}
        if rel_b is Rel.PEER and kinds == {ASKind.TIER1}:
            return self.rng.randint(2, 4)
        if rel_b is Rel.PEER and ASKind.CDN in kinds and ASKind.ACCESS in kinds:
            return self.rng.randint(2, 5)
        if rel_b in (Rel.PROVIDER, Rel.CUSTOMER):
            customer = a if rel_b is Rel.PROVIDER else b
            if customer.kind in (ASKind.STUB, ASKind.ENTERPRISE, ASKind.CONTENT):
                return 2 if self.rng.random() < 0.05 else 1
            return self.rng.randint(1, 3)
        if rel_b is Rel.SIBLING:
            return self.rng.randint(1, 2)
        return self.rng.randint(1, 2)

    def supplier_for(self, a: ASNode, b: ASNode, rel_b: Rel) -> int:
        """Which AS numbers the link subnet (§4 challenge 1)."""
        if rel_b is Rel.CUSTOMER:  # b is a's customer → a supplies (usually)
            return a.asn if self.rng.random() < 0.9 else b.asn
        if rel_b is Rel.PROVIDER:
            return b.asn if self.rng.random() < 0.9 else a.asn
        # No convention for peers/siblings.
        return a.asn if self.rng.random() < 0.5 else b.asn

    def build_interdomain(self) -> None:
        ixp_only = self.state.ixp_only_pairs
        edges = sorted(self.internet.graph.edges())
        for a_asn, b_asn, rel_b in edges:
            if (a_asn, b_asn) in ixp_only or (b_asn, a_asn) in ixp_only:
                continue  # connected via IXP fabric only
            a, b = self.internet.ases[a_asn], self.internet.ases[b_asn]
            if a.kind is ASKind.IXP_RS or b.kind is ASKind.IXP_RS:
                continue
            count = self.link_count_for(a, b, rel_b)
            self.info.link_counts[(a_asn, b_asn)] = count
            # Spread dense peerings over the focal network's PoPs; otherwise
            # pick a city from the smaller network's footprint.
            focal = self.state.focal_asn
            if focal in (a_asn, b_asn):
                focal_node = a if a_asn == focal else b
                pops = sorted(focal_node.pops, key=lambda p: p.city.lon)
            else:
                smaller = a if len(a.pops) <= len(b.pops) else b
                pops = list(smaller.pops)
            for index in range(count):
                anchor_pop = pops[index % len(pops)]
                pop_a = self.nearest_pop(a, anchor_pop.city)
                pop_b = self.nearest_pop(b, anchor_pop.city)
                self.make_border_link(a, pop_a, b, pop_b, rel_b)

    def make_border_link(
        self, a: ASNode, pop_a: PoP, b: ASNode, pop_b: PoP, rel_b: Rel
    ) -> None:
        supplier = self.supplier_for(a, b, rel_b)
        use_31 = self.rng.random() < 0.3
        subnet, addr_a, addr_b = self.pool(supplier).alloc_p2p(use_31)
        router_a = self.border_router(a.asn, pop_a)
        router_b = self.border_router(b.asn, pop_b)
        self.internet.new_link(
            LinkKind.INTERDOMAIN,
            [(router_a.router_id, addr_a), (router_b.router_id, addr_b)],
            subnet=subnet,
            supplier_asn=supplier,
            igp_cost=1.0,
        )

    # -- stage 3: IXP fabrics ---------------------------------------------------

    def build_ixps(self) -> None:
        for ixp_id in sorted(self.internet.ixps):
            ixp = self.internet.ixps[ixp_id]
            members = sorted(self.state.ixp_members.get(ixp_id, ()))
            pool = SubnetPool(ixp.fabric)
            endpoints: List[Tuple[int, Optional[int]]] = []
            for asn in members:
                node = self.internet.ases[asn]
                if not node.pops:
                    continue
                pop = self.nearest_pop(node, ixp.city)
                router = self.border_router(asn, pop)
                addr = pool.alloc_addr()
                ixp.members[asn] = addr
                endpoints.append((router.router_id, addr))
            if len(endpoints) >= 2:
                link = self.internet.new_link(
                    LinkKind.IXP,
                    endpoints,
                    subnet=ixp.fabric,
                    supplier_asn=ixp.rs_asn,
                    ixp_id=ixp_id,
                    igp_cost=1.0,
                )
                ixp.fabric_link_id = link.link_id

    # -- stage 4: prefix policies --------------------------------------------

    def _cdn_restrictions(self, node: ASNode) -> Dict[Prefix, frozenset]:
        """Akamai-style selective announcement (§6): each of the CDN peer's
        prefixes is exported over exactly one of its links with the focal
        network (plus all its other links, for global reachability).  A
        single VP anywhere then observes every focal–CDN link."""
        focal_family = {
            self.state.focal_asn,
            *self.internet.graph.sibling_set(self.state.focal_asn),
        }
        focal_links: List[int] = []
        other_links: List[int] = []
        for link in self.internet.links.values():
            if link.kind is LinkKind.INTRA:
                continue
            owners = {self.internet.routers[i.router_id].asn for i in link.interfaces}
            if node.asn not in owners:
                continue
            if owners & focal_family:
                focal_links.append(link.link_id)
            else:
                other_links.append(link.link_id)
        if not focal_links:
            return {}
        # One prefix per focal link: allocate more space if needed.
        while len(node.prefixes) < len(focal_links):
            node.prefixes.append(self.state.allocator.alloc(20, node.org_id))
        restrictions: Dict[Prefix, frozenset] = {}
        for index, prefix in enumerate(node.prefixes):
            exclusive = focal_links[index % len(focal_links)]
            restrictions[prefix] = frozenset({exclusive, *other_links})
        return restrictions

    def build_prefixes(self) -> None:
        rng = self.rng
        for node in sorted(self.internet.ases.values(), key=lambda n: n.asn):
            if node.kind is ASKind.IXP_RS or not node.router_ids:
                continue
            cdn_restrictions = (
                self._cdn_restrictions(node)
                if node.asn in self.state.cdn_peer_asns
                else {}
            )
            hosts = [
                self.core_of_pop.get(pop.pop_id)
                for pop in node.pops
                if self.core_of_pop.get(pop.pop_id) is not None
            ]
            if not hosts:
                hosts = [node.router_ids[0]]
            for prefix in node.prefixes:
                live = set()
                if rng.random() < 0.6:
                    live.add(prefix.addr + 1)
                for _ in range(rng.randint(0, 2)):
                    live.add(rng.randint(prefix.addr, prefix.last))
                self.internet.add_prefix_policy(
                    PrefixPolicy(
                        prefix=prefix,
                        origins=(node.asn,),
                        host_router={node.asn: rng.choice(hosts)},
                        restricted_links=cdn_restrictions.get(prefix),
                        live_hosts=frozenset(live),
                    )
                )
            # Infrastructure space is usually announced too (its addresses
            # appear on router interfaces); challenges.py may un-announce it.
            if node.infra_prefix is not None:
                self.internet.add_prefix_policy(
                    PrefixPolicy(
                        prefix=node.infra_prefix,
                        origins=(node.asn,),
                        host_router={node.asn: hosts[0]},
                        live_hosts=frozenset(),
                    )
                )

        # Focal access space: one /24 per PoP for VP placement.
        focal = self.internet.ases[self.state.focal_asn]
        if focal.pops:
            access_space = SubnetPool(
                self.state.allocator.alloc(18, focal.org_id)
            )
            for pop in focal.pops:
                subnet = access_space.alloc_subnet(24)
                core = self.core_of_pop[pop.pop_id]
                host = self.info.focal_agg_router.get(pop.pop_id, core)
                self.info.focal_access_subnets[pop.pop_id] = subnet
                self.internet.add_prefix_policy(
                    PrefixPolicy(
                        prefix=subnet,
                        origins=(focal.asn,),
                        host_router={focal.asn: host},
                        live_hosts=frozenset({subnet.addr + 1}),
                    )
                )


def build_router_level(
    state: GenState,
    dense_link_count: int = 45,
    cdn_link_count: int = 8,
) -> RouterGenInfo:
    """Expand ``state``'s AS-level Internet into a router-level topology."""
    builder = _Builder(state, dense_link_count, cdn_link_count)
    builder.build_intra()
    builder.build_interdomain()
    builder.build_ixps()
    builder.build_prefixes()
    # Publish RIR delegations recorded during allocation.
    state.internet.rir_delegations = list(state.allocator.delegations)
    return builder.info
