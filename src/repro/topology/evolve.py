"""Topology evolution between measurement runs.

The deployed system (§4: "monitoring interdomain links for congestion
using 40 VPs in 28 networks") re-runs bdrmap continuously because
interconnection changes: networks add peering sessions, de-peer, and move
links.  These helpers mutate a built topology the way operators do, so
tests and examples can exercise longitudinal monitoring (see
:mod:`repro.analysis.diff`).

After mutating, call :func:`rebuild_network` — forwarding state (routing
oracle caches) is derived from the topology and must be recomputed.
"""

from __future__ import annotations

from typing import Optional

from ..asgraph import Rel
from ..errors import TopologyError
from ..net import Network
from .addressing import SubnetPool
from .model import Link, LinkKind
from .scenarios import Scenario


def add_border_link(
    scenario: Scenario,
    asn_a: int,
    asn_b: int,
    rel_b_from_a: Optional[Rel] = None,
    use_31: bool = False,
) -> Link:
    """Provision a new interdomain link between two ASes.

    Creates the business relationship if the pair had none, picks a border
    router on each side (reusing existing borders where possible), and
    numbers a fresh point-to-point subnet from the supplier's pool —
    provider-supplied for c2p, side A for peers.
    """
    internet = scenario.internet
    if asn_a not in internet.ases or asn_b not in internet.ases:
        raise TopologyError("both ASes must exist")
    relationship = internet.graph.relationship(asn_a, asn_b)
    if relationship is None:
        internet.graph.add_edge(asn_a, asn_b, rel_b_from_a or Rel.PEER)
        relationship = internet.graph.relationship(asn_a, asn_b)

    if relationship is Rel.CUSTOMER:      # b is a's customer → a supplies
        supplier = asn_a
    elif relationship is Rel.PROVIDER:
        supplier = asn_b
    else:
        supplier = asn_a
    pool = scenario.state.pools.get(supplier)
    if not isinstance(pool, SubnetPool):
        raise TopologyError("AS%d has no address pool to number the link" % supplier)
    subnet, addr_a, addr_b = pool.alloc_p2p(use_31)

    def border_of(asn: int):
        node = internet.ases[asn]
        borders = [
            internet.routers[rid]
            for rid in node.router_ids
            if internet.routers[rid].is_border
        ]
        if borders:
            return borders[0]
        return internet.routers[node.router_ids[0]]

    router_a = border_of(asn_a)
    router_b = border_of(asn_b)
    link = internet.new_link(
        LinkKind.INTERDOMAIN,
        [(router_a.router_id, addr_a), (router_b.router_id, addr_b)],
        subnet=subnet,
        supplier_asn=supplier,
    )
    return link


def remove_link(scenario: Scenario, link_id: int) -> None:
    """De-provision a link (de-peering / circuit turn-down)."""
    internet = scenario.internet
    link = internet.links.pop(link_id, None)
    if link is None:
        raise TopologyError("no link %d" % link_id)
    for iface in link.interfaces:
        router = internet.routers[iface.router_id]
        router.interfaces = [i for i in router.interfaces if i is not iface]
        if iface.addr is not None:
            internet.addr_to_iface.pop(iface.addr, None)
    internet._origin_trie = None


def rebuild_network(scenario: Scenario) -> Network:
    """Recompute forwarding state after topology mutations.

    Returns the new network (also installed on the scenario); existing VPs
    are re-registered.  The virtual clock continues from the old network's
    time — runs are sequential in the same timeline.
    """
    old = scenario.network
    network = Network(
        scenario.internet,
        seed=scenario.config.asgen.seed,
        pps=scenario.config.pps,
    )
    network.now = old.now
    network.probes_sent = old.probes_sent
    network.congestion = old.congestion
    for vp in scenario.vps:
        network.add_vp(vp)
    scenario.network = network
    return network
