"""Topology evolution between measurement runs.

The deployed system (§4: "monitoring interdomain links for congestion
using 40 VPs in 28 networks") re-runs bdrmap continuously because
interconnection changes: networks add peering sessions, de-peer, and move
links.  These helpers mutate a built topology the way operators do, so
tests and examples can exercise longitudinal monitoring (see
:mod:`repro.analysis.diff` and :mod:`repro.core.epochs`).

Every mutation returns a structured :class:`MutationEvent` (and appends it
to ``scenario.mutations``), so downstream consumers — the incremental
epoch pipeline above all — see *what changed* instead of having to diff
object graphs.  Each event knows the concrete interface addresses it
touched (``touched_addrs``), which is what trace invalidation keys off.

After mutating, call :func:`rebuild_network` — forwarding state (routing
oracle caches) is derived from the topology and must be recomputed.
Scenario entry points (``run_bdrmap``, the orchestrators, the epoch
runner) refuse to measure while ``scenario.topology_dirty`` is set, so a
forgotten rebuild is a clear :class:`~repro.errors.TopologyError` rather
than silently wrong traces.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import ClassVar, List, Optional, Tuple

from ..asgraph import Rel
from ..errors import TopologyError
from ..net import Network
from .addressing import SubnetPool
from .model import LinkKind
from .scenarios import Scenario


@dataclass(frozen=True)
class MutationEvent:
    """Base class for structured topology mutations."""

    kind: ClassVar[str] = "mutation"

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["kind"] = self.kind
        return payload

    @property
    def touched_addrs(self) -> Tuple[int, ...]:
        return ()


@dataclass(frozen=True)
class LinkAdded(MutationEvent):
    """A new interdomain link was provisioned."""

    kind: ClassVar[str] = "link_added"

    link_id: int
    asn_a: int
    asn_b: int
    relationship: str          # of b from a's view
    supplier_asn: int
    addrs: Tuple[int, ...]     # (addr_a, addr_b)
    created_relationship: bool

    @property
    def touched_addrs(self) -> Tuple[int, ...]:
        return self.addrs


@dataclass(frozen=True)
class LinkRemoved(MutationEvent):
    """An interdomain link was de-provisioned."""

    kind: ClassVar[str] = "link_removed"

    link_id: int
    ases: Tuple[int, ...]
    addrs: Tuple[int, ...]

    @property
    def touched_addrs(self) -> Tuple[int, ...]:
        return self.addrs


@dataclass(frozen=True)
class LinkMoved(MutationEvent):
    """One end of an interdomain link migrated to a different router of
    the same AS (a circuit re-homed to another border)."""

    kind: ClassVar[str] = "link_moved"

    link_id: int
    asn: int
    from_router: int
    to_router: int
    addrs: Tuple[int, ...]     # every address on the link

    @property
    def touched_addrs(self) -> Tuple[int, ...]:
        return self.addrs


@dataclass(frozen=True)
class RelationshipChanged(MutationEvent):
    """The business relationship between two ASes changed (``after`` is
    None on a full de-peering)."""

    kind: ClassVar[str] = "relationship_changed"

    asn_a: int
    asn_b: int
    before: Optional[str]
    after: Optional[str]


def _record(scenario: Scenario, event: MutationEvent) -> MutationEvent:
    scenario.mutations.append(event)
    scenario.topology_dirty = True
    return event


def add_border_link(
    scenario: Scenario,
    asn_a: int,
    asn_b: int,
    rel_b_from_a: Optional[Rel] = None,
    use_31: bool = False,
) -> LinkAdded:
    """Provision a new interdomain link between two ASes.

    Creates the business relationship if the pair had none, picks a border
    router on each side (reusing existing borders where possible), and
    numbers a point-to-point subnet from the supplier's pool —
    provider-supplied for c2p, side A for peers.  Released subnets from
    earlier turn-downs are reused before fresh pool space.
    """
    internet = scenario.internet
    if asn_a not in internet.ases or asn_b not in internet.ases:
        raise TopologyError("both ASes must exist")
    relationship = internet.graph.relationship(asn_a, asn_b)
    created_relationship = relationship is None
    if relationship is None:
        internet.graph.add_edge(asn_a, asn_b, rel_b_from_a or Rel.PEER)
        relationship = internet.graph.relationship(asn_a, asn_b)

    if relationship is Rel.CUSTOMER:      # b is a's customer → a supplies
        supplier = asn_a
    elif relationship is Rel.PROVIDER:
        supplier = asn_b
    else:
        supplier = asn_a
    pool = scenario.state.pools.get(supplier)
    if not isinstance(pool, SubnetPool):
        raise TopologyError("AS%d has no address pool to number the link" % supplier)
    subnet, addr_a, addr_b = pool.alloc_p2p(use_31)

    def border_of(asn: int):
        node = internet.ases[asn]
        borders = [
            internet.routers[rid]
            for rid in node.router_ids
            if internet.routers[rid].is_border
        ]
        if borders:
            return borders[0]
        return internet.routers[node.router_ids[0]]

    router_a = border_of(asn_a)
    router_b = border_of(asn_b)
    link = internet.new_link(
        LinkKind.INTERDOMAIN,
        [(router_a.router_id, addr_a), (router_b.router_id, addr_b)],
        subnet=subnet,
        supplier_asn=supplier,
    )
    event = LinkAdded(
        link_id=link.link_id,
        asn_a=asn_a,
        asn_b=asn_b,
        relationship=relationship.value,
        supplier_asn=supplier,
        addrs=(addr_a, addr_b),
        created_relationship=created_relationship,
    )
    _record(scenario, event)
    return event


def _release_link_subnet(scenario: Scenario, link) -> None:
    if link.subnet is None or link.supplier_asn is None:
        return
    pool = scenario.state.pools.get(link.supplier_asn)
    if isinstance(pool, SubnetPool):
        pool.release_subnet(link.subnet)


def _detach_link(scenario: Scenario, link_id: int):
    internet = scenario.internet
    link = internet.links.pop(link_id, None)
    if link is None:
        raise TopologyError("no link %d" % link_id)
    for iface in link.interfaces:
        router = internet.routers[iface.router_id]
        router.interfaces = [i for i in router.interfaces if i is not iface]
        if iface.addr is not None:
            internet.addr_to_iface.pop(iface.addr, None)
    internet._origin_trie = None
    _release_link_subnet(scenario, link)
    return link


def remove_link(scenario: Scenario, link_id: int) -> LinkRemoved:
    """De-provision a link (circuit turn-down).

    The link's point-to-point subnet returns to the supplier's pool for
    reuse by a later :func:`add_border_link`.
    """
    link = _detach_link(scenario, link_id)
    event = LinkRemoved(
        link_id=link_id,
        ases=tuple(sorted({
            scenario.internet.routers[iface.router_id].asn
            for iface in link.interfaces
            if iface.router_id in scenario.internet.routers
        })),
        addrs=tuple(sorted(
            iface.addr for iface in link.interfaces if iface.addr is not None
        )),
    )
    _record(scenario, event)
    return event


def move_border_link(
    scenario: Scenario, link_id: int, to_router_id: int
) -> LinkMoved:
    """Re-home one end of an interdomain link to another router of the
    same AS (the circuit keeps its addressing; forwarding changes)."""
    internet = scenario.internet
    link = internet.links.get(link_id)
    if link is None:
        raise TopologyError("no link %d" % link_id)
    to_router = internet.routers.get(to_router_id)
    if to_router is None:
        raise TopologyError("no router %d" % to_router_id)
    iface = next(
        (
            i for i in link.interfaces
            if internet.routers[i.router_id].asn == to_router.asn
        ),
        None,
    )
    if iface is None:
        raise TopologyError(
            "link %d has no end in AS%d" % (link_id, to_router.asn)
        )
    if iface.router_id == to_router_id:
        raise TopologyError(
            "link %d is already on router %d" % (link_id, to_router_id)
        )
    old_router = internet.routers[iface.router_id]
    old_router.interfaces = [
        i for i in old_router.interfaces if i is not iface
    ]
    from_router_id = iface.router_id
    iface.router_id = to_router_id
    to_router.interfaces.append(iface)
    to_router.is_border = True
    event = LinkMoved(
        link_id=link_id,
        asn=to_router.asn,
        from_router=from_router_id,
        to_router=to_router_id,
        addrs=tuple(sorted(
            i.addr for i in link.interfaces if i.addr is not None
        )),
    )
    _record(scenario, event)
    return event


def de_peer(scenario: Scenario, asn_a: int, asn_b: int) -> List[MutationEvent]:
    """Tear down the relationship between two ASes: every point-to-point
    link between them is removed (subnets released) and the AS-graph edge
    dropped.  Returns the per-link events plus a final
    :class:`RelationshipChanged`."""
    internet = scenario.internet
    rel = internet.graph.relationship(asn_a, asn_b)
    if rel is None:
        raise TopologyError("AS%d and AS%d are not adjacent" % (asn_a, asn_b))
    pair = {asn_a, asn_b}
    doomed = sorted(
        link.link_id
        for link in internet.links.values()
        if link.kind is LinkKind.INTERDOMAIN
        and {
            internet.routers[iface.router_id].asn
            for iface in link.interfaces
            if iface.router_id in internet.routers
        } == pair
    )
    events: List[MutationEvent] = [
        remove_link(scenario, link_id) for link_id in doomed
    ]
    internet.graph.remove_edge(asn_a, asn_b)
    events.append(_record(scenario, RelationshipChanged(
        asn_a=asn_a, asn_b=asn_b, before=rel.value, after=None,
    )))
    return events


def rebuild_network(scenario: Scenario) -> Network:
    """Recompute forwarding state after topology mutations.

    Returns the new network (also installed on the scenario); existing VPs
    are re-registered.  The virtual clock continues from the old network's
    time — runs are sequential in the same timeline.  Clears the
    staleness flag set by the mutation helpers.
    """
    old = scenario.network
    network = Network(
        scenario.internet,
        seed=scenario.config.asgen.seed,
        pps=scenario.config.pps,
    )
    network.now = old.now
    network.probes_sent = old.probes_sent
    network.congestion = old.congestion
    for vp in scenario.vps:
        network.add_vp(vp)
    scenario.network = network
    scenario.topology_dirty = False
    return network
