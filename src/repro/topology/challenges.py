"""Injection of the seven §4 challenge classes into a generated topology.

After :mod:`asgen` and :mod:`routergen` have produced a clean topology, this
module makes it *hostile* the way the real Internet is:

1. interconnect subnets supplied by one side (already done in routergen),
2. reply-egress source selection → third-party addresses,
3. border firewalls (silent, admin-reply, and echo-pass variants),
4. virtual routers answering with per-neighbor addresses,
5. sibling ASes (already present from asgen) plus multi-origin prefixes,
6. IXP fabric prefixes announced inconsistently,
7. unrouted infrastructure space and provider-aggregatable (PA) delegation
   onto customer routers (the Fig 12 limitation).

Every assignment is deterministic in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..asgraph import Rel
from ..net.ipid import IPIDModel
from ..net.policies import RouterPolicy, SourceSel
from ..rng import make_rng, weighted_choice
from .addressing import SubnetPool
from .asgen import GenState
from .model import ASKind, Internet, LinkKind, PrefixPolicy, Router


@dataclass
class ChallengeConfig:
    """Rates for each injected behaviour."""

    reply_egress_rate: float = 0.12      # §4.2 third-party addresses
    udp_responder_rate: float = 0.70     # Mercator-able routers
    udp_reply_egress_rate: float = 0.80
    ipid_shared_rate: float = 0.55       # Ally/MIDAR-resolvable
    ipid_per_iface_rate: float = 0.20
    ipid_random_rate: float = 0.15       # remainder is ZERO
    rate_limit_rate: float = 0.06        # of non-focal routers
    # Routers that only ever generate time-exceeded (direct probes are
    # dropped) — alias-resolvable only via TTL-limited probing (§5.3).
    ttl_only_rate: float = 0.05
    customer_firewall_rate: float = 0.62  # Table 1: firewall dominates customers
    firewall_admin_reply_rate: float = 0.10
    silent_neighbor_rate: float = 0.05   # §5.4.8 step 8.1
    echo_only_neighbor_rate: float = 0.03  # §5.4.8 step 8.2
    vrouter_rate: float = 0.04           # §4.4 virtual routers
    unrouted_infra_rate: float = 0.06    # §5.4.3
    pa_delegation_rate: float = 0.04     # Fig 12 limitation
    multi_origin_rate: float = 0.02      # §4.7
    focal_unrouted_infra: bool = False   # the VP network hides its own space


def apply_challenges(state: GenState, config: Optional[ChallengeConfig] = None) -> None:
    """Assign response policies and rewrite addressing/origination so every
    challenge class occurs in the topology."""
    if config is None:
        config = ChallengeConfig()
    internet = state.internet
    focal = state.focal_asn
    focal_family = internet.sibling_asns(focal)

    _assign_base_policies(state, config)
    _assign_neighbor_firewalls(state, config)
    _assign_virtual_routers(state, config)
    _unroute_infrastructure(state, config)
    _delegate_pa_space(state, config)
    _add_multi_origins(state, config)
    _ixp_fabric_announcements(state, config)

    # The VP network always responds: operators running a VP in their own
    # network do not firewall themselves.
    for asn in focal_family:
        for router in internet.routers_of(asn):
            policy: RouterPolicy = router.policy
            policy.responds_ttl_expired = True
            policy.responds_echo = True
            policy.firewall = False
            policy.rate_limit_pps = None

    if config.focal_unrouted_infra:
        node = internet.ases[focal]
        if node.infra_prefix is not None:
            existing = internet.prefix_policies.get(node.infra_prefix)
            if existing is not None:
                existing.origins = ()
                node.infra_announced = False
                internet._origin_trie = None  # invalidate cache


def _assign_base_policies(state: GenState, config: ChallengeConfig) -> None:
    internet = state.internet
    rng = make_rng(state.config.seed, "challenges", "base")
    focal_family = internet.sibling_asns(state.focal_asn)
    ipid_models = [
        IPIDModel.SHARED_COUNTER,
        IPIDModel.PER_INTERFACE,
        IPIDModel.RANDOM,
        IPIDModel.ZERO,
    ]
    zero_rate = max(
        0.0,
        1.0
        - config.ipid_shared_rate
        - config.ipid_per_iface_rate
        - config.ipid_random_rate,
    )
    weights = [
        config.ipid_shared_rate,
        config.ipid_per_iface_rate,
        config.ipid_random_rate,
        zero_rate,
    ]
    for router_id in sorted(internet.routers):
        router = internet.routers[router_id]
        policy = RouterPolicy()
        policy.source_sel = (
            SourceSel.REPLY_EGRESS
            if rng.random() < config.reply_egress_rate
            else SourceSel.INGRESS
        )
        policy.responds_udp = rng.random() < config.udp_responder_rate
        policy.udp_reply_egress = rng.random() < config.udp_reply_egress_rate
        if rng.random() < config.ttl_only_rate:
            # Answers only in-transit expiry; deaf to direct probes.
            policy.responds_echo = False
            policy.responds_udp = False
        policy.ipid_model = weighted_choice(rng, ipid_models, weights)
        policy.ipid_velocity = rng.uniform(5.0, 400.0)
        if (
            router.asn not in focal_family
            and rng.random() < config.rate_limit_rate
        ):
            policy.rate_limit_pps = rng.uniform(2.0, 20.0)
        router.policy = policy


def _neighbor_border_routers(internet: Internet, focal_family) -> Dict[int, List[Router]]:
    """For each neighbor AS of the focal network: its routers that sit on a
    link to the focal network."""
    found: Dict[int, List[Router]] = {}
    for asn in focal_family:
        for link in internet.interdomain_links(asn):
            for iface in link.interfaces:
                router = internet.routers[iface.router_id]
                if router.asn in focal_family:
                    continue
                found.setdefault(router.asn, []).append(router)
    return found


def _assign_neighbor_firewalls(state: GenState, config: ChallengeConfig) -> None:
    """Firewall / silence behaviour at the focal network's customer edges."""
    internet = state.internet
    rng = make_rng(state.config.seed, "challenges", "firewalls")
    focal_family = internet.sibling_asns(state.focal_asn)
    by_neighbor = _neighbor_border_routers(internet, focal_family)

    for asn in sorted(by_neighbor):
        rel = internet.relationship(state.focal_asn, asn)
        node = internet.ases[asn]
        roll = rng.random()
        routers = by_neighbor[asn]
        if rel is Rel.CUSTOMER or node.kind in (ASKind.ENTERPRISE, ASKind.STUB):
            if roll < config.silent_neighbor_rate:
                # §5.4.8 step 8.1: nothing ever comes back from this AS.
                for router in internet.routers_of(asn):
                    router.policy.responds_ttl_expired = False
                    router.policy.responds_echo = False
                    router.policy.responds_udp = False
                for router in routers:
                    router.policy.firewall = True
            elif roll < config.silent_neighbor_rate + config.echo_only_neighbor_rate:
                # §5.4.8 step 8.2: firewalled but echo passes / replies map
                # to the neighbor.
                for router in internet.routers_of(asn):
                    router.policy.responds_ttl_expired = False
                for router in routers:
                    router.policy.firewall = True
                    router.policy.firewall_allow_echo = True
            elif roll < (
                config.silent_neighbor_rate
                + config.echo_only_neighbor_rate
                + config.customer_firewall_rate
            ):
                # The common case (§5.4.2): border answers TTL-expired with
                # the provider-supplied ingress address, then drops.
                for router in routers:
                    router.policy.firewall = True
                    if rng.random() < config.firewall_admin_reply_rate:
                        router.policy.firewall_admin_reply = True


def _assign_virtual_routers(state: GenState, config: ChallengeConfig) -> None:
    """§4 challenge 4: routers answering with per-neighbor-AS addresses."""
    internet = state.internet
    rng = make_rng(state.config.seed, "challenges", "vrouters")
    for router_id in sorted(internet.routers):
        router = internet.routers[router_id]
        if not router.is_border or rng.random() >= config.vrouter_rate:
            continue
        neighbor_asns = sorted(
            {
                internet.routers[iface.router_id].asn
                for link_id in router.link_ids()
                for iface in internet.links[link_id].interfaces
                if internet.links[link_id].kind is not LinkKind.INTRA
                and internet.routers[iface.router_id].asn != router.asn
            }
        )
        if len(neighbor_asns) < 2:
            continue
        pool = state.pools.get(router.asn)
        if pool is None or not isinstance(pool, SubnetPool):
            continue
        vrouter: Dict[int, int] = {}
        for asn in neighbor_asns:
            try:
                addr = pool.alloc_addr()
            except Exception:
                break
            # Model the virtual-router address as a loopback interface so
            # alias ground truth knows it belongs to this router.
            internet.new_link(LinkKind.INTRA, [(router.router_id, addr)],
                              supplier_asn=router.asn, igp_cost=0.0)
            vrouter[asn] = addr
        if vrouter:
            router.policy.vrouter = vrouter


def _unroute_infrastructure(state: GenState, config: ChallengeConfig) -> None:
    """§5.4.3: some operators do not announce their router addressing."""
    internet = state.internet
    rng = make_rng(state.config.seed, "challenges", "unrouted")
    focal_family = internet.sibling_asns(state.focal_asn)
    for asn in sorted(internet.ases):
        node = internet.ases[asn]
        if asn in focal_family or node.infra_prefix is None:
            continue
        if node.kind not in (ASKind.TRANSIT, ASKind.CONTENT, ASKind.ENTERPRISE):
            continue
        if rng.random() >= config.unrouted_infra_rate:
            continue
        existing = internet.prefix_policies.get(node.infra_prefix)
        if existing is not None:
            existing.origins = ()
            node.infra_announced = False
    internet._origin_trie = None


def _delegate_pa_space(state: GenState, config: ChallengeConfig) -> None:
    """Fig 12: a customer numbers internal routers from provider space."""
    internet = state.internet
    rng = make_rng(state.config.seed, "challenges", "pa")
    focal = state.focal_asn
    focal_pool = state.pools.get(focal)
    if not isinstance(focal_pool, SubnetPool):
        return
    customers = internet.graph.customers(focal)
    for asn in customers:
        if rng.random() >= config.pa_delegation_rate:
            continue
        node = internet.ases[asn]
        # Renumber the customer's internal links from the provider's space.
        for router_id in node.router_ids:
            router = internet.routers[router_id]
            for iface in router.interfaces:
                link = internet.links[iface.link_id]
                if link.kind is not LinkKind.INTRA or iface.addr is None:
                    continue
                try:
                    new_addr = focal_pool.alloc_addr()
                except Exception:
                    return
                del internet.addr_to_iface[iface.addr]
                iface.addr = new_addr
                internet.addr_to_iface[new_addr] = iface
                link.supplier_asn = focal
    internet._origin_trie = None


def _add_multi_origins(state: GenState, config: ChallengeConfig) -> None:
    """§4 challenge 7: prefixes originated by more than one AS."""
    internet = state.internet
    rng = make_rng(state.config.seed, "challenges", "moas")
    focal_family = internet.sibling_asns(state.focal_asn)
    candidates = [
        policy
        for policy in internet.prefix_policies.values()
        if policy.announced
        and len(policy.origins) == 1
        and policy.origins[0] not in focal_family
    ]
    candidates.sort(key=lambda p: p.prefix)
    for policy in candidates:
        if rng.random() >= config.multi_origin_rate:
            continue
        origin = policy.origins[0]
        # Prefer a sibling as the second origin; else any provider.
        siblings = [a for a in internet.graph.siblings(origin)]
        providers = internet.graph.providers(origin)
        pool = siblings or providers
        if not pool:
            continue
        second = rng.choice(sorted(pool))
        second_routers = internet.ases[second].router_ids
        if not second_routers:
            continue
        policy.origins = (origin, second)
        policy.host_router[second] = second_routers[0]
    internet._origin_trie = None


def _ixp_fabric_announcements(state: GenState, config: ChallengeConfig) -> None:
    """§4 challenge 6: IXP fabric prefixes announced inconsistently."""
    internet = state.internet
    rng = make_rng(state.config.seed, "challenges", "ixp-announce")
    for ixp_id in sorted(internet.ixps):
        ixp = internet.ixps[ixp_id]
        members = sorted(ixp.members)
        if not members:
            continue
        roll = rng.random()
        if roll < 0.5 and members:
            # A member AS (inadvertently or by arrangement) originates it.
            announcer = rng.choice(members)
            host_router = internet.ases[announcer].router_ids[0]
            internet.add_prefix_policy(
                PrefixPolicy(
                    prefix=ixp.fabric,
                    origins=(announcer,),
                    host_router={announcer: host_router},
                    live_hosts=frozenset(),
                )
            )
        # Otherwise the fabric stays unannounced.
    internet._origin_trie = None
