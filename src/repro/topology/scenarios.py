"""Named measurement scenarios.

Each scenario reproduces one of the paper's four validation networks
(§5.6) or a scaled-down variant for fast tests:

* ``re_network`` — the R&E network: ~17 routers, ~30 customers, 2 peers,
  1 provider, present at three IXPs.
* ``large_access`` — the large U.S. access network of Table 1 / §6:
  hundreds of customers, 26 peers (including a dense Level3-like peer with
  ~45 router-level links and Akamai-like selective-announcement CDNs),
  5 providers, 19 VPs.
* ``tier1`` — the Tier-1 network: a very large customer cone, no providers.
* ``small_access`` — a small access network (validates §5.6's fourth
  dataset and the unannounced-own-space behaviour of §5.4.1).
* ``mini`` — a tiny Internet for unit tests.

Paper-scale AS counts (652 / 1644 customers) are the defaults' *shape*;
the default sizes here are scaled to laptop runtimes and can be raised via
``ScenarioConfig`` overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..net import Network, VantagePoint
from .asgen import ASGenConfig, FocalSpec, GenState, generate_as_level
from .challenges import ChallengeConfig, apply_challenges
from .model import ASKind, Internet
from .routergen import RouterGenInfo, build_router_level


@dataclass
class ScenarioConfig:
    name: str
    asgen: ASGenConfig
    challenges: ChallengeConfig = field(default_factory=ChallengeConfig)
    dense_link_count: int = 45
    cdn_link_count: int = 8
    n_vps: int = 1
    pps: float = 100.0
    # How VPs are placed over the focal network's PoPs (§6 shows placement
    # matters as much as count): "spread" = evenly west-to-east,
    # "west"/"east" = clustered at one coast.
    vp_placement: str = "spread"


@dataclass
class Scenario:
    """A fully built simulated measurement environment."""

    config: ScenarioConfig
    state: GenState
    internet: Internet
    network: Network
    info: RouterGenInfo
    vps: List[VantagePoint]
    #: Structured mutation events recorded by :mod:`repro.topology.evolve`,
    #: in application order.  The epoch pipeline slices this log to build
    #: per-epoch deltas.
    mutations: List[object] = field(default_factory=list)
    #: True between a topology mutation and the next
    #: :func:`~repro.topology.evolve.rebuild_network` — forwarding state
    #: (the routing oracle) is stale while set.
    topology_dirty: bool = False

    @property
    def focal_asn(self) -> int:
        return self.state.focal_asn

    def ensure_forwarding_current(self) -> None:
        """Raise if the topology changed since the network was (re)built.

        Measurement against a stale :class:`~repro.net.Network` walks
        forwarding state that no longer matches the topology; every run
        entry point calls this so the failure is a clear error instead of
        silently wrong traces.
        """
        if self.topology_dirty:
            from ..errors import TopologyError

            raise TopologyError(
                "topology mutated since the network was built; call "
                "repro.topology.evolve.rebuild_network(scenario) before "
                "measuring"
            )

    @property
    def vp_as_list(self) -> List[int]:
        """The manually curated VP AS (sibling) list of §5.2."""
        return sorted(self.internet.sibling_asns(self.focal_asn))


def build_scenario(config: ScenarioConfig) -> Scenario:
    """Generate the Internet, inject challenges, and place VPs."""
    state = generate_as_level(config.asgen)
    info = build_router_level(
        state,
        dense_link_count=config.dense_link_count,
        cdn_link_count=config.cdn_link_count,
    )
    apply_challenges(state, config.challenges)
    network = Network(state.internet, seed=config.asgen.seed, pps=config.pps)
    vps = _place_vps(state, info, network, config.n_vps,
                     placement=config.vp_placement)
    return Scenario(config, state, state.internet, network, info, vps)


def _place_vps(
    state: GenState, info: RouterGenInfo, network: Network, n_vps: int,
    placement: str = "spread",
) -> List[VantagePoint]:
    """Place VPs over the focal network's PoPs.

    ``spread`` samples PoPs evenly west-to-east (the paper's deployment
    sought geographic diversity); ``west``/``east`` cluster every VP at
    one coast, reproducing §6's point that poorly-placed VPs miss the
    hot-potato links of distant regions.
    """
    internet = state.internet
    focal = internet.ases[state.focal_asn]
    pops = sorted(focal.pops, key=lambda p: (p.city.lon, p.pop_id))
    if not pops:
        raise ValueError("focal network has no PoPs")
    count = min(n_vps, len(pops))
    if placement == "west":
        chosen = pops[:count]
    elif placement == "east":
        chosen = pops[-count:]
    elif count == len(pops):
        chosen = pops
    else:
        stride = (len(pops) - 1) / max(1, count - 1) if count > 1 else 0
        chosen = [pops[int(round(i * stride))] for i in range(count)]
        # De-duplicate while preserving order.
        seen = set()
        chosen = [p for p in chosen if not (p.pop_id in seen or seen.add(p.pop_id))]
    vps = []
    for index, pop in enumerate(chosen):
        subnet = info.focal_access_subnets.get(pop.pop_id)
        first_router = info.focal_agg_router.get(pop.pop_id)
        if subnet is None or first_router is None:
            continue
        vp = VantagePoint(
            name="vp%02d-%s" % (index, pop.city.name.replace(" ", "")),
            asn=state.focal_asn,
            pop_id=pop.pop_id,
            addr=subnet.addr + 10 + index,
            first_router=first_router,
        )
        network.add_vp(vp)
        vps.append(vp)
    return vps


# -- presets -------------------------------------------------------------------


def mini(seed: int = 1, n_vps: int = 2) -> ScenarioConfig:
    """A tiny Internet for unit tests (runs in well under a second)."""
    return ScenarioConfig(
        name="mini",
        asgen=ASGenConfig(
            seed=seed,
            n_tier1=3,
            n_transit=4,
            n_access=2,
            n_cdn=2,
            n_content=4,
            n_stub=12,
            n_research=1,
            n_ixps=1,
            focal=FocalSpec(
                kind=ASKind.ACCESS,
                n_customers=10,
                n_peers=4,
                n_providers=2,
                n_pops=4,
                n_siblings=1,
                dense_peers=1,
                cdn_peers=1,
            ),
        ),
        dense_link_count=6,
        cdn_link_count=3,
        n_vps=n_vps,
    )


def re_network(seed: int = 2) -> ScenarioConfig:
    """The research-and-education network of §5.6."""
    return ScenarioConfig(
        name="re_network",
        asgen=ASGenConfig(
            seed=seed,
            n_tier1=5,
            n_transit=10,
            n_access=4,
            n_cdn=3,
            n_content=10,
            n_stub=50,
            n_research=0,  # the focal network *is* the R&E network
            n_ixps=3,
            focal=FocalSpec(
                kind=ASKind.RESEARCH,
                n_customers=30,
                n_peers=2,
                n_providers=1,
                n_pops=3,
                n_siblings=0,
                dense_peers=0,
                cdn_peers=0,
            ),
        ),
        dense_link_count=3,
        cdn_link_count=2,
        n_vps=1,
    )


def large_access(seed: int = 3, n_customers: int = 160, n_vps: int = 19) -> ScenarioConfig:
    """The large U.S. broadband provider of Table 1 and §6.

    ``n_customers`` defaults well below the paper's 652 for runtime; raise
    it to paper scale for full-fidelity runs.
    """
    return ScenarioConfig(
        name="large_access",
        asgen=ASGenConfig(
            seed=seed,
            n_tier1=6,
            n_transit=14,
            n_access=5,
            n_cdn=5,
            n_content=16,
            n_stub=60,
            n_research=1,
            n_ixps=2,
            focal=FocalSpec(
                kind=ASKind.ACCESS,
                n_customers=n_customers,
                n_peers=26,
                n_providers=5,
                n_pops=19,
                n_siblings=1,
                dense_peers=2,
                cdn_peers=5,
            ),
        ),
        dense_link_count=45,
        cdn_link_count=9,
        n_vps=n_vps,
    )


def tier1(seed: int = 4, n_customers: int = 320) -> ScenarioConfig:
    """The Tier-1 transit network of §5.6 / Table 1 (scaled)."""
    return ScenarioConfig(
        name="tier1",
        asgen=ASGenConfig(
            seed=seed,
            n_tier1=5,
            n_transit=12,
            n_access=5,
            n_cdn=4,
            n_content=14,
            n_stub=50,
            n_research=1,
            n_ixps=2,
            focal=FocalSpec(
                kind=ASKind.TIER1,
                n_customers=n_customers,
                n_peers=12,
                n_providers=0,
                n_pops=12,
                n_siblings=1,
                dense_peers=3,
                cdn_peers=2,
            ),
        ),
        dense_link_count=12,
        cdn_link_count=6,
        n_vps=1,
    )


def cdn_network(seed: int = 6) -> ScenarioConfig:
    """A VP hosted in a CDN (§5.7: "We also used bdrmap to infer border
    routers of 25 other networks, with similar results") — a very
    different neighbor mix: peer-heavy, few customers, wide footprint."""
    return ScenarioConfig(
        name="cdn_network",
        asgen=ASGenConfig(
            seed=seed,
            n_tier1=5,
            n_transit=10,
            n_access=6,
            n_cdn=2,
            n_content=10,
            n_stub=40,
            n_research=1,
            n_ixps=2,
            focal=FocalSpec(
                kind=ASKind.CDN,
                n_customers=4,
                n_peers=18,
                n_providers=2,
                n_pops=10,
                n_siblings=1,
                dense_peers=1,
                cdn_peers=0,
            ),
        ),
        dense_link_count=8,
        cdn_link_count=4,
        n_vps=2,
    )


def small_access(seed: int = 5) -> ScenarioConfig:
    """The small access network of §5.6; also exercises the case where the
    VP network does not announce some of its own address space."""
    return ScenarioConfig(
        name="small_access",
        asgen=ASGenConfig(
            seed=seed,
            n_tier1=4,
            n_transit=8,
            n_access=3,
            n_cdn=2,
            n_content=8,
            n_stub=30,
            n_research=1,
            n_ixps=1,
            focal=FocalSpec(
                kind=ASKind.ACCESS,
                n_customers=24,
                n_peers=8,
                n_providers=2,
                n_pops=4,
                n_siblings=0,
                dense_peers=1,
                cdn_peers=1,
            ),
        ),
        challenges=ChallengeConfig(focal_unrouted_infra=True),
        dense_link_count=5,
        cdn_link_count=3,
        n_vps=2,
    )


# Name -> factory registry.  Both the CLI and the parallel collection
# engine rebuild scenarios from (name, seed, kwargs) specs — a picklable
# handle that crosses process boundaries where a built Scenario cannot.
SCENARIO_FACTORIES = {
    "mini": mini,
    "cdn_network": cdn_network,
    "re_network": re_network,
    "large_access": large_access,
    "tier1": tier1,
    "small_access": small_access,
}


def scenario_config(name: str, seed=None, **kwargs) -> ScenarioConfig:
    """Look up a registered scenario factory and instantiate its config.
    ``seed=None`` keeps the factory's default seed."""
    try:
        factory = SCENARIO_FACTORIES[name]
    except KeyError:
        raise ValueError(
            "unknown scenario %r (choose from %s)"
            % (name, ", ".join(sorted(SCENARIO_FACTORIES)))
        ) from None
    if seed is not None:
        kwargs["seed"] = seed
    return factory(**kwargs)
