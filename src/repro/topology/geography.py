"""Geography for PoPs.

Figure 16 of the paper plots the longitude of the VP against the longitude
of the interdomain links it observes, showing that hot-potato routing makes
link visibility geographic.  We give every PoP a real U.S. city coordinate
so the same analysis can be reproduced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class City:
    name: str
    lon: float
    lat: float
    iata: str = ""


# A west-to-east spread of U.S. cities (longitude, latitude, airport code —
# the codes operators embed in router hostnames).
CITIES: List[City] = [
    City("Seattle", -122.33, 47.61, "sea"),
    City("Portland", -122.68, 45.52, "pdx"),
    City("San Jose", -121.89, 37.34, "sjc"),
    City("Los Angeles", -118.24, 34.05, "lax"),
    City("Las Vegas", -115.14, 36.17, "las"),
    City("Phoenix", -112.07, 33.45, "phx"),
    City("Salt Lake City", -111.89, 40.76, "slc"),
    City("Denver", -104.99, 39.74, "den"),
    City("Albuquerque", -106.65, 35.08, "abq"),
    City("Dallas", -96.80, 32.78, "dfw"),
    City("Houston", -95.37, 29.76, "iah"),
    City("Kansas City", -94.58, 39.10, "mci"),
    City("Minneapolis", -93.27, 44.98, "msp"),
    City("Chicago", -87.63, 41.88, "ord"),
    City("St. Louis", -90.20, 38.63, "stl"),
    City("Nashville", -86.78, 36.16, "bna"),
    City("Atlanta", -84.39, 33.75, "atl"),
    City("Miami", -80.19, 25.76, "mia"),
    City("Charlotte", -80.84, 35.23, "clt"),
    City("Ashburn", -77.49, 39.04, "iad"),
    City("Washington DC", -77.04, 38.91, "dca"),
    City("Philadelphia", -75.17, 39.95, "phl"),
    City("New York", -74.01, 40.71, "jfk"),
    City("Boston", -71.06, 42.36, "bos"),
]

CITY_BY_IATA = {city.iata: city for city in CITIES}


def geo_distance(a: City, b: City) -> float:
    """Great-circle distance in kilometres (haversine)."""
    radius_km = 6371.0
    lat_a, lat_b = math.radians(a.lat), math.radians(b.lat)
    dlat = lat_b - lat_a
    dlon = math.radians(b.lon - a.lon)
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat_a) * math.cos(lat_b) * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * radius_km * math.asin(math.sqrt(h))
