"""AS-level Internet generation.

Builds the organization / AS / relationship layer: a tier-1 clique, a
transit hierarchy, access and content networks, CDNs, stubs, IXPs with
multilateral peering, sibling organizations, and one *focal* network — the
AS that will host vantage points, whose neighbor-class mix (customers /
peers / providers) is specified exactly so the Table 1 scenarios can be
reproduced.

Output: an :class:`~repro.topology.model.Internet` with ASes, orgs,
relationships, IXP membership, and per-AS address allocations — but no
routers yet (see :mod:`repro.topology.routergen`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..asgraph import Rel
from ..errors import TopologyError
from ..rng import make_rng, sample_up_to, weighted_choice
from .addressing import AddressAllocator
from .geography import CITIES
from .model import ASKind, ASNode, Internet, IXP, Org


@dataclass
class FocalSpec:
    """Exact neighbor-class mix for the VP-hosting network."""

    kind: ASKind = ASKind.ACCESS
    n_customers: int = 60
    n_peers: int = 8
    n_providers: int = 2
    n_pops: int = 8
    n_siblings: int = 1
    # Peers that interconnect at many router-level links (the Level3-like
    # "dense" peers of §6), as (name, link_count_hint) pairs.
    dense_peers: int = 2
    # CDN peers with selective-announcement behaviour (Akamai-like).
    cdn_peers: int = 2


@dataclass
class ASGenConfig:
    """Knobs for the background Internet around the focal network."""

    seed: int = 1
    n_tier1: int = 6
    n_transit: int = 14
    n_access: int = 6
    n_cdn: int = 4
    n_content: int = 12
    n_stub: int = 80
    n_research: int = 1
    n_ixps: int = 2
    sibling_org_rate: float = 0.04
    multihome_rate: float = 0.35
    focal: FocalSpec = field(default_factory=FocalSpec)


@dataclass
class GenState:
    """Shared state threaded through the generation stages."""

    config: ASGenConfig
    internet: Internet
    allocator: AddressAllocator
    rng: random.Random
    focal_asn: int = 0
    ixp_members: Dict[int, Set[int]] = field(default_factory=dict)  # ixp -> asns
    # AS pairs that peer via an IXP route server (no private link).
    ixp_only_pairs: Set[Tuple[int, int]] = field(default_factory=set)
    dense_peer_asns: List[int] = field(default_factory=list)
    cdn_peer_asns: List[int] = field(default_factory=list)
    # Per-AS infrastructure subnet pools, persisted so later stages
    # (challenge injection) can allocate more addresses.
    pools: Dict[int, object] = field(default_factory=dict)
    next_asn: int = 100

    def take_asn(self) -> int:
        asn = self.next_asn
        self.next_asn += 1
        return asn


_KIND_NAMES = {
    ASKind.TIER1: "T1-Backbone",
    ASKind.TRANSIT: "Transit",
    ASKind.ACCESS: "Access",
    ASKind.CDN: "CDN",
    ASKind.CONTENT: "Content",
    ASKind.ENTERPRISE: "Enterprise",
    ASKind.STUB: "Stub",
    ASKind.RESEARCH: "REN",
    ASKind.IXP_RS: "IXP-RS",
}

# (allocation prefix length, count range) per kind: how much address space
# and how many distinct announced prefixes each kind holds.
_ALLOC_PLAN = {
    ASKind.TIER1: (14, (2, 4)),
    ASKind.TRANSIT: (16, (2, 4)),
    ASKind.ACCESS: (14, (2, 5)),
    ASKind.CDN: (17, (3, 6)),
    ASKind.CONTENT: (19, (1, 3)),
    ASKind.ENTERPRISE: (21, (1, 2)),
    ASKind.STUB: (22, (1, 2)),
    ASKind.RESEARCH: (16, (1, 3)),
}


def _new_as(state: GenState, kind: ASKind, org_id: Optional[str] = None) -> ASNode:
    asn = state.take_asn()
    if org_id is None:
        org_id = "org-%d" % asn
        state.internet.add_org(Org(org_id, "%s-%d" % (_KIND_NAMES[kind], asn)))
    node = ASNode(asn, kind, org_id, name="%s-%d" % (_KIND_NAMES[kind], asn))
    state.internet.add_as(node)
    state.internet.orgs[org_id].asns.append(asn)
    return node


def _allocate_space(state: GenState, node: ASNode) -> None:
    """Give ``node`` its address allocations and an infrastructure block."""
    plen, (lo, hi) = _ALLOC_PLAN[node.kind]
    count = state.rng.randint(lo, hi)
    org = node.org_id
    for _ in range(count):
        node.prefixes.append(state.allocator.alloc(plen + state.rng.randint(0, 2), org))
    # Infrastructure space for router interfaces and interconnect subnets.
    infra_plen = 18 if node.kind in (ASKind.TIER1, ASKind.TRANSIT, ASKind.ACCESS) else 22
    node.infra_prefix = state.allocator.alloc(infra_plen, org)


def _add_edge(state: GenState, a: int, b: int, rel_a_to_b: Rel) -> bool:
    """Add a relationship edge if the pair is not already related."""
    if a == b or state.internet.graph.relationship(a, b) is not None:
        return False
    state.internet.graph.add_edge(a, b, rel_a_to_b)
    return True


def generate_as_level(config: ASGenConfig) -> GenState:
    """Generate orgs, ASes, relationships, IXPs, and address allocations."""
    internet = Internet(config.seed)
    state = GenState(
        config=config,
        internet=internet,
        allocator=AddressAllocator(),
        rng=make_rng(config.seed, "asgen"),
    )

    tier1s = [_new_as(state, ASKind.TIER1) for _ in range(config.n_tier1)]
    transits = [_new_as(state, ASKind.TRANSIT) for _ in range(config.n_transit)]
    accesses = [_new_as(state, ASKind.ACCESS) for _ in range(config.n_access)]
    cdns = [_new_as(state, ASKind.CDN) for _ in range(config.n_cdn)]
    contents = [_new_as(state, ASKind.CONTENT) for _ in range(config.n_content)]
    researches = [_new_as(state, ASKind.RESEARCH) for _ in range(config.n_research)]

    rng = state.rng

    # Tier-1 clique: full mesh of peering.
    for i, a in enumerate(tier1s):
        for b in tier1s[i + 1:]:
            _add_edge(state, a.asn, b.asn, Rel.PEER)

    # Transit providers: customers of 2-3 tier-1s; some peer among themselves.
    for node in transits:
        for provider in sample_up_to(rng, [t.asn for t in tier1s], rng.randint(2, 3)):
            _add_edge(state, node.asn, provider, Rel.PROVIDER)
    for i, a in enumerate(transits):
        for b in transits[i + 1:]:
            if rng.random() < 0.25:
                _add_edge(state, a.asn, b.asn, Rel.PEER)

    # Access networks: customers of tier-1s/transits, peer with CDNs.
    for node in accesses:
        uppers = [t.asn for t in tier1s] + [t.asn for t in transits]
        for provider in sample_up_to(rng, uppers, rng.randint(2, 3)):
            _add_edge(state, node.asn, provider, Rel.PROVIDER)
    # CDNs: customers of 1-2 tier-1s, peer broadly with access networks.
    for node in cdns:
        for provider in sample_up_to(rng, [t.asn for t in tier1s], rng.randint(1, 2)):
            _add_edge(state, node.asn, provider, Rel.PROVIDER)
        for access in accesses:
            if rng.random() < 0.6:
                _add_edge(state, node.asn, access.asn, Rel.PEER)

    # Content networks: customers of transits (occasionally tier-1s).
    for node in contents:
        pool = [t.asn for t in transits] + [t.asn for t in tier1s]
        weights = [3.0] * len(transits) + [1.0] * len(tier1s)
        n_providers = 1 + (1 if rng.random() < config.multihome_rate else 0)
        chosen: Set[int] = set()
        while len(chosen) < n_providers:
            chosen.add(weighted_choice(rng, pool, weights))
        for provider in chosen:
            _add_edge(state, node.asn, provider, Rel.PROVIDER)

    # Research network: one transit provider; peers at IXPs (added below).
    for node in researches:
        _add_edge(state, node.asn, rng.choice(transits).asn, Rel.PROVIDER)

    # Background stubs: customers of transit/access networks.
    stub_providers = transits + accesses
    for _ in range(config.n_stub):
        kind = ASKind.ENTERPRISE if rng.random() < 0.4 else ASKind.STUB
        node = _new_as(state, kind)
        n_providers = 1 + (1 if rng.random() < config.multihome_rate else 0)
        for provider in sample_up_to(
            rng, [p.asn for p in stub_providers], n_providers
        ):
            _add_edge(state, node.asn, provider, Rel.PROVIDER)

    _build_focal(state, tier1s, transits, cdns)
    _build_ixps(state)
    _build_siblings(state)

    for node in internet.ases.values():
        if node.kind is not ASKind.IXP_RS:
            _allocate_space(state, node)

    _check_connected(state)
    return state


def _build_focal(state: GenState, tier1s, transits, cdns) -> None:
    """Insert the focal (VP-hosting) network with an exact neighbor mix."""
    config = state.config
    spec = config.focal
    rng = state.rng
    focal = _new_as(state, spec.kind)
    focal.name = "Focal-%s" % spec.kind.value
    state.focal_asn = focal.asn

    # Providers.
    provider_pool = [t.asn for t in tier1s] + [t.asn for t in transits]
    for provider in sample_up_to(rng, provider_pool, spec.n_providers):
        _add_edge(state, focal.asn, provider, Rel.PROVIDER)

    # Peers: dense transit peers first (tier-1s not already providers),
    # then CDNs, then other networks.
    peers_needed = spec.n_peers
    dense_candidates = [
        t.asn
        for t in tier1s
        if state.internet.graph.relationship(focal.asn, t.asn) is None
    ]
    for asn in dense_candidates[: spec.dense_peers]:
        if peers_needed <= 0:
            break
        if _add_edge(state, focal.asn, asn, Rel.PEER):
            state.dense_peer_asns.append(asn)
            peers_needed -= 1
    cdn_candidates = [
        c.asn
        for c in cdns
        if state.internet.graph.relationship(focal.asn, c.asn) is None
    ]
    for asn in cdn_candidates[: spec.cdn_peers]:
        if peers_needed <= 0:
            break
        if _add_edge(state, focal.asn, asn, Rel.PEER):
            state.cdn_peer_asns.append(asn)
            peers_needed -= 1
    other_peer_pool = [
        asn
        for asn in state.internet.ases
        if state.internet.ases[asn].kind
        in (ASKind.TRANSIT, ASKind.CDN, ASKind.CONTENT, ASKind.ACCESS)
        and state.internet.graph.relationship(focal.asn, asn) is None
        and asn != focal.asn
    ]
    rng.shuffle(other_peer_pool)
    for asn in other_peer_pool:
        if peers_needed <= 0:
            break
        if _add_edge(state, focal.asn, asn, Rel.PEER):
            peers_needed -= 1
    if peers_needed > 0:
        raise TopologyError(
            "could not place %d focal peers; enlarge background" % peers_needed
        )

    # Customers: fresh stub/enterprise/content ASes homed to the focal AS.
    for _ in range(spec.n_customers):
        roll = rng.random()
        if roll < 0.55:
            kind = ASKind.STUB
        elif roll < 0.85:
            kind = ASKind.ENTERPRISE
        else:
            kind = ASKind.CONTENT
        node = _new_as(state, kind)
        _add_edge(state, node.asn, focal.asn, Rel.PROVIDER)
        if rng.random() < config.multihome_rate * 0.5:
            backup = rng.choice([t.asn for t in transits])
            _add_edge(state, node.asn, backup, Rel.PROVIDER)


def _build_ixps(state: GenState) -> None:
    """Create IXPs, pick members, and add route-server p2p relationships."""
    config = state.config
    rng = make_rng(config.seed, "ixps")
    internet = state.internet
    eligible_kinds = (
        ASKind.TRANSIT,
        ASKind.CONTENT,
        ASKind.CDN,
        ASKind.ACCESS,
        ASKind.RESEARCH,
    )
    eligible = [
        node.asn
        for node in internet.ases.values()
        if node.kind in eligible_kinds
    ]
    # The focal and research networks always join IXPs so the R&E scenario
    # (validated via IXP databases, §5.6) is exercised.
    research_asns = [
        n.asn for n in internet.ases.values() if n.kind is ASKind.RESEARCH
    ]
    if state.focal_asn:
        research_asns.append(state.focal_asn)
    for index in range(config.n_ixps):
        city = rng.choice(CITIES)
        fabric = state.allocator.alloc(23, "ixp-%d" % index)
        rs_node = _new_as(state, ASKind.IXP_RS)
        ixp = IXP(index, "IXP-%s-%d" % (city.name.replace(" ", ""), index),
                  fabric, rs_node.asn, city)
        internet.ixps[index] = ixp
        members = set(
            sample_up_to(rng, eligible, max(4, len(eligible) // (config.n_ixps + 1)))
        )
        members.update(research_asns)
        state.ixp_members[index] = members
        # Multilateral peering via the route server: member pairs without an
        # existing relationship become p2p, established over the fabric.
        ordered = sorted(members)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                if internet.graph.relationship(a, b) is not None:
                    continue
                if rng.random() < 0.5:
                    _add_edge(state, a, b, Rel.PEER)
                    state.ixp_only_pairs.add((a, b))


def _build_siblings(state: GenState) -> None:
    """Merge some orgs into multi-AS organizations (§4 challenge 5)."""
    config = state.config
    rng = make_rng(config.seed, "siblings")
    internet = state.internet
    spec = config.focal

    candidates = [
        node
        for node in internet.ases.values()
        if node.kind in (ASKind.TRANSIT, ASKind.ACCESS, ASKind.CONTENT)
        and node.asn != state.focal_asn
    ]
    rng.shuffle(candidates)
    n_merge = int(len(candidates) * config.sibling_org_rate)
    for node in candidates[:n_merge]:
        sibling = _new_as(state, node.kind, org_id=node.org_id)
        sibling.name = node.name + "-sib"
        internet.graph.add_edge(node.asn, sibling.asn, Rel.SIBLING)
        # The sibling typically reuses the main AS's providers.
        for provider in internet.graph.providers(node.asn):
            if rng.random() < 0.7:
                _add_edge(state, sibling.asn, provider, Rel.PROVIDER)

    # Focal siblings (the VP-AS list of §5.2 requires manual curation of
    # exactly these).
    focal = internet.ases[state.focal_asn]
    for _ in range(spec.n_siblings):
        sibling = _new_as(state, focal.kind, org_id=focal.org_id)
        sibling.name = focal.name + "-sib"
        internet.graph.add_edge(focal.asn, sibling.asn, Rel.SIBLING)
        for provider in internet.graph.providers(focal.asn):
            if rng.random() < 0.5:
                _add_edge(state, sibling.asn, provider, Rel.PROVIDER)


def _check_connected(state: GenState) -> None:
    """Every non-IXP AS must reach the tier-1 clique via providers/peers."""
    graph = state.internet.graph
    for node in state.internet.ases.values():
        if node.kind is ASKind.IXP_RS:
            continue
        if graph.degree(node.asn) == 0:
            raise TopologyError("AS%d generated with no neighbors" % node.asn)
