"""Address allocation for the synthetic Internet.

Two layers, mirroring real practice:

* :class:`AddressAllocator` plays the RIR role — it carves non-overlapping
  blocks out of global unicast space and records each delegation (these
  records become the synthetic RIR delegation files of §5.2).
* :class:`SubnetPool` plays the operator role — carving /30 and /31
  interdomain subnets, loopbacks, and internal link subnets out of an AS's
  own allocations (§4 challenge 1: the provider usually supplies interconnect
  addressing).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..addr import MAX_ADDR, Prefix, netmask
from ..errors import TopologyError

# Ranges we never allocate from (reserved / special-use / multicast).
_RESERVED: List[Prefix] = [
    Prefix.parse("0.0.0.0/8"),
    Prefix.parse("10.0.0.0/8"),
    Prefix.parse("100.64.0.0/10"),
    Prefix.parse("127.0.0.0/8"),
    Prefix.parse("169.254.0.0/16"),
    Prefix.parse("172.16.0.0/12"),
    Prefix.parse("192.0.2.0/24"),
    Prefix.parse("192.168.0.0/16"),
    Prefix.parse("198.18.0.0/15"),
    Prefix.parse("203.0.113.0/24"),
    Prefix.parse("224.0.0.0/3"),
]


def _is_reserved(prefix: Prefix) -> bool:
    return any(
        r.contains_prefix(prefix) or prefix.contains_prefix(r) for r in _RESERVED
    )


class AddressAllocator:
    """Sequential, alignment-respecting allocator over global unicast space."""

    def __init__(self, start: str = "1.0.0.0") -> None:
        self._cursor = Prefix.parse(start + "/32").addr
        self.delegations: List[Tuple[str, Prefix]] = []

    def alloc(self, plen: int, org_id: Optional[str] = None) -> Prefix:
        """Allocate the next free, aligned prefix of length ``plen``."""
        size = 1 << (32 - plen)
        cursor = self._cursor
        while True:
            aligned = (cursor + size - 1) & ~(size - 1) & MAX_ADDR
            if aligned + size - 1 > MAX_ADDR:
                raise TopologyError("address space exhausted at /%d" % plen)
            candidate = Prefix(aligned, plen)
            if _is_reserved(candidate):
                # Jump past the reserved range that collided.
                blocker = next(
                    r
                    for r in _RESERVED
                    if r.contains_prefix(candidate) or candidate.contains_prefix(r)
                )
                cursor = blocker.last + 1
                continue
            self._cursor = aligned + size
            if org_id is not None:
                self.delegations.append((org_id, candidate))
            return candidate


class SubnetPool:
    """Carves small subnets (interdomain /30s, /31s, internal links, and
    single addresses) out of one allocated prefix."""

    def __init__(self, prefix: Prefix) -> None:
        self.prefix = prefix
        self._cursor = prefix.addr
        # Returned subnets, keyed by prefix length.  Only topology
        # mutations (link turn-downs) ever release, so generation-time
        # allocation order is untouched; a later link between the same
        # ASes renumbers onto the freed subnet instead of burning pool
        # space — the way operators recycle interconnect /30s.
        self._free: Dict[int, List[Prefix]] = {}

    def remaining(self) -> int:
        return self.prefix.last - self._cursor + 1

    def alloc_subnet(self, plen: int) -> Prefix:
        """Allocate the next aligned subnet of length ``plen``,
        preferring previously released subnets of the same size."""
        if plen < self.prefix.plen:
            raise TopologyError(
                "cannot carve a /%d out of %s" % (plen, self.prefix)
            )
        free = self._free.get(plen)
        if free:
            return free.pop()
        size = 1 << (32 - plen)
        aligned = (self._cursor + size - 1) & ~(size - 1)
        if aligned + size - 1 > self.prefix.last:
            raise TopologyError("subnet pool %s exhausted" % self.prefix)
        self._cursor = aligned + size
        return Prefix(aligned, plen)

    def release_subnet(self, subnet: Prefix) -> None:
        """Return a previously allocated subnet for reuse."""
        if not self.prefix.contains_prefix(subnet):
            raise TopologyError(
                "subnet %s was not carved from pool %s"
                % (subnet, self.prefix)
            )
        self._free.setdefault(subnet.plen, []).append(subnet)

    def alloc_p2p(self, use_31: bool) -> Tuple[Prefix, int, int]:
        """Allocate a point-to-point subnet; returns (subnet, addr_a, addr_b).

        /31 subnets use both addresses (RFC 3021); /30 subnets use the two
        middle addresses.
        """
        if use_31:
            subnet = self.alloc_subnet(31)
            return subnet, subnet.addr, subnet.addr + 1
        subnet = self.alloc_subnet(30)
        return subnet, subnet.addr + 1, subnet.addr + 2

    def alloc_addr(self) -> int:
        """Allocate a single host address (e.g. a loopback)."""
        if self._cursor > self.prefix.last:
            raise TopologyError("subnet pool %s exhausted" % self.prefix)
        addr = self._cursor
        self._cursor += 1
        return addr

    def hosts_of(self, subnet: Prefix) -> Iterator[int]:
        yield from subnet.hosts()


def p2p_addresses(subnet: Prefix) -> Tuple[int, int]:
    """The two usable addresses of a /30 or /31 point-to-point subnet."""
    if subnet.plen == 31:
        return subnet.addr, subnet.addr + 1
    if subnet.plen == 30:
        return subnet.addr + 1, subnet.addr + 2
    raise TopologyError("not a point-to-point subnet: %s" % subnet)


def p2p_mate(addr: int, plen: int) -> Optional[int]:
    """The subnet-mate of ``addr`` in its /30 or /31, as prefixscan assumes.

    Returns None when ``addr`` is the network or broadcast address of a /30
    (no mate exists under common point-to-point numbering).
    """
    if plen == 31:
        return addr ^ 1
    if plen == 30:
        base = addr & netmask(30)
        offset = addr - base
        if offset == 1:
            return base + 2
        if offset == 2:
            return base + 1
        return None
    raise TopologyError("p2p_mate needs plen 30 or 31, got %d" % plen)
