"""Shim so `python setup.py develop` works on machines without the
``wheel`` package (pip's editable path requires bdist_wheel).  All real
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
