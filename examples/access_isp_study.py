#!/usr/bin/env python
"""The §6 interconnection study: deploy many VPs in a large access network
and measure (i) per-prefix egress diversity (Fig 14), (ii) the marginal
utility of additional VPs for discovering interconnections with dense
transit peers vs selective-announcement CDNs (Fig 15), and (iii) the
geographic footprint each VP can see (Fig 16).

Run:  python examples/access_isp_study.py [--vps N] [--customers N]
(defaults are scaled down from the paper's 19-VP deployment for speed)
"""

import argparse
import time

from repro import build_scenario, large_access, build_data_bundle
from repro.core.bdrmap import Bdrmap
from repro.analysis import (
    diversity_analysis,
    geography_analysis,
    marginal_utility,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vps", type=int, default=8)
    parser.add_argument("--customers", type=int, default=80)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    t0 = time.time()
    scenario = build_scenario(
        large_access(seed=args.seed, n_customers=args.customers, n_vps=args.vps)
    )
    data = build_data_bundle(scenario)
    print("built %s: %s" % (scenario.config.name, scenario.internet.stats()))

    results = []
    for vp in scenario.vps:
        result = Bdrmap(scenario.network, vp, data).run()
        results.append(result)
        print(
            "  %s: %d links to %d ASes"
            % (vp.name, len(result.links), len(result.neighbor_ases()))
        )
    print("measured %d VPs in %.1fs" % (len(results), time.time() - t0))

    # Fig 14: per-prefix border-router / next-hop-AS diversity.
    diversity = diversity_analysis(results, data.view, scenario.internet)
    print()
    print("Fig 14 —", diversity.summary())

    # Fig 15: marginal utility of VPs for dense peers vs CDNs.
    study_ases = scenario.state.dense_peer_asns + scenario.state.cdn_peer_asns
    marginal = marginal_utility(results, scenario.internet, study_ases)
    print()
    print("Fig 15 —", marginal.summary())
    for asn in scenario.state.dense_peer_asns:
        print("  discovery curve AS%d: %s" % (asn, marginal.curves[asn]))

    # Fig 16: VP longitude vs observed-link longitude.
    from repro.analysis.plots import text_cdf, text_curve, text_scatter_rows

    geo = geography_analysis(
        results,
        scenario.internet,
        scenario.state.dense_peer_asns[:1] + scenario.state.cdn_peer_asns[:1],
    )
    print()
    print("Fig 16 —", geo.summary())
    for asn, rows in geo.rows.items():
        print("  AS%d (o = VP, * = links it observed):" % asn)
        print(text_scatter_rows(rows))

    print()
    print("Fig 14 (CDF of border routers per prefix):")
    print(text_cdf(diversity.router_count_cdf(), label=""))
    print()
    print("Fig 15 (links discovered vs VPs):")
    curves = {}
    if scenario.state.dense_peer_asns:
        curves["dense"] = marginal.curves[scenario.state.dense_peer_asns[0]]
    if scenario.state.cdn_peer_asns:
        curves["cdn"] = marginal.curves[scenario.state.cdn_peer_asns[0]]
    print(text_curve(curves, x_label="VPs added (deployment order)"))


if __name__ == "__main__":
    main()
