#!/usr/bin/env python
"""DNS-based development checks (§5.1) and DNS geolocation (§6).

The paper's authors developed bdrmap without ground truth, using interface
hostnames as a sanity signal, and later used hostname airport codes to
geolocate border interfaces for Figure 16.  This example runs both against
the synthetic PTR table (which has realistic staleness, organization-name
domains, and unnamed networks).

Run:  python examples/dns_study.py
"""

from repro import build_scenario, build_data_bundle, re_network, run_bdrmap
from repro.analysis import (
    degree_anomalies,
    dns_sanity_check,
    geography_analysis,
)
from repro.datasets.dns import generate_reverse_dns
from repro.io import format_trace


def main() -> None:
    scenario = build_scenario(re_network(seed=8))
    dns = generate_reverse_dns(
        scenario.internet,
        always_named=scenario.internet.sibling_asns(scenario.focal_asn),
    )
    print("synthesized %d PTR records; examples:" % len(dns))
    for addr, name in list(sorted(dns.names.items()))[:4]:
        print("   %s" % name)

    data = build_data_bundle(scenario)
    result = run_bdrmap(scenario, data=data)

    # §5.1: hostname agreement as a development signal.
    report = dns_sanity_check(result, dns)
    print()
    print(report.summary())
    for rid, inferred, hinted in report.disagreements[:5]:
        print(
            "   disagreement: router r%d inferred AS%d, hostname says AS%d "
            "(stale PTR or wrong inference — a human would check this one)"
            % (rid, inferred, hinted)
        )

    # §5.1's other manual red flag: out-degree anomalies.
    flags = degree_anomalies(result)
    print("out-degree anomalies worth manual review: %d" % len(flags))

    # A traceroute with hostnames, as the authors would have eyeballed it.
    print()
    if result.graph.paths:
        from repro.probing import paris_traceroute

        target = result.graph.paths[0].dst
        trace = paris_traceroute(scenario.network, scenario.vps[0].addr, target)
        print(format_trace(trace, name_of=dns.lookup))

    # §6: geolocation from hostnames instead of ground truth.
    neighbors = sorted(result.neighbor_ases())[:3]
    truth_geo = geography_analysis([result], scenario.internet, neighbors)
    dns_geo = geography_analysis([result], scenario.internet, neighbors,
                                 dns=dns)
    print()
    print("geolocation, ground truth vs hostname-derived:")
    for asn in neighbors:
        truth_located = sum(len(lons) for _, lons in truth_geo.rows[asn])
        dns_located = sum(len(lons) for _, lons in dns_geo.rows[asn])
        print(
            "  AS%-6d %d link locations from truth, %d from hostnames"
            % (asn, truth_located, dns_located)
        )


if __name__ == "__main__":
    main()
